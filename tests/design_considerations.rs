//! Integration tests for the design considerations of §2 and §3.2: the
//! `bad` programs that motivate FreezeML's restrictions must fail for the
//! stated reasons, independent of inference order.

use freezeml::core::{infer_program, Options, ProgramError, TypeEnv, TypeError};
use freezeml::corpus::figure2;

fn env() -> TypeEnv {
    let mut g = figure2();
    g.push_str("bot", "forall a. a").unwrap();
    g
}

fn check(src: &str) -> Result<String, ProgramError> {
    infer_program(&env(), src, &Options::default()).map(|t| t.to_string())
}

/// §2: `bad = λf.(f 42, f True)` — unannotated parameters are
/// monomorphic, so `f` cannot be used at two types.
#[test]
fn bad_monomorphic_parameter() {
    assert!(check("fun f -> (f 42, f true)").is_err());
    // The annotated version (poly) works.
    assert_eq!(
        check("fun (f : forall a. a -> a) -> (f 42, f true)").unwrap(),
        "(forall a. a -> a) -> Int * Bool"
    );
}

/// §2: bad1/bad2 — both argument orders must fail, demonstrating that
/// inference is not sensitive to left-to-right order.
#[test]
fn bad1_bad2_fail_in_both_orders() {
    for src in [
        "fun f -> (poly ~f, f 42 + 1)",
        "fun f -> (f 42 + 1, poly ~f)",
    ] {
        assert!(check(src).is_err(), "{src} must be ill-typed");
    }
}

/// §3.2: bad3/bad4 — `let f = bot bot in …`: the value restriction
/// monomorphises f's type variable, so `poly ⌈f⌉` fails in both orders.
#[test]
fn bad3_bad4_fail_in_both_orders() {
    for src in [
        "let f = bot bot in (poly ~f, f 42 + 1)",
        "let f = bot bot in (f 42 + 1, poly ~f)",
    ] {
        assert!(check(src).is_err(), "{src} must be ill-typed");
    }
    // Without the tension, the non-value binding is perfectly usable.
    assert_eq!(check("let f = bot bot in f 42 + 1").unwrap(), "Int");
}

/// §3.2: bad5/bad6 — the principal-type restriction. `f` may only get
/// `∀a.a→a`, so its frozen occurrence cannot be applied.
#[test]
fn bad5_bad6_principality() {
    assert!(check("let f = fun x -> x in ~f 42").is_err());
    assert!(check("let f = fun x -> x in id ~f 42").is_err());
    // The *instantiated* occurrence is fine — principality is about the
    // binding, not the uses.
    assert_eq!(check("let f = fun x -> x in f 42").unwrap(), "Int");
    // And passing the frozen occurrence where the polytype is wanted works.
    assert_eq!(
        check("let f = fun x -> x in poly ~f").unwrap(),
        "Int * Bool"
    );
}

/// §3.2: the non-principal instance must be recoverable via annotation —
/// the whole point of `let (x : A) = M in N` admitting non-principal types.
#[test]
fn annotated_let_recovers_bad5() {
    assert_eq!(
        check("let (f : Int -> Int) = fun x -> x in ~f 42").unwrap(),
        "Int"
    );
}

/// §2 ordered quantifiers: f ⌈pair′⌉ is ill-typed while f ⌈pair⌉, f $pair,
/// f $pair′ all typecheck at Int.
#[test]
fn quantifier_order_is_significant() {
    let mut g = env();
    g.push_str("f", "(forall a b. a -> b -> a * b) -> Int")
        .unwrap();
    let opts = Options::default();
    for src in ["f ~pair", "f $pair", "f $pair'"] {
        assert_eq!(
            infer_program(&g, src, &opts).unwrap().to_string(),
            "Int",
            "{src}"
        );
    }
    assert!(infer_program(&g, "f ~pair'", &opts).is_err());
}

/// The error *classes* match the failure modes the paper describes.
#[test]
fn failure_modes_are_classified() {
    // Monomorphism violation: unannotated parameter used polymorphically.
    match infer_program(&env(), "fun f -> poly ~f", &Options::default()) {
        Err(ProgramError::Type(TypeError::PolyNotAllowed { .. })) => {}
        other => panic!("expected PolyNotAllowed, got {other:?}"),
    }
    // Head-constructor clash: E1.
    let mut g = env();
    g.push_str("k", "forall a. a -> List a -> a").unwrap();
    g.push_str("h", "Int -> forall a. a -> a").unwrap();
    g.push_str("l", "List (forall a. Int -> a -> a)").unwrap();
    match infer_program(&g, "k h l", &Options::default()) {
        Err(ProgramError::Type(TypeError::Mismatch { .. })) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
    // Occurs check: self-application of a monomorphic parameter.
    match infer_program(&env(), "fun x -> x x", &Options::default()) {
        Err(ProgramError::Type(TypeError::Occurs { .. })) => {}
        other => panic!("expected Occurs, got {other:?}"),
    }
}

/// Theorem 1 sanity at the judgement level: an ML-typable program's ML
/// type is FreezeML-derivable (the declarative check).
#[test]
fn ml_typings_are_freezeml_typings() {
    use freezeml::core::{check_typing, parse_term, parse_type, KindEnv};
    let g = env();
    for (src, ty) in [
        ("fun x -> x", "a -> a"),
        ("single choose", "List (a -> a -> a)"),
        ("let i = fun x -> x in i 1", "Int"),
    ] {
        let term = parse_term(src).unwrap();
        let ty = parse_type(ty).unwrap();
        let delta: KindEnv = ty.ftv().into_iter().collect();
        assert!(
            check_typing(&delta, &g, &term, &ty, &Options::default()).unwrap(),
            "{src} : {ty} should be derivable"
        );
    }
}

/// §3.2 "Pure FreezeML": the nested-annotation example from the paper.
/// The paper observes that without the value restriction, a purely
/// syntactic split is insufficient — `Let-Asc would have to
/// nondeterministically split the type annotation A into ∀∆′,∆′′.H`. Our
/// pure mode deliberately keeps the deterministic all-quantifiers split
/// (documented in DESIGN.md), so the example is rejected in *both* modes,
/// each for the precise reason the theory predicts.
#[test]
fn pure_freezeml_nested_annotation_example() {
    let src = "let (f : forall a b. a -> b -> b) = \
                 let (g : forall b. a -> b -> b) = fun y z -> z in id ~g \
               in ~f";
    // Under the value restriction the program is ill-SCOPED: the outer rhs
    // is a non-value, so the outer annotation binds nothing and `a` is
    // unbound in the inner annotation.
    match infer_program(&env(), src, &Options::default()) {
        Err(ProgramError::Type(TypeError::UnboundTyVar(v))) => {
            assert_eq!(v.to_string(), "a");
        }
        other => panic!("expected unbound `a`, got {other:?}"),
    }
    // In pure mode the outer annotation deterministically binds *both*
    // `a` and `b`, so the inner `∀b` is a (rejected) re-binding — the
    // ambiguity the paper points out, surfaced as a scoping error.
    match infer_program(&env(), src, &Options::pure_freezeml()) {
        Err(ProgramError::Type(TypeError::ShadowedTyVar { var })) => {
            assert_eq!(var.to_string(), "b");
        }
        other => panic!("expected shadowed `b`, got {other:?}"),
    }
    // Even α-renaming the inner binder does not help: the rhs has type
    // ∀c.a→c→c, so the outer annotation's ∀b must originate *from the
    // rhs* while ∀a comes from generalisation — precisely the mixed split
    // `∀∆′,∆′′.H` that a deterministic split cannot produce. The program
    // now fails with a unification mismatch, as the theory predicts.
    let renamed = "let (f : forall a b. a -> b -> b) = \
                     let (g : forall c. a -> c -> c) = fun y z -> z in id ~g \
                   in ~f";
    match infer_program(&env(), renamed, &Options::pure_freezeml()) {
        Err(ProgramError::Type(TypeError::Mismatch { .. })) => {}
        other => panic!("expected a mismatch, got {other:?}"),
    }
    // When *all* quantifiers come from generalisation the deterministic
    // split suffices, in both modes.
    let simple = "let (f : forall a b. a -> b -> b) = fun y z -> z in ~f";
    for opts in [Options::default(), Options::pure_freezeml()] {
        assert_eq!(
            infer_program(&env(), simple, &opts).unwrap().to_string(),
            "forall a b. a -> b -> b"
        );
    }
}
