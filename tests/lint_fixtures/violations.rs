//! Lint fixture: one violation of every `freezeml lint` rule, plus the
//! waived/justified twin of each so the test pins both directions.
//! This file is data for `tests/lint.rs` — it is never compiled.

use std::sync::Arc; // line 5: std-sync violation

// lint: allow(std-sync) — fixture: the waived twin of line 5
use std::sync::Mutex;

fn bare_ordering(x: &AtomicU64) -> u64 {
    x.load(Ordering::Relaxed) // line 11: ord violation
}

fn justified_ordering(x: &AtomicU64) -> u64 {
    // ord: Relaxed — fixture: statistic, no ordering needed
    x.load(Ordering::Relaxed)
}

fn total_order(x: &AtomicU64) -> u64 {
    // ord: SeqCst — fixture: justified but unwaived
    x.load(Ordering::SeqCst) // line 21: seqcst violation (ord comment alone is not enough)
}

fn waived_total_order(x: &AtomicU64) -> u64 {
    // ord: SeqCst — fixture
    // lint: allow(seqcst) — fixture: pretend two flags need one order
    x.load(Ordering::SeqCst)
}

fn panicky(v: Option<u32>) -> u32 {
    v.unwrap() // line 31: unwrap violation
}

fn argued(v: Option<u32>) -> u32 {
    // lint: allow(unwrap) — fixture: populated three lines above
    v.expect("fixture")
}

// These must NOT trip: the tokens live in strings and comments.
fn opaque() -> &'static str {
    // std::sync in a comment is fine, as is Ordering::SeqCst
    "use std::sync::Arc; Ordering::SeqCst; x.unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Option<u32> = Some(1);
        v.unwrap(); // fine: inside #[cfg(test)]
        v.expect("fine too");
    }
}
