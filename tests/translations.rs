//! Integration tests for the translation theorems (§4):
//!
//! * Theorem 3: `C⟦−⟧` (FreezeML → System F) preserves types — checked on
//!   every well-typed standard-mode Figure 1 example.
//! * Theorem 2: `E⟦−⟧` (System F → FreezeML) preserves types — checked on
//!   the C-images (full round trips).

use freezeml::core::{infer_term, parse_term, KindEnv, Options};
use freezeml::corpus::{runner, Expected, Mode, EXAMPLES};
use freezeml::systemf::typecheck;
use freezeml::translate::{elaborate, f_to_freeze};

/// Theorem 3 across the whole corpus: translate every well-typed example
/// and typecheck the image in System F at the same type.
#[test]
fn theorem3_holds_on_the_whole_corpus() {
    let opts = Options::default();
    for e in EXAMPLES {
        if e.expected == Expected::Ill || e.mode != Mode::Standard {
            continue;
        }
        let env = runner::env_for(e);
        let term = parse_term(e.src).unwrap();
        let out = infer_term(&env, &term, &opts).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        let elab = elaborate(&out);
        let fty = typecheck(&KindEnv::new(), &env, &elab.term)
            .unwrap_or_else(|err| panic!("{}: C-image ill-typed: {err}\n  {}", e.id, elab.term));
        assert!(
            fty.alpha_eq(&elab.ty),
            "{}: C-image type {fty} differs from FreezeML type {}",
            e.id,
            elab.ty
        );
    }
}

/// Theorems 2+3 as a round trip: FreezeML → F → FreezeML preserves types.
#[test]
fn round_trips_preserve_types_on_the_corpus() {
    let opts = Options::default();
    for e in EXAMPLES {
        if e.expected == Expected::Ill || e.mode != Mode::Standard {
            continue;
        }
        let env = runner::env_for(e);
        let term = parse_term(e.src).unwrap();
        let out = infer_term(&env, &term, &opts).unwrap();
        let elab = elaborate(&out);
        let back = f_to_freeze(&KindEnv::new(), &env, &elab.term)
            .unwrap_or_else(|err| panic!("{}: E-translation failed: {err}", e.id));
        let back_out = infer_term(&env, &back, &opts)
            .unwrap_or_else(|err| panic!("{}: round trip did not re-infer: {err}", e.id));
        assert!(
            back_out.ty.alpha_eq(&elab.ty),
            "{}: round trip changed the type: {} vs {}",
            e.id,
            back_out.ty,
            elab.ty
        );
    }
}

/// The translated corpus also *runs*: evaluate every ground-typed image.
#[test]
fn translated_corpus_evaluates_to_ground_values() {
    use freezeml::systemf::{eval, prelude::runtime_env};
    let opts = Options::default();
    // Examples whose type is ground (Int, Int × Bool, …) must evaluate to
    // ground values without runtime errors.
    let ground_examples = [
        "A10⋆", "A11⋆", "A12⋆", "C1", "C9⋆", "D1⋆", "D2⋆", "D3⋆", "D4⋆", "D5⋆", "F7⋆", "F9",
    ];
    for id in ground_examples {
        let e = freezeml::corpus::figure1::by_id(id).unwrap();
        let env = runner::env_for(e);
        let term = parse_term(e.src).unwrap();
        let out = infer_term(&env, &term, &opts).unwrap();
        let elab = elaborate(&out);
        let v = eval(&runtime_env(), &elab.term)
            .unwrap_or_else(|err| panic!("{id}: evaluation failed: {err}"));
        assert!(
            v.is_ground() || id == "C9⋆", // C9 evaluates to a list of pairs — ground too
            "{id}: non-ground result {v}"
        );
    }
}

/// ML elaboration (Figure 22) composes with the FreezeML story: an ML
/// term's W-elaboration and its FreezeML C-elaboration are both F-typable
/// at the same (grounded) type.
#[test]
fn ml_and_freezeml_elaborations_agree() {
    let mut env = freezeml::core::TypeEnv::new();
    env.push_str("inc", "Int -> Int").unwrap();
    env.push_str("single", "forall a. a -> List a").unwrap();
    env.push_str("choose", "forall a. a -> a -> a").unwrap();
    env.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
    for src in [
        "let i = fun x -> x in i 1",
        "let i = fun x -> x in (i 1, i true)",
        "fun f x -> f (f x)",
        "single choose",
    ] {
        let term = parse_term(src).unwrap();
        let ml = freezeml::miniml::MlTerm::from_freezeml(&term).unwrap();
        let (f_ml, ty_ml) = freezeml::miniml::elaborate(&env, &ml).unwrap();
        let out = infer_term(&env, &term, &Options::default()).unwrap();
        let elab = elaborate(&out);
        let t1 = typecheck(&KindEnv::new(), &env, &f_ml).unwrap();
        let t2 = typecheck(&KindEnv::new(), &env, &elab.term).unwrap();
        assert!(t1.alpha_eq(&ty_ml), "{src}");
        assert!(t2.alpha_eq(&elab.ty), "{src}");
        assert!(
            t1.alpha_eq(&t2),
            "{src}: ML elaboration type {t1} vs FreezeML elaboration type {t2}"
        );
    }
}

/// The §6 explicit type application extension translates to a System F
/// type application (the whole point of the extension).
#[test]
fn ty_app_extension_translates_to_f_type_application() {
    let mut env = freezeml::core::TypeEnv::new();
    env.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
    let term = parse_term("~pair@[Int]@[Bool] 1 false").unwrap();
    let out = infer_term(&env, &term, &Options::default()).unwrap();
    let elab = elaborate(&out);
    assert_eq!(elab.term.to_string(), "pair [Int] [Bool] 1 false");
    let fty = typecheck(&KindEnv::new(), &env, &elab.term).unwrap();
    assert!(fty.alpha_eq(&elab.ty));
    assert_eq!(fty.to_string(), "Int * Bool");
}
