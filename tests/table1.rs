//! Integration test: Table 1 (Appendix A) — FreezeML's position in the
//! system comparison, with its row computed by the real checker.

use freezeml::corpus::table1::{
    base_ids, freezeml_failure_sets, freezeml_handles, freezeml_row, full_table, ml_row, Budget,
};

#[test]
fn freezeml_fails_4_2_2() {
    assert_eq!(freezeml_row().failures, [4, 2, 2]);
}

#[test]
fn failure_sets_are_the_papers() {
    let [nothing, binders, terms] = freezeml_failure_sets();
    assert_eq!(nothing, ["A8", "B1", "B2", "E1"]);
    assert_eq!(binders, ["A8", "E1"]);
    assert_eq!(terms, ["A8", "E1"]);
}

#[test]
fn full_table_matches_paper_counts() {
    let table = full_table();
    let get = |name: &str| {
        table
            .iter()
            .find(|r| r.system == name)
            .unwrap_or_else(|| panic!("{name} missing"))
            .failures
    };
    assert_eq!(get("MLF"), [2, 1, 1]);
    assert_eq!(get("HML"), [3, 2, 2]);
    assert_eq!(get("FreezeML"), [4, 2, 2]);
    assert_eq!(get("FPH"), [6, 4, 4]);
    assert_eq!(get("GI"), [8, 6, 2]);
    assert_eq!(get("HMF"), [11, 6, 6]);
}

#[test]
fn computed_rows_are_labelled() {
    let computed: Vec<&str> = full_table()
        .iter()
        .filter(|r| r.computed)
        .map(|r| r.system)
        .collect();
    assert_eq!(
        computed,
        ["FreezeML", "HMF (ours, approx)", "ML (Algorithm W)"]
    );
}

#[test]
fn hmf_approx_sits_between_freezeml_and_ml() {
    use freezeml::corpus::table1::hmf_approx_row;
    let fz = freezeml_row().failures;
    let hmf = hmf_approx_row().failures;
    let ml = ml_row().failures;
    for i in 0..3 {
        assert!(
            fz[i] < hmf[i],
            "budget {i}: FreezeML {} vs HMF {}",
            fz[i],
            hmf[i]
        );
        assert!(hmf[i] < ml[i], "budget {i}: HMF {} vs ML {}", hmf[i], ml[i]);
    }
}

#[test]
fn hmf_approx_differs_from_real_hmf_only_plausibly() {
    use freezeml::corpus::table1::hmf_failure_sets;
    let [nothing, _, _] = hmf_failure_sets();
    // The order-sensitivity failures the n-ary rule would recover:
    assert!(nothing.contains(&"D2"));
    assert!(nothing.contains(&"D5"));
    // The heuristics' headline successes hold:
    for ok in ["A10", "A11", "A12", "D1", "D3", "D4", "C3", "C10"] {
        assert!(!nothing.contains(&ok), "{ok} should be handled");
    }
}

#[test]
fn budgets_are_monotone() {
    // More annotations can only help.
    for base in base_ids() {
        let n = freezeml_handles(base, Budget::Nothing);
        let b = freezeml_handles(base, Budget::Binders);
        let t = freezeml_handles(base, Budget::Terms);
        assert!(!n || b, "{base}: handled at Nothing but not Binders");
        assert!(!b || t, "{base}: handled at Binders but not Terms");
    }
}

#[test]
fn ml_handles_strictly_fewer_than_freezeml() {
    // FreezeML is a conservative *extension*: everything ML handles,
    // FreezeML handles — and FreezeML handles strictly more.
    let ml = ml_row().failures[0];
    let fz = freezeml_row().failures[0];
    assert!(
        fz < ml,
        "FreezeML ({fz} failures) should beat plain ML ({ml} failures)"
    );
}
