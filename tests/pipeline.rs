//! End-to-end pipeline robustness: random *FreezeML* terms (with freezing
//! and generalisation, not just the ML fragment) are pushed through the
//! whole stack —
//!
//! ```text
//! infer  →  C⟦−⟧ elaborate  →  System F typecheck  →  (evaluate)
//! ```
//!
//! For every well-typed sample the System F image must typecheck at the
//! same type (Theorem 3 at scale), and ground-typed samples must evaluate
//! without runtime errors (types are erased but sound).

use freezeml::core::{infer_term, KindEnv, Options, Term, TypeEnv, Var};
use freezeml::systemf::{eval, prelude::runtime_env, typecheck};
use freezeml::translate::elaborate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn env() -> TypeEnv {
    freezeml::corpus::figure2()
}

/// A generator of random FreezeML terms over the Figure 2 prelude,
/// including frozen variables, `$`, and `@` — forms the ML generator
/// cannot produce.
fn random_freezeml<R: Rng>(rng: &mut R, depth: usize, scope: &mut Vec<Var>) -> Term {
    const PRELUDE: &[&str] = &[
        "id", "inc", "choose", "single", "head", "ids", "poly", "auto", "pair", "nil",
    ];
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 if !scope.is_empty() => Term::Var(scope[rng.gen_range(0..scope.len())]),
            1 => Term::frozen(PRELUDE[rng.gen_range(0..PRELUDE.len())]),
            2 => Term::int(rng.gen_range(0..10)),
            _ => Term::var(PRELUDE[rng.gen_range(0..PRELUDE.len())]),
        };
    }
    match rng.gen_range(0..12) {
        0..=2 => {
            let f = random_freezeml(rng, depth - 1, scope);
            let a = random_freezeml(rng, depth - 1, scope);
            Term::app(f, a)
        }
        3 | 4 => {
            let x = Var::named(format!("v{}", scope.len()));
            scope.push(x);
            let body = random_freezeml(rng, depth - 1, scope);
            scope.pop();
            Term::lam(x, body)
        }
        5 | 6 => {
            let x = Var::named(format!("v{}", scope.len()));
            let rhs = random_freezeml(rng, depth - 1, scope);
            scope.push(x);
            let body = random_freezeml(rng, depth - 1, scope);
            scope.pop();
            Term::let_(x, rhs, body)
        }
        7 => Term::gen(random_freezeml(rng, depth - 1, scope)),
        8 => Term::inst(random_freezeml(rng, depth - 1, scope)),
        9 => {
            // A frozen let: let x = V in ⌈x⌉-style shapes.
            let x = Var::named(format!("v{}", scope.len()));
            let rhs = random_freezeml(rng, depth - 1, scope);
            Term::let_(x, rhs, Term::FrozenVar(x))
        }
        _ => random_freezeml(rng, 0, scope),
    }
}

#[test]
fn random_decorated_terms_round_trip_through_system_f() {
    let env = env();
    let opts = Options::default();
    let mut rng = StdRng::seed_from_u64(0xFEED5EED);
    let mut typed = 0usize;
    let mut evaluated = 0usize;
    for i in 0..1500 {
        let term = random_freezeml(&mut rng, 4, &mut Vec::new());
        let Ok(out) = infer_term(&env, &term, &opts) else {
            continue;
        };
        typed += 1;
        let elab = elaborate(&out);
        let fty = typecheck(&KindEnv::new(), &env, &elab.term).unwrap_or_else(|e| {
            panic!(
                "sample #{i} `{term}`: C-image ill-typed: {e}\n  {}",
                elab.term
            )
        });
        assert!(
            fty.alpha_eq(&elab.ty),
            "sample #{i} `{term}`: type {} vs {}",
            fty,
            elab.ty
        );
        // Ground results must evaluate cleanly (type soundness after
        // erasure). Function-typed results evaluate to closures; skip.
        if elab.ty.ftv().is_empty() && elab.ty.is_monotype() {
            let v = eval(&runtime_env(), &elab.term)
                .unwrap_or_else(|e| panic!("sample #{i} `{term}`: evaluation failed: {e}"));
            let _ = v;
            evaluated += 1;
        }
    }
    assert!(typed > 150, "only {typed}/1500 random terms typed");
    assert!(evaluated > 20, "only {evaluated} samples were ground");
}

#[test]
fn random_terms_never_panic_inference() {
    // Inference is total: it returns Ok or Err, never panics, on arbitrary
    // well-scoped input — including deeper terms.
    let env = env();
    let opts = Options::default();
    let mut rng = StdRng::seed_from_u64(0xABCDEF);
    for _ in 0..300 {
        let term = random_freezeml(&mut rng, 6, &mut Vec::new());
        let _ = infer_term(&env, &term, &opts);
    }
}

#[test]
fn pure_and_eliminator_modes_never_panic_either() {
    let env = env();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for opts in [Options::pure_freezeml(), Options::eliminator()] {
        for _ in 0..300 {
            let term = random_freezeml(&mut rng, 5, &mut Vec::new());
            let _ = infer_term(&env, &term, &opts);
        }
    }
}

#[test]
fn eliminator_mode_images_still_translate() {
    // The ImplicitInst nodes of the eliminator strategy elaborate to type
    // applications; the images must still typecheck.
    let env = env();
    let opts = Options::eliminator();
    let mut rng = StdRng::seed_from_u64(0x1234);
    let mut checked = 0usize;
    for _ in 0..800 {
        let term = random_freezeml(&mut rng, 4, &mut Vec::new());
        let Ok(out) = infer_term(&env, &term, &opts) else {
            continue;
        };
        let elab = elaborate(&out);
        let fty = typecheck(&KindEnv::new(), &env, &elab.term)
            .unwrap_or_else(|e| panic!("`{term}`: {e}\n  {}", elab.term));
        assert!(fty.alpha_eq(&elab.ty), "`{term}`");
        checked += 1;
    }
    assert!(checked > 100, "only {checked} samples typed");
}
