//! Integration test for Theorem 1: FreezeML conservatively extends ML.
//!
//! Every typing derivable in mini-ML is derivable in FreezeML — and since
//! both have principal types, Algorithm W and FreezeML inference must
//! produce α-equivalent principal types on every ML program. We check this
//! on a hand-written corpus and on thousands of randomly generated terms.

use freezeml::core::{infer_term, Options, TypeEnv};
use freezeml::miniml::{
    generator::{random_term, GenConfig},
    w_infer, MlTerm,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prelude() -> TypeEnv {
    let mut g = TypeEnv::new();
    g.push_str("id", "forall a. a -> a").unwrap();
    g.push_str("inc", "Int -> Int").unwrap();
    g.push_str("plus", "Int -> Int -> Int").unwrap();
    g.push_str("single", "forall a. a -> List a").unwrap();
    g.push_str("choose", "forall a. a -> a -> a").unwrap();
    g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
    g.push_str("cons", "forall a. a -> List a -> List a")
        .unwrap();
    g.push_str("nil", "forall a. List a").unwrap();
    g
}

/// W and FreezeML agree (both succeed with α-equal canonical types, or
/// both fail) on a given ML term.
fn agree(g: &TypeEnv, ml: &MlTerm) -> Result<(), String> {
    let w = w_infer(g, ml);
    let fz = infer_term(g, &ml.to_freezeml(), &Options::default());
    match (w, fz) {
        (Ok((_, wt)), Ok(out)) => {
            let wt = wt.canonicalize();
            let ft = out.ty.canonicalize();
            if wt.alpha_eq(&ft) {
                Ok(())
            } else {
                Err(format!(
                    "types differ on {ml}: W gave {wt}, FreezeML gave {ft}"
                ))
            }
        }
        (Err(_), Err(_)) => Ok(()),
        (Ok((_, wt)), Err(e)) => Err(format!(
            "W typed {ml} at {wt} but FreezeML rejected it: {e}"
        )),
        (Err(e), Ok(out)) => Err(format!(
            "FreezeML typed {ml} at {} but W rejected it: {e}",
            out.ty
        )),
    }
}

#[test]
fn hand_corpus_agrees() {
    let g = prelude();
    for src in [
        "fun x -> x",
        "fun x y -> y",
        "fun f x -> f (f x)",
        "inc 1",
        "let i = fun x -> x in i 1",
        "let i = fun x -> x in (i 1, i true)",
        "let k = fun x y -> x in k 1 true",
        "single choose",
        "let s = single in (s 1, s true)",
        "fun x -> single x",
        "choose id inc",
        "let c = choose in c 1 2",
        "fun x -> x x",                   // ill-typed in both
        "let i = id id in (i 1, i true)", // value restriction: both reject
        "inc true",                       // ill-typed in both
        "let d = fun f -> f (fun x -> x) in d",
    ] {
        let term = freezeml::core::parse_term(src).unwrap();
        let ml = MlTerm::from_freezeml(&term).unwrap();
        if let Err(e) = agree(&g, &ml) {
            panic!("{src}: {e}");
        }
    }
}

#[test]
fn random_terms_agree() {
    let g = prelude();
    let cfg = GenConfig {
        max_depth: 5,
        prelude: ["id", "inc", "plus", "single", "choose", "pair"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(0xF5EE3E);
    let mut typed = 0usize;
    for i in 0..2000 {
        let ml = random_term(&mut rng, &cfg);
        if let Err(e) = agree(&g, &ml) {
            panic!("random term #{i}: {e}");
        }
        if w_infer(&g, &ml).is_ok() {
            typed += 1;
        }
    }
    assert!(
        typed > 200,
        "only {typed}/2000 random terms typed — generator too weak"
    );
}

#[test]
fn random_deep_terms_agree() {
    let g = prelude();
    let cfg = GenConfig {
        max_depth: 9,
        prelude: ["id", "single", "choose"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for i in 0..300 {
        let ml = random_term(&mut rng, &cfg);
        if let Err(e) = agree(&g, &ml) {
            panic!("random deep term #{i}: {e}");
        }
    }
}

#[test]
fn let_chains_agree() {
    // Deep chains recurse once per `let` node; run on a large stack like
    // any self-respecting compiler test suite.
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let g = prelude();
            for n in [1, 5, 20, 60, 150] {
                let ml = freezeml::miniml::generator::let_chain(n);
                if let Err(e) = agree(&g, &ml) {
                    panic!("let_chain({n}): {e}");
                }
            }
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn pair_chains_agree() {
    let g = prelude();
    for n in [1, 3, 6, 9] {
        let ml = freezeml::miniml::generator::pair_chain(n);
        if let Err(e) = agree(&g, &ml) {
            panic!("pair_chain({n}): {e}");
        }
    }
}
