//! Workspace smoke test: every umbrella re-export is present, usable, and
//! wired to the right crate. Each block goes through `freezeml::<module>`
//! only, so a broken re-export fails here even if the underlying crate's
//! own tests pass.

use freezeml::core::{infer_program, parse_term, parse_type, Options, TypeEnv};

#[test]
fn core_infers_against_a_hand_built_env() {
    let mut env = TypeEnv::new();
    env.push_str("id", "forall a. a -> a").unwrap();
    let ty = infer_program(&env, "~id", &Options::default()).unwrap();
    assert!(ty.alpha_eq(&parse_type("forall b. b -> b").unwrap()));
    assert!(parse_term("$(fun x -> x)").is_ok());
}

#[test]
fn corpus_exposes_figure1_figure2_and_table1() {
    let env = freezeml::corpus::figure2();
    assert_eq!(
        env.len(),
        freezeml::corpus::prelude::FIGURE2_SIGNATURES.len()
    );
    assert_eq!(freezeml::corpus::EXAMPLES.len(), 49);
    let results = freezeml::corpus::run_all();
    assert!(results.iter().all(|r| r.pass));
    assert_eq!(freezeml::corpus::table1::freezeml_row().failures, [4, 2, 2]);
}

#[test]
fn systemf_typechecks_and_evaluates() {
    use freezeml::core::{KindEnv, Type};
    use freezeml::systemf::{eval, prelude, typecheck, FTerm, Value};
    let id = FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")));
    let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &id).unwrap();
    assert_eq!(ty.to_string(), "forall a. a -> a");
    let app = FTerm::app(FTerm::tyapp(id, Type::int()), FTerm::int(42));
    assert_eq!(eval(&prelude::runtime_env(), &app).unwrap(), Value::Int(42));
}

#[test]
fn service_checks_programs_incrementally() {
    use freezeml::service::{Service, ServiceConfig};
    let mut svc = Service::new(ServiceConfig::default());
    let cold = svc
        .open(
            "smoke",
            "#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n",
        )
        .unwrap();
    assert!(cold.all_typed());
    assert_eq!(cold.rechecked, 2);
    let warm = svc
        .edit(
            "smoke",
            "#use prelude\nlet f = fun x -> x;;\nlet p = pair (poly ~f) 2;;\n",
        )
        .unwrap();
    assert_eq!((warm.rechecked, warm.reused), (1, 1));
}

#[test]
fn miniml_runs_algorithm_w() {
    use freezeml::miniml::{w_infer, MlTerm};
    let term = MlTerm::let_(
        "i",
        MlTerm::lam("x", MlTerm::var("x")),
        MlTerm::app(MlTerm::var("i"), MlTerm::int(7)),
    );
    let (_, ty) = w_infer(&TypeEnv::new(), &term).unwrap();
    assert_eq!(ty.canonicalize().to_string(), "Int");
}

#[test]
fn hmf_accepts_the_headline_heuristic_example() {
    let env = freezeml::corpus::figure2();
    // `poly (fun x -> x)`: HMF generalises the argument; FreezeML refuses.
    assert_eq!(
        freezeml::hmf::hmf_accepts_src(&env, "poly (fun x -> x)"),
        Some(true)
    );
    assert!(infer_program(&env, "poly (fun x -> x)", &Options::default()).is_err());
}

#[test]
fn translate_elaborates_into_well_typed_system_f() {
    use freezeml::core::{infer_term, KindEnv};
    use freezeml::systemf::typecheck;
    use freezeml::translate::elaborate;
    let env = freezeml::corpus::figure2();
    let term = parse_term("poly $(fun x -> x)").unwrap();
    let out = infer_term(&env, &term, &Options::default()).unwrap();
    let elab = elaborate(&out);
    let fty = typecheck(&KindEnv::new(), &env, &elab.term).unwrap();
    assert!(fty.alpha_eq(&elab.ty));
}

#[test]
fn engine_agrees_with_core_end_to_end() {
    use freezeml::engine::{differential, infer_program as uf_infer, Session};
    let env = freezeml::corpus::figure2();
    let opts = Options::default();
    let ty = uf_infer(&env, "choose ~id", &opts).unwrap();
    assert_eq!(ty.to_string(), "(forall a. a -> a) -> forall a. a -> a");
    let oracle = differential::compare_program(&env, "poly $(fun x -> x)", &opts)
        .expect("engines must agree");
    assert!(oracle.is_ok(), "poly $(fun x -> x) is well typed");
    let mut session = Session::new(&env, &opts).unwrap();
    let term = parse_term("id 41").unwrap();
    assert_eq!(session.infer(&term).unwrap().ty.to_string(), "Int");
}

#[test]
fn conformance_runs_an_inline_case() {
    use freezeml::conformance::{format, runner};
    let file = format::parse_str(
        "smoke.fml",
        "## case smoke\nprogram: choose ~id\n\
         expect: (forall a. a -> a) -> forall a. a -> a\n",
    )
    .unwrap();
    let suite = runner::run_files(&[file]);
    assert!(suite.all_pass(), "{}", suite.render_failures());
}
