//! The lint gate, gated: the workspace must scan clean, and the
//! violation fixture must trip every rule at the pinned lines. Together
//! these keep `freezeml lint` honest in both directions — a scanner
//! that finds nothing anywhere would still pass a "workspace is clean"
//! test, so the fixture proves the rules actually fire.

use freezeml::lint::{self, Rules};
use std::path::Path;

const ALL: Rules = Rules {
    std_sync: true,
    ord: true,
    seqcst: true,
    unwrap: true,
};

/// The gate itself: the shipped workspace has zero findings. If this
/// fails, either a concurrency convention was broken (fix the code) or
/// a new site needs a justification/waiver comment (write one — that
/// is the point).
#[test]
fn workspace_scans_clean() {
    let report = lint::run(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint scan");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "freezeml lint found violations:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned >= 30,
        "suspiciously few files scanned ({}) — did a PLAN tree move?",
        report.files_scanned
    );
}

/// Every rule fires on the fixture, at exactly the lines the fixture
/// pins, and nothing else trips (the waived twins and the string/
/// comment/test-mod decoys all stay quiet).
#[test]
fn fixture_trips_each_rule_once() {
    let text = include_str!("lint_fixtures/violations.rs");
    let findings = lint::scan_source("violations.rs", text, ALL);

    let got: Vec<(&str, usize)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![("std-sync", 5), ("ord", 11), ("seqcst", 21), ("unwrap", 31),],
        "full findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Rules are independently switchable — a tree scanned without the
/// unwrap rule (engine, obs) must not report unwrap findings.
#[test]
fn rules_toggle_independently() {
    let text = include_str!("lint_fixtures/violations.rs");
    let no_unwrap = Rules {
        unwrap: false,
        ..ALL
    };
    let findings = lint::scan_source("violations.rs", text, no_unwrap);
    assert!(
        findings.iter().all(|f| f.rule != "unwrap"),
        "unwrap rule fired while disabled"
    );
    assert_eq!(findings.len(), 3, "the other three rules still fire");
}
