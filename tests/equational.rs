//! §4.3 Equational reasoning: check the β- and η-laws by translating both
//! sides to System F with `C⟦−⟧` and evaluating them.
//!
//! The paper's laws (for values `V`, guarded values `U`):
//!
//! ```text
//! let x = V in N         ≃  N[$V/⌈x⌉, ($V)@/x]
//! let (x : A) = V in N   ≃  N[$A V/⌈x⌉, ($A V)@/x]
//! (λx.M) V               ≃  M[V/⌈x⌉ … ]      (after type erasure: β)
//! let x = U in x         ≃  U
//! λx. M x                ≃  M
//! ```
//!
//! Observational equivalence is undecidable in general; we check it on
//! *ground observations* — both sides must evaluate to the same
//! first-order value. (DESIGN.md records this substitution.)

use freezeml::core::{infer_term, parse_term, Options};
use freezeml::corpus::figure2;
use freezeml::systemf::{eval, prelude::runtime_env, Value};
use freezeml::translate::elaborate;

/// Evaluate a FreezeML source program through C⟦−⟧.
fn run(src: &str) -> Value {
    let env = figure2();
    let term = parse_term(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    let out = infer_term(&env, &term, &Options::default()).unwrap_or_else(|e| panic!("{src}: {e}"));
    let elab = elaborate(&out);
    eval(&runtime_env(), &elab.term).unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// Both sides must produce the same ground value.
fn equate(lhs: &str, rhs: &str) {
    let l = run(lhs);
    let r = run(rhs);
    assert!(l.is_ground(), "{lhs} gave non-ground {l}");
    assert_eq!(l, r, "{lhs} ≠ {rhs}");
}

#[test]
fn beta_for_unannotated_let() {
    // let x = V in N  ≃  N[$V/⌈x⌉, ($V)@/x]  with V = λy.y,
    // N = (poly ⌈x⌉, x 3).
    equate(
        "let x = fun y -> y in (poly ~x, x 3)",
        "(poly $(fun y -> y), $(fun y -> y)@ 3)",
    );
}

#[test]
fn beta_for_annotated_let() {
    equate(
        "let (x : forall a. a -> a) = fun y -> y in poly ~x",
        "poly $(fun y -> y : forall a. a -> a)",
    );
}

#[test]
fn beta_for_lambda() {
    // (λx.M) V ≃ M[V@/x] on ground observations.
    equate("(fun x -> x 3) id", "id@ 3");
    equate("(fun x -> inc x) 41", "inc 41");
}

#[test]
fn beta_for_annotated_lambda() {
    equate(
        "(fun (x : forall a. a -> a) -> (x 1, poly ~x)) ~id",
        "(id 1, poly ~id)",
    );
}

#[test]
fn eta_for_let_of_guarded_value() {
    // let x = U in x ≃ U, observed at ground type.
    equate("(let x = inc in x) 1", "inc 1");
    equate("(let x = fun y -> y in x) 7", "(fun y -> y) 7");
}

#[test]
fn eta_for_frozen_let() {
    // let x = ⌈y⌉ in x ≃ y (the x occurrence re-instantiates).
    equate("(let x = ~id in x) 9", "id 9");
}

#[test]
fn eta_for_lambda() {
    // λx. M x ≃ M.
    equate("(fun x -> inc x) 5", "inc 5");
    equate("poly $(fun x -> id x)", "poly ~id");
}

#[test]
fn eta_for_annotated_lambda() {
    // λ(x:A). M ⌈x⌉ ≃ M.
    equate("(fun (x : forall a. a -> a) -> poly ~x) ~id", "poly ~id");
}

#[test]
fn generalisation_and_instantiation_compose() {
    // ($V)@ behaves like V on ground observations.
    equate("$(fun x -> x)@ 3", "(fun x -> x) 3");
    // Instantiation after freezing is the identity on behaviour.
    equate("~id@ 4", "id 4");
}

#[test]
fn quantifier_reordering_laws() {
    // §2 Ordered Quantifiers: f ⌈pair⌉, f $pair, f $pair' agree at Int.
    // (pair' has the quantifiers flipped; re-generalisation restores
    // canonical order.)
    let env = figure2();
    let mut with_f = env.clone();
    with_f
        .push_str("f", "(forall a b. a -> b -> a * b) -> Int")
        .unwrap();
    let opts = Options::default();
    for src in ["f ~pair", "f $pair", "f $pair'"] {
        let term = parse_term(src).unwrap();
        let out = infer_term(&with_f, &term, &opts).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(out.ty.canonicalize().to_string(), "Int", "{src}");
    }
    // Whereas f ⌈pair'⌉ is ill-typed (quantifier order matters).
    let bad = parse_term("f ~pair'").unwrap();
    assert!(infer_term(&with_f, &bad, &opts).is_err());
}
