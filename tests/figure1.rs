//! Integration test: the headline reproduction of the paper's Figure 1.
//!
//! Every one of the 49 example rows must produce exactly the type the
//! paper reports (up to α-equivalence and canonical naming of free
//! variables), or fail to typecheck exactly when the paper marks ✕.

use freezeml::core::{infer_program, Options};
use freezeml::corpus::{run_all, runner, Expected, EXAMPLES};

#[test]
fn every_figure1_row_reproduces() {
    let results = run_all();
    assert_eq!(results.len(), 49);
    let failures: Vec<String> = results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| {
            format!(
                "{}: expected {:?}, got {}",
                r.id,
                r.expected,
                r.inferred_display()
            )
        })
        .collect();
    assert!(failures.is_empty(), "mismatches:\n{}", failures.join("\n"));
}

#[test]
fn variant_pairs_differ_as_the_paper_shows() {
    // For every (base, •-variant) pair with different reported types, our
    // checker must also distinguish them.
    let pairs = [
        ("A1", "A1•"),
        ("A2", "A2•"),
        ("A4", "A4•"),
        ("A6", "A6•"),
        ("C4", "C4•"),
        ("F8", "F8•"),
    ];
    for (plain, dotted) in pairs {
        let a = runner::run_example(freezeml::corpus::figure1::by_id(plain).unwrap());
        let b = runner::run_example(freezeml::corpus::figure1::by_id(dotted).unwrap());
        let (Ok(ta), Ok(tb)) = (&a.inferred, &b.inferred) else {
            panic!("{plain}/{dotted} should both typecheck");
        };
        assert!(
            !ta.alpha_eq(tb),
            "{plain} and {dotted} should have different types, both gave {ta}"
        );
    }
}

#[test]
fn starred_examples_fail_without_their_operators() {
    // ⋆ means the freeze/gen/inst operators are mandatory: stripping them
    // must break the example.
    let env = freezeml::corpus::figure2();
    let opts = Options::default();
    let stripped = [
        ("A10⋆", "poly id"),
        ("A11⋆", "poly (fun x -> x)"),
        ("A12⋆", "id poly (fun x -> x)"),
        ("C5⋆", "id :: ids"),
        ("C6⋆", "(fun x -> x) :: ids"),
        ("D1⋆", "app poly id"),
        ("D2⋆", "revapp id poly"),
        ("D3⋆", "runST argST"),
        ("D4⋆", "app runST argST"),
        ("D5⋆", "revapp argST runST"),
        ("F5⋆", "auto id"),
        ("F7⋆", "head ids 3"),
    ];
    for (id, src) in stripped {
        assert!(
            infer_program(&env, src, &opts).is_err(),
            "{id}: stripped form `{src}` should be ill-typed"
        );
    }
}

#[test]
fn a9_and_c8_starred_examples_need_the_freeze() {
    let opts = Options::default();
    for (id, src, extra) in [
        (
            "A9⋆",
            "f (choose id) ids",
            ("f", "forall a. (a -> a) -> List a -> a"),
        ),
        (
            "C8⋆",
            "g (single id) ids",
            ("g", "forall a. List a -> List a -> a"),
        ),
    ] {
        let mut env = freezeml::corpus::figure2();
        env.push_str(extra.0, extra.1).unwrap();
        assert!(
            infer_program(&env, src, &opts).is_err(),
            "{id}: unfrozen form `{src}` should be ill-typed"
        );
    }
}

#[test]
fn e2_needs_both_eta_expansion_and_regeneralisation() {
    // E2⋆ k $(λx.(h x)@) l — dropping either the $ or the @ breaks it.
    let mut env = freezeml::corpus::figure2();
    env.push_str("k", "forall a. a -> List a -> a").unwrap();
    env.push_str("h", "Int -> forall a. a -> a").unwrap();
    env.push_str("l", "List (forall a. Int -> a -> a)").unwrap();
    let opts = Options::default();
    assert!(infer_program(&env, "k $(fun x -> (h x)@) l", &opts).is_ok());
    assert!(infer_program(&env, "k (fun x -> (h x)@) l", &opts).is_err());
    assert!(infer_program(&env, "k $(fun x -> h x) l", &opts).is_err());
}

#[test]
fn examples_type_under_eliminator_strategy_too() {
    // The eliminator strategy (§3.2) only fires on quantified types in
    // application-head position, which no well-typed Figure 1 row has —
    // so it is a conservative extension on the corpus: every well-typed
    // example keeps its type.
    let opts = Options::eliminator();
    for e in EXAMPLES {
        if e.expected == Expected::Ill || e.mode != freezeml::corpus::Mode::Standard {
            continue;
        }
        let env = runner::env_for(e);
        let got = infer_program(&env, e.src, &opts);
        let Expected::Type(want) = e.expected else {
            unreachable!()
        };
        let want = freezeml::core::parse_type(want).unwrap();
        match got {
            Ok(t) => assert!(
                t.alpha_eq(&want),
                "{}: eliminator strategy changed the type: {t} vs {want}",
                e.id
            ),
            Err(err) => panic!("{}: eliminator strategy broke the example: {err}", e.id),
        }
    }
}

#[test]
fn eliminator_strategy_types_bad5_and_f7_unannotated() {
    // §3.2: eliminator instantiation types bad5 (`let f = λx.x in ⌈f⌉ 42`)
    // — the frozen ⌈f⌉ : ∀a.a→a is implicitly instantiated in application
    // position — and F7 without the explicit @.
    let env = freezeml::corpus::figure2();
    let opts = Options::eliminator();
    assert_eq!(
        infer_program(&env, "(head ids) 3", &opts)
            .unwrap()
            .to_string(),
        "Int"
    );
    assert_eq!(
        infer_program(&env, "let f = fun x -> x in ~f 42", &opts)
            .unwrap()
            .to_string(),
        "Int"
    );
}
