//! # FreezeML — complete and easy type inference for first-class polymorphism
//!
//! A comprehensive Rust reproduction of *Emrich, Lindley, Stolarek, Cheney,
//! Coates. "FreezeML: Complete and Easy Type Inference for First-Class
//! Polymorphism" (PLDI 2020)*. This umbrella crate re-exports the whole
//! workspace:
//!
//! * [`core`] — the FreezeML type system and inference algorithm
//!   (Figures 3–16): kinds, kinding, well-scopedness, unification with
//!   kind-directed demotion, Algorithm-W-style inference that is sound,
//!   complete, and principal; plus a parser and pretty-printer for the
//!   ASCII surface syntax.
//! * [`systemf`] — call-by-value System F with the value restriction
//!   (Appendix B.1): typing and a type-erasing evaluator with runtime
//!   implementations of the Figure 2 prelude.
//! * [`miniml`] — mini-ML and Algorithm W (Appendix B.2), the baseline
//!   FreezeML conservatively extends, plus the ML → System F elaboration
//!   (Figure 22).
//! * [`translate`] — the type-preserving translations `E⟦−⟧` (System F →
//!   FreezeML, Figure 10) and `C⟦−⟧` (FreezeML → System F, Figure 11).
//! * [`corpus`] — the paper's evaluation: every row of Figure 1 and the
//!   Table 1 comparison harness.
//! * [`engine`] — the union-find inference engine: hash-consed type
//!   arena, union-find cells with the paper's `•`/`⋆` kinds, levels for
//!   generalisation, trail-checked escapes — the hot path, held to the
//!   paper-literal [`core`] oracle by a differential layer.
//! * [`obs`] — the observability layer: zero-cost tracing spans (the
//!   sink type parameter monomorphises the disabled path away), a
//!   lock-free sharded metrics registry with log-bucketed latency
//!   histograms, and the data behind the service's `stats` / `metrics`
//!   protocol commands.
//! * [`service`] — the incremental, parallel program-checking service:
//!   a program database (content-hashed bindings, dependency SCCs,
//!   Merkle-keyed scheme cache), a worker pool of engine sessions
//!   checking dirty components in topological waves, and the
//!   line-oriented JSON protocol the `freezeml` binary serves over
//!   stdin/stdout.
//! * [`hmf`] — an HMF-style baseline checker (Leijen 2008, simplified),
//!   giving Table 1 a second *computed* row.
//! * [`conformance`] — the golden-file (`.fml`) conformance harness over
//!   the Figure 1 corpus: loader, runner, readable diffs, a
//!   `UPDATE_EXPECT=1` bless mode, and a differential mode against the
//!   `hmf` and `miniml` baselines (golden files in `tests/conformance/`).
//!
//! ## Quickstart
//!
//! ```
//! use freezeml::core::{infer_program, Options};
//! use freezeml::corpus::figure2;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let env = figure2();
//! // Example A2• from the paper: freezing `id` keeps its polytype.
//! let ty = infer_program(&env, "choose ~id", &Options::default())?;
//! assert_eq!(ty.to_string(), "(forall a. a -> a) -> forall a. a -> a");
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for an architecture overview, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

/// The `freezeml lint` workspace concurrency gate (see
/// [`lint::PLAN`] for the scanned trees and rules).
pub mod lint;

pub use freezeml_conformance as conformance;
pub use freezeml_core as core;
pub use freezeml_corpus as corpus;
pub use freezeml_engine as engine;
pub use freezeml_hmf as hmf;
pub use freezeml_miniml as miniml;
pub use freezeml_obs as obs;
pub use freezeml_service as service;
pub use freezeml_systemf as systemf;
pub use freezeml_translate as translate;
