//! `freezeml lint` — the workspace concurrency lint gate.
//!
//! A deliberately small, dependency-free, token-level scanner (no
//! `syn`, no rustc invocation — it must run in the offline CI image in
//! milliseconds) that enforces the conventions the concurrency
//! correctness tooling relies on:
//!
//! * **`std-sync`** — wrapped crates (`obs`, `engine`, `service`) must
//!   not name `std::sync` in code: every lock/atomic goes through the
//!   crate's `sync` alias module, so `RUSTFLAGS='--cfg interleave'`
//!   model builds actually instrument them. A bare import silently
//!   opts that call site out of the model checker.
//! * **`ord`** — every `Ordering::` use site carries a `// ord:`
//!   justification comment (same line or within the six lines above).
//!   Orderings are load-bearing and invisible to review without a
//!   stated reason; the comment is the reason.
//! * **`seqcst`** — `SeqCst` needs an explicit waiver. Every SeqCst in
//!   this codebase so far was either a stand-in for release/acquire or
//!   pure superstition; a new one must say why two independent
//!   locations need a single total order.
//! * **`unwrap`** — no `.unwrap()` / `.expect(` in
//!   `crates/service/src` non-test code. The serving stack's contract
//!   is that one request can never take down the process; a panic
//!   shortcut in the service layer is a denial-of-service bug unless
//!   argued otherwise.
//!
//! Waivers: a line comment `// lint: allow(<rule>) — reason` on the
//! violating line or within the three lines above it. The reason is
//! not optional in spirit — the waiver exists to make reviewers read
//! one.
//!
//! `#[cfg(test)]` modules are skipped entirely (tests panic on
//! purpose), as are string literals, comments, and doc examples (the
//! scanner strips them before matching).

use std::path::Path;
use std::process::ExitCode;

/// One finding: file, 1-based line, rule, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules to run over a directory tree.
#[derive(Clone, Copy, Debug)]
pub struct Rules {
    /// Forbid `std::sync` in code (wrapped crates only).
    pub std_sync: bool,
    /// Require `// ord:` justifications on `Ordering::` sites.
    pub ord: bool,
    /// Require a waiver on any `SeqCst`.
    pub seqcst: bool,
    /// Forbid `.unwrap()` / `.expect(` outside tests.
    pub unwrap: bool,
}

/// The scan plan: workspace-relative source roots and their rules.
/// The interleave shim itself is deliberately NOT scanned — it is the
/// implementation of the wrappers and necessarily full of `std::sync`.
pub const PLAN: &[(&str, Rules)] = &[
    (
        "crates/obs/src",
        Rules {
            std_sync: true,
            ord: true,
            seqcst: true,
            unwrap: false,
        },
    ),
    (
        "crates/engine/src",
        Rules {
            std_sync: true,
            ord: true,
            seqcst: true,
            unwrap: false,
        },
    ),
    (
        "crates/service/src",
        Rules {
            std_sync: true,
            ord: true,
            seqcst: true,
            unwrap: true,
        },
    ),
    (
        // The binary keeps plain `std::sync` (it is not model-checked)
        // but its orderings are held to the same justification bar.
        "src",
        Rules {
            std_sync: false,
            ord: true,
            seqcst: true,
            unwrap: false,
        },
    ),
];

// ------------------------------------------------------------ stripper

/// Lexer state carried across lines (block comments and string
/// literals span them).
enum State {
    Code,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a `"…"` string.
    Str,
    /// Inside an `r##"…"##` raw string with this many hashes.
    RawStr(u32),
}

/// Strip one line to `(code, line_comment)` given the carried state.
/// Code characters inside strings/comments are blanked; the comment
/// part is the text of a `//` comment on the line, if any.
fn strip_line(state: &mut State, line: &str) -> (String, String) {
    let b = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < b.len() {
        match state {
            State::Block(depth) => {
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    *depth -= 1;
                    i += 2;
                    if *depth == 0 {
                        *state = State::Code;
                    }
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    *depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == b'\\' {
                    i += 2; // escape: skip the escaped byte (incl. `\"`)
                } else if b[i] == b'"' {
                    *state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == b'"' {
                    let n = *hashes as usize;
                    if b.len() >= i + 1 + n && b[i + 1..i + 1 + n].iter().all(|&c| c == b'#') {
                        i += 1 + n;
                        *state = State::Code;
                        continue;
                    }
                }
                i += 1;
            }
            State::Code => {
                let c = b[i];
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    comment.push_str(&line[i..]);
                    break;
                }
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    *state = State::Block(1);
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    *state = State::Str;
                    i += 1;
                    continue;
                }
                if c == b'r' {
                    // Raw string: `r"` or `r#…#"`. Only if preceded by a
                    // non-identifier byte (else it is part of a name).
                    let prev_ident =
                        i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
                    if !prev_ident {
                        let mut j = i + 1;
                        while j < b.len() && b[j] == b'#' {
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            *state = State::RawStr((j - i - 1) as u32);
                            i = j + 1;
                            code.push(' ');
                            continue;
                        }
                    }
                }
                if c == b'\'' {
                    // Char literal vs lifetime. An escape (`'\n'`,
                    // `'\''`, `'\u{…}'`) or a single byte followed by a
                    // closing quote is a char literal; a lifetime
                    // (`'a`, `'static`) has no matching close.
                    let rest = &b[i + 1..];
                    let close = if rest.first() == Some(&b'\\') {
                        // Skip `\x` then find the terminating quote
                        // (handles `'\''` and `'\u{1F600}'`).
                        rest.iter()
                            .enumerate()
                            .skip(2)
                            .take(12)
                            .find(|&(_, &x)| x == b'\'')
                            .map(|(p, _)| p)
                    } else if rest.get(1) == Some(&b'\'') {
                        Some(1)
                    } else {
                        None
                    };
                    if let Some(p) = close {
                        i += 1 + p + 1;
                        code.push(' ');
                        continue;
                    }
                    // Lifetime: emit the quote as code and move on.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c as char);
                i += 1;
            }
        }
    }
    (code, comment)
}

// ---------------------------------------------------------------- scan

/// Scan one file's source text under `rules`. `label` is the path
/// reported in findings.
pub fn scan_source(label: &str, text: &str, rules: Rules) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut state = State::Code;
    let raw: Vec<&str> = text.lines().collect();
    let mut stripped: Vec<(String, String)> = Vec::with_capacity(raw.len());
    for line in &raw {
        stripped.push(strip_line(&mut state, line));
    }

    // Mark test-module lines: a `#[cfg(test)]` attribute starts a skip
    // region at the next `{` in code, ending when its brace closes.
    let mut in_test = vec![false; raw.len()];
    let mut i = 0;
    while i < raw.len() {
        if stripped[i].0.contains("#[cfg(test)]") {
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < raw.len() {
                in_test[j] = true;
                for ch in stripped[j].0.bytes() {
                    match ch {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    let comment_window = |idx: usize, back: usize, needle: &str| -> bool {
        let lo = idx.saturating_sub(back);
        stripped[lo..=idx].iter().any(|(_, c)| c.contains(needle))
    };
    let waived = |idx: usize, rule: &str| -> bool {
        let tag = format!("lint: allow({rule})");
        comment_window(idx, 3, &tag)
    };

    for (idx, (code, _)) in stripped.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let tight: String = code.split_whitespace().collect::<Vec<_>>().join("");
        let is_use = code.trim_start().starts_with("use ");

        if rules.std_sync && tight.contains("std::sync") && !waived(idx, "std-sync") {
            out.push(Finding {
                file: label.to_string(),
                line: idx + 1,
                rule: "std-sync",
                message: "bare `std::sync` in a wrapped crate — import from the crate's \
                          `sync` alias module so model builds instrument it"
                    .to_string(),
            });
        }
        if rules.ord
            && code.contains("Ordering::")
            && !is_use
            && !comment_window(idx, 6, "ord:")
            && !waived(idx, "ord")
        {
            out.push(Finding {
                file: label.to_string(),
                line: idx + 1,
                rule: "ord",
                message: "atomic ordering without a `// ord:` justification".to_string(),
            });
        }
        if rules.seqcst && code.contains("SeqCst") && !is_use && !waived(idx, "seqcst") {
            out.push(Finding {
                file: label.to_string(),
                line: idx + 1,
                rule: "seqcst",
                message: "`SeqCst` without a `// lint: allow(seqcst)` waiver — say why a \
                          total order over independent locations is needed"
                    .to_string(),
            });
        }
        if rules.unwrap
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !waived(idx, "unwrap")
        {
            out.push(Finding {
                file: label.to_string(),
                line: idx + 1,
                rule: "unwrap",
                message: "`.unwrap()`/`.expect()` in service non-test code — handle the \
                          error or waive with a stated invariant"
                    .to_string(),
            });
        }
    }
    out
}

/// Recursively scan every `.rs` file under `dir` (workspace-relative
/// against `root`). Returns the number of files scanned.
fn scan_dir(
    root: &Path,
    dir: &str,
    rules: Rules,
    out: &mut Vec<Finding>,
) -> std::io::Result<usize> {
    let mut files_seen = 0;
    let mut stack = vec![root.join(dir)];
    while let Some(d) = stack.pop() {
        let entries = match std::fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue, // absent tree (partial checkout): skip
        };
        let mut files: Vec<_> = entries.filter_map(Result::ok).collect();
        files.sort_by_key(|e| e.path());
        for e in files {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let text = std::fs::read_to_string(&p)?;
                let label = p.strip_prefix(root).unwrap_or(&p).display().to_string();
                out.extend(scan_source(&label, &text, rules));
                files_seen += 1;
            }
        }
    }
    Ok(files_seen)
}

/// A completed workspace scan: the findings plus how many files were
/// actually read, so "clean" is distinguishable from "scanned nothing"
/// (an empty checkout must not pass silently).
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Run the full workspace plan against `root`.
///
/// # Errors
///
/// I/O failure reading a source file.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut findings = Vec::new();
    let mut files_scanned = 0;
    for (dir, rules) in PLAN {
        files_scanned += scan_dir(root, dir, *rules, &mut findings)?;
    }
    Ok(Report {
        findings,
        files_scanned,
    })
}

/// The `freezeml lint` entry point. `rest` may name a workspace root
/// (default: the current directory).
pub fn cmd_lint(rest: &[String]) -> ExitCode {
    let root = rest.first().map(String::as_str).unwrap_or(".");
    match run(Path::new(root)) {
        Err(e) => {
            eprintln!("freezeml lint: {e}");
            ExitCode::FAILURE
        }
        Ok(report) if report.files_scanned == 0 => {
            eprintln!("freezeml lint: no source files under {root} — wrong root?");
            ExitCode::FAILURE
        }
        Ok(report) if report.findings.is_empty() => {
            println!(
                "freezeml lint: clean ({} files scanned)",
                report.files_scanned
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "freezeml lint: {} finding(s) across {} files",
                report.findings.len(),
                report.files_scanned
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: Rules = Rules {
        std_sync: true,
        ord: true,
        seqcst: true,
        unwrap: true,
    };

    #[test]
    fn flags_bare_std_sync_but_not_in_comments_or_strings() {
        let f = scan_source("x.rs", "use std::sync::Arc;\n", R);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "std-sync");
        assert_eq!(f[0].line, 1);

        assert!(scan_source("x.rs", "// use std::sync::Arc;\n", R).is_empty());
        assert!(scan_source("x.rs", "let s = \"std::sync\";\n", R).is_empty());
        assert!(scan_source("x.rs", "/* std::sync */ let x = 1;\n", R).is_empty());
        assert!(scan_source("x.rs", "let s = r#\"std::sync\"#;\n", R).is_empty());
    }

    #[test]
    fn ord_rule_accepts_justified_sites_and_use_lines() {
        let bad = "x.load(Ordering::Relaxed);\n";
        let f = scan_source("x.rs", bad, R);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ord");

        let good = "// ord: Relaxed — statistic\nx.load(Ordering::Relaxed);\n";
        assert!(scan_source("x.rs", good, R).is_empty());

        let import = "use crate::sync::atomic::{AtomicU64, Ordering};\n";
        assert!(scan_source("x.rs", import, R).is_empty());
    }

    #[test]
    fn seqcst_needs_a_waiver_even_when_ord_commented() {
        let bad = "// ord: SeqCst — because\nx.load(Ordering::SeqCst);\n";
        let f = scan_source("x.rs", bad, R);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "seqcst");

        let good =
            "// ord: SeqCst — two flags, one order\n// lint: allow(seqcst) — cross-variable \
             ordering with the stop flag\nx.load(Ordering::SeqCst);\n";
        assert!(scan_source("x.rs", good, R).is_empty());
    }

    #[test]
    fn unwrap_rule_skips_tests_and_honors_waivers() {
        let bad = "let x = y.unwrap();\n";
        assert_eq!(scan_source("x.rs", bad, R)[0].rule, "unwrap");

        let waived = "// lint: allow(unwrap) — invariant\nlet x = y.unwrap();\n";
        assert!(scan_source("x.rs", waived, R).is_empty());

        let test_mod = "#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        assert!(scan_source("x.rs", test_mod, R).is_empty());

        let after =
            "#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn f() { z.unwrap(); }\n";
        let f = scan_source("x.rs", after, R);
        assert_eq!(f.len(), 1, "code after the test mod is scanned again");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn multiline_strings_and_nested_block_comments_stay_opaque() {
        let s = "let s = \"line one\nstd::sync line two\";\nlet t = 1;\n";
        assert!(scan_source("x.rs", s, R).is_empty());
        let c = "/* outer /* inner std::sync */ still out */\nlet t = 1;\n";
        assert!(scan_source("x.rs", c, R).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_stripper() {
        let s = "let q = '\"'; use std::sync::Arc;\n";
        let f = scan_source("x.rs", s, R);
        assert_eq!(f.len(), 1, "the char-literal quote must not open a string");
        let lt = "fn f<'a>(x: &'a str) -> &'a str { x }\nuse std::sync::Arc;\n";
        assert_eq!(scan_source("x.rs", lt, R).len(), 1);
    }
}
