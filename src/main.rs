//! The `freezeml` binary: the program-checking service over stdio, plus
//! batch subcommands.
//!
//! ```text
//! freezeml [serve]              serve the JSON line protocol on stdin/stdout
//! freezeml serve --socket ADDR  serve the same protocol over a socket: ADDR
//!                               is host:port for TCP, or a filesystem path
//!                               (or unix:PATH) for a Unix-domain socket.
//!                               Concurrent client sessions share one scheme
//!                               bank and outcome cache; --workers N sets the
//!                               number of session threads
//! freezeml check FILE…          check program files, print per-binding types
//! freezeml elaborate FILE…      check program files and print each visible
//!                               binding's System F image (verified against
//!                               the freezeml_systemf typing oracle)
//! freezeml replay PATH…         corpus replay: cold-open every program, then
//!                               touch every binding and recheck warm; PATHs
//!                               are program files, `#! program` golden files,
//!                               or directories of golden files
//! freezeml gen N [SEED]         print a generated N-binding program
//! freezeml bench-json [MS]      run the engine_compare and
//!                               service_throughput benches with the JSON
//!                               telemetry sink and write BENCH_engine.json
//!                               / BENCH_service.json (budget MS per
//!                               benchmark, default 2000)
//! freezeml lint [DIR]           workspace concurrency lint: scan crate
//!                               sources for bare `std::sync` imports in
//!                               wrapped crates, unjustified atomic
//!                               orderings (no `// ord:` comment), unwaived
//!                               `SeqCst`, and `unwrap()`/`expect()` in
//!                               service non-test code; non-zero exit on
//!                               any finding (CI gate)
//! freezeml stats --connect ADDR query a running server's metrics registry:
//!                               send {"cmd":"stats"} and pretty-print the
//!                               JSON snapshot; with --metrics, send
//!                               {"cmd":"metrics"} and print the Prometheus
//!                               text exposition instead
//!
//! options (before the subcommand arguments):
//!   --engine core|uf|both       inference engine (default: $ENGINE or uf)
//!   --workers N                 worker-pool size (default: CPU count, ≤ 8);
//!                               under --socket: session-thread count
//!   --pure                      disable the value restriction
//!   --socket ADDR               (serve) listen on a socket instead of stdio
//!   --max-request-bytes N       (serve) per-line request cap (default 4 MiB)
//!   --trace FILE                (serve/check) write JSONL trace records
//!                               (spans, events, warnings) to FILE; the
//!                               FREEZEML_TRACE env var does the same for
//!                               embedded uses
//!   --slow-ms N                 (serve) log a structured slow-request trace
//!                               event (and bump the slow_requests counter)
//!                               for any request taking ≥ N ms
//!   --cache-dir DIR             (serve/check) persist warm state to
//!                               DIR/freezeml.cache: load it on startup (cold
//!                               fallback on any mismatch or corruption),
//!                               write it back on exit; under serve, also
//!                               checkpoint periodically
//!   --max-cache-bytes N         snapshot size cap; oldest-generation entries
//!                               are evicted to fit (default 64 MiB)
//!   --checkpoint-secs N         (serve) seconds between periodic snapshots
//!                               (default 30)
//!   --request-timeout-ms N      per-request budget: a request that cannot be
//!                               read or checked within N ms is answered one
//!                               flat {"ok":false,"error":"deadline"} line and
//!                               the connection closes. Default: off on stdio,
//!                               10000 under --socket; 0 disables
//!   --max-pending N             (serve --socket) accepted connections allowed
//!                               to wait for a session thread; excess arrivals
//!                               are shed with a structured `overloaded` error
//!                               and a retry-after-ms hint (default 64)
//!   --max-sessions N            (serve --socket) session-thread count
//!                               (default: --workers)
//!   --drain-secs N              (serve --socket) on SIGTERM/SIGINT or the
//!                               protocol `shutdown` command, stop accepting,
//!                               finish in-flight requests for up to N s, take
//!                               a final checkpoint, exit 0 (default 10)
//! ```
//!
//! The protocol itself is documented in `freezeml_service::protocol`.

use freezeml::lint;

use freezeml_conformance::program as golden;
use freezeml_obs::Tracer;
use freezeml_service::sock::Admission;
use freezeml_service::{
    load, persist, serve_with, Checkpointer, EngineSel, Json, LoadOutcome, PersistConfig,
    ServeOptions, Service, ServiceConfig, Shared, SocketServer,
};
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default per-request budget under `--socket` (`--request-timeout-ms`
/// overrides; 0 disables).
const DEFAULT_SOCKET_TIMEOUT_MS: u64 = 10_000;

struct Args {
    cfg: ServiceConfig,
    serve_opts: ServeOptions,
    socket: Option<String>,
    cache: Option<PersistConfig>,
    checkpoint_secs: u64,
    trace: Option<String>,
    /// `--request-timeout-ms` as given; `None` = flag absent (default
    /// off on stdio, [`DEFAULT_SOCKET_TIMEOUT_MS`] on sockets).
    request_timeout_ms: Option<u64>,
    max_pending: Option<usize>,
    max_sessions: Option<usize>,
    drain_secs: u64,
    cmd: String,
    rest: Vec<String>,
}

/// Set by the SIGTERM/SIGINT handler; a watcher thread translates it
/// into [`Shared::request_drain`] on the serving hub. The handler
/// itself only stores a flag — the one operation that is
/// async-signal-safe.
static DRAIN_SIGNAL: AtomicBool = AtomicBool::new(false);

extern "C" fn on_drain_signal(_sig: std::os::raw::c_int) {
    // ord: Release — pairs with the Acquire load in the watcher
    // thread. One flag, one watcher: release/acquire is the whole
    // contract; SeqCst bought nothing extra. (Strictly even Relaxed
    // would do — the flag carries no dependent data — but a signal
    // handler is exactly where conservative publication is cheap.)
    DRAIN_SIGNAL.store(true, Ordering::Release);
}

/// Route SIGTERM and SIGINT to the drain flag. `std` exposes no signal
/// API; `signal(2)` comes straight from the libc `std` already links.
#[cfg(unix)]
fn install_drain_signals() {
    use std::os::raw::c_int;
    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    unsafe {
        signal(SIGINT, on_drain_signal);
        signal(SIGTERM, on_drain_signal);
    }
}

#[cfg(not(unix))]
fn install_drain_signals() {}

fn usage() -> ExitCode {
    eprintln!(
        "usage: freezeml [--engine core|uf|both] [--workers N] [--pure] \
         [--socket ADDR] [--max-request-bytes N] [--trace FILE] [--slow-ms N] \
         [--cache-dir DIR] [--max-cache-bytes N] [--checkpoint-secs N] \
         [--request-timeout-ms N] [--max-pending N] [--max-sessions N] \
         [--drain-secs N] \
         [serve | check FILE… | elaborate FILE… | replay PATH… | gen N [SEED] | \
         bench-json [MS] | stats --connect ADDR [--metrics]]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut cfg = ServiceConfig {
        // The server's default engine is the union-find hot path; the
        // conformance and CI runs opt into `both` via $ENGINE.
        engine: if std::env::var("ENGINE").is_ok() {
            EngineSel::from_env()
        } else {
            EngineSel::Uf
        },
        ..ServiceConfig::default()
    };
    let mut words = std::env::args().skip(1);
    let mut cmd = None;
    let mut rest = Vec::new();
    let mut serve_opts = ServeOptions::default();
    let mut socket = None;
    let mut cache_dir: Option<String> = None;
    let mut max_cache_bytes = persist::DEFAULT_MAX_BYTES;
    let mut checkpoint_secs = 30u64;
    let mut trace: Option<String> = None;
    let mut request_timeout_ms: Option<u64> = None;
    let mut max_pending: Option<usize> = None;
    let mut max_sessions: Option<usize> = None;
    let mut drain_secs = 10u64;
    while let Some(w) = words.next() {
        match w.as_str() {
            "--engine" => {
                cfg.engine = match words.next().as_deref() {
                    Some("core") => EngineSel::Core,
                    Some("uf") => EngineSel::Uf,
                    Some("both") => EngineSel::Both,
                    _ => return Err(usage()),
                }
            }
            "--workers" => {
                cfg.workers = words
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(usage)?;
            }
            "--pure" => cfg.opts.value_restriction = false,
            "--socket" => {
                socket = Some(words.next().ok_or_else(usage)?);
            }
            "--max-request-bytes" => {
                serve_opts.max_request_bytes = words
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(usage)?;
            }
            "--trace" => {
                trace = Some(words.next().ok_or_else(usage)?);
            }
            "--slow-ms" => {
                serve_opts.slow_ms = Some(
                    words
                        .next()
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(usage)?,
                );
            }
            "--cache-dir" => {
                cache_dir = Some(words.next().ok_or_else(usage)?);
            }
            "--max-cache-bytes" => {
                max_cache_bytes = words
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(usage)?;
            }
            "--checkpoint-secs" => {
                checkpoint_secs = words
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(usage)?;
            }
            "--request-timeout-ms" => {
                request_timeout_ms = Some(
                    words
                        .next()
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(usage)?,
                );
            }
            "--max-pending" => {
                max_pending = Some(
                    words
                        .next()
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(usage)?,
                );
            }
            "--max-sessions" => {
                max_sessions = Some(
                    words
                        .next()
                        .and_then(|n| n.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or_else(usage)?,
                );
            }
            "--drain-secs" => {
                drain_secs = words
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(usage)?;
            }
            "--help" | "-h" => return Err(usage()),
            _ if cmd.is_none() => cmd = Some(w),
            _ => rest.push(w),
        }
    }
    Ok(Args {
        cfg,
        serve_opts,
        socket,
        cache: cache_dir.map(|dir| PersistConfig {
            dir: dir.into(),
            max_bytes: max_cache_bytes,
        }),
        checkpoint_secs,
        trace,
        request_timeout_ms,
        max_pending,
        max_sessions,
        drain_secs,
        cmd: cmd.unwrap_or_else(|| "serve".to_string()),
        rest,
    })
}

/// Build the tracer `--trace FILE` asks for, or the env-configured one.
/// `Ok(None)` means no flag: the hub falls back to `FREEZEML_TRACE`.
fn make_tracer(trace: &Option<String>) -> Result<Option<Tracer>, ExitCode> {
    match trace {
        None => Ok(None),
        Some(path) => match Tracer::to_file(Path::new(path)) {
            Ok(t) => Ok(Some(t)),
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                Err(ExitCode::FAILURE)
            }
        },
    }
}

/// Report a cache load on stderr: one structured line, warm or cold,
/// so operators can tell which start they got without parsing output.
fn report_load(out: &LoadOutcome) {
    if let Some(w) = &out.warning {
        eprintln!("freezeml: cache: starting cold ({w})");
    } else if out.loaded {
        eprintln!(
            "freezeml: cache: warm start ({} verdict(s), {} document report(s), \
             {} parsed declaration(s), {} scheme node(s), generation {})",
            out.entries, out.docs, out.chunks, out.nodes, out.generation
        );
    }
}

/// Serve over a socket until a drain (SIGTERM/SIGINT or the protocol
/// `shutdown` command) winds it down. `addr` is a Unix-socket path when
/// it contains a path separator or carries the `unix:` prefix, a TCP
/// `host:port` otherwise.
fn cmd_serve_socket(args: &Args, addr: &str, tracer: Option<Tracer>) -> ExitCode {
    let cfg = args.cfg;
    let sessions = args.max_sessions.unwrap_or(cfg.workers).max(1);
    // Per-request deadlines default ON over sockets (a remote client
    // can stall; stdin cannot hang up the same way). 0 disables.
    let opts = ServeOptions {
        request_timeout_ms: match args.request_timeout_ms {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_SOCKET_TIMEOUT_MS),
        },
        ..args.serve_opts
    };
    let admission = Admission {
        max_pending: args.max_pending.unwrap_or(Admission::default().max_pending),
        ..Admission::default()
    };
    let shared = Arc::new(Shared::new());
    if let Some(t) = tracer {
        shared.set_tracer(t);
    }
    // Warm the hub before the first connection, and checkpoint it
    // periodically; the graceful-drain path below also takes a final
    // snapshot, so a SIGTERM'd server loses at most one interval.
    let checkpointer = args.cache.clone().map(|pcfg| {
        let epoch = persist::epoch(&cfg.opts);
        report_load(&persist::load(&shared, epoch, &pcfg));
        Checkpointer::checkpoint_every(
            Arc::clone(&shared),
            epoch,
            pcfg,
            Duration::from_secs(args.checkpoint_secs),
        )
    });
    // SIGTERM/SIGINT → drain: the handler flips a process-global flag,
    // this watcher translates it into a hub drain (signal handlers
    // cannot touch the Arc themselves).
    install_drain_signals();
    {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            // ord: Acquire — pairs with the Release store in the
            // signal handler.
            if DRAIN_SIGNAL.load(Ordering::Acquire) {
                eprintln!("freezeml: drain requested by signal");
                shared.request_drain();
                return;
            }
            if shared.draining() {
                return; // protocol `shutdown` got there first
            }
            std::thread::sleep(Duration::from_millis(100));
        });
    }
    let spawned = if let Some(path) = addr.strip_prefix("unix:") {
        SocketServer::spawn_unix_with(Path::new(path), cfg, shared, sessions, opts, admission)
    } else if addr.contains('/') {
        SocketServer::spawn_unix_with(Path::new(addr), cfg, shared, sessions, opts, admission)
    } else {
        SocketServer::spawn_tcp_with(addr, cfg, shared, sessions, opts, admission)
    };
    match spawned {
        Ok(server) => {
            eprintln!(
                "freezeml: serving on {} ({sessions} session thread(s))",
                server.local_addr()
            );
            // Blocks for the server's whole life; after a drain, waits
            // up to --drain-secs for in-flight sessions.
            let all = server.join_timeout(Some(Duration::from_secs(args.drain_secs)));
            if !all {
                eprintln!(
                    "freezeml: drain: abandoning session(s) still busy after {}s",
                    args.drain_secs
                );
            }
            if let Some(cp) = checkpointer {
                if let Err(e) = cp.finish() {
                    eprintln!("freezeml: cache: final snapshot failed: {e}");
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot listen on {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Collect `(id, program text)` sources from a path: a directory of
/// golden files, one `#! program` golden file, or a plain program file.
fn sources_from(path: &Path) -> Result<Vec<(String, String)>, String> {
    if path.is_dir() {
        let files = golden::parse_dir(path).map_err(|e| e.to_string())?;
        return Ok(golden::program_sources(&files));
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if text.lines().next().map(str::trim_end) == Some(golden::MARKER) {
        let file = golden::parse_str(path, &text).map_err(|e| e.to_string())?;
        return Ok(golden::program_sources(std::slice::from_ref(&file)));
    }
    Ok(vec![(path.display().to_string(), text)])
}

fn cmd_check(
    cfg: ServiceConfig,
    files: &[String],
    cache: Option<PersistConfig>,
    tracer: Option<Tracer>,
) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut svc = Service::new(cfg);
    if let Some(t) = tracer {
        svc.shared().set_tracer(t);
    }
    let caching = cache.is_some();
    if let Some(pcfg) = cache {
        report_load(&svc.attach_cache(pcfg));
    }
    let mut failed = false;
    for file in files {
        let all = match sources_from(Path::new(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (id, text) in all {
            println!("── {id}");
            match svc.open(&id, &text) {
                Err(e) => {
                    println!("  parse error: {e}");
                    failed = true;
                }
                Ok(report) => {
                    for b in &report.bindings {
                        let (line, col) = b.span.line_col(&text);
                        println!("  {line}:{col} {} : {}", b.name, b.outcome.display());
                        failed |= !b.outcome.is_typed();
                    }
                    let (n, rechecked, reused, waves) = (
                        report.bindings.len(),
                        report.rechecked,
                        report.reused,
                        report.waves,
                    );
                    if caching {
                        println!(
                            "  [{n} binding(s), rechecked {rechecked}, reused {reused}, \
                             {waves} wave(s), {} cached, {} evicted]",
                            svc.cache_len(),
                            svc.evictions()
                        );
                    } else {
                        println!(
                            "  [{n} binding(s), rechecked {rechecked}, reused {reused}, \
                             {waves} wave(s)]"
                        );
                    }
                }
            }
        }
    }
    match svc.save_cache() {
        Some(Err(e)) => eprintln!("freezeml: cache: snapshot failed: {e}"),
        Some(Ok(out)) => eprintln!(
            "freezeml: cache: saved {} byte(s) ({} verdict(s), {} document report(s), \
             {} declaration(s), generation {})",
            out.bytes, out.entries, out.docs, out.chunks, out.generation
        ),
        None => {}
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Check program files and render every visible binding's System F
/// image — each image has passed the `freezeml_systemf` typing oracle
/// (and, under `--engine both`, the cross-pipeline evidence agreement)
/// before it is printed.
fn cmd_elaborate(cfg: ServiceConfig, files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut svc = Service::new(cfg);
    let mut failed = false;
    for file in files {
        let all = match sources_from(Path::new(file)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (id, text) in all {
            println!("── {id}");
            match svc.open(&id, &text) {
                Err(e) => {
                    println!("  parse error: {e}");
                    failed = true;
                }
                Ok(report) => {
                    // Visible bindings only (ML shadowing: the last of
                    // each name), in declaration order.
                    let mut names: Vec<String> = Vec::new();
                    for b in &report.bindings {
                        names.retain(|n| n != &b.name);
                        names.push(b.name.clone());
                    }
                    for name in names {
                        match svc.elaborate(&id, &name) {
                            Ok(Some(e)) => {
                                println!("  {} : {}", e.name, e.ty);
                                println!("    = {}", e.fterm);
                            }
                            Ok(None) => unreachable!("name taken from the report"),
                            Err(e) => {
                                println!("  {name} : cannot elaborate ({e})");
                                failed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(cfg: ServiceConfig, paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return usage();
    }
    let mut programs = Vec::new();
    for p in paths {
        match sources_from(Path::new(p)) {
            Ok(mut s) => programs.append(&mut s),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut svc = Service::new(cfg);
    let start = std::time::Instant::now();
    let stats = load::replay(&mut svc, &programs);
    println!("{} in {:?}", stats.render(), start.elapsed());
    for f in &stats.failures {
        eprintln!("failure: {f}");
    }
    if stats.failures.is_empty() && stats.programs > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_gen(rest: &[String]) -> ExitCode {
    let n = rest.first().and_then(|s| s.parse::<usize>().ok());
    let Some(n) = n else { return usage() };
    let seed = rest
        .get(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xF2EE);
    print!("{}", load::GenProgram::generate(n, seed).text());
    ExitCode::SUCCESS
}

/// Run the headline benches under `cargo bench` with the criterion
/// shim's JSON sink enabled, writing the telemetry record the perf
/// trajectory is tracked by (`BENCH_engine.json` / `BENCH_service.json`
/// at the workspace root — see EXPERIMENTS.md).
fn cmd_bench_json(rest: &[String]) -> ExitCode {
    let budget_ms: u64 = match rest.first() {
        None => 2000,
        Some(s) => match s.parse() {
            Ok(n) => n,
            Err(_) => return usage(),
        },
    };
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: no working directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (bench, out) in [
        ("engine_compare", "BENCH_engine.json"),
        ("service_throughput", "BENCH_service.json"),
    ] {
        // Absolute sink path: cargo runs bench binaries with the package
        // directory as cwd, and the record belongs at the invocation root.
        // Removed first: the shim merges into an existing document by id,
        // and this subcommand's contract is a from-scratch record.
        let sink = cwd.join(out);
        let _ = std::fs::remove_file(&sink);
        eprintln!("── cargo bench --bench {bench} → {out} (budget {budget_ms} ms)");
        let status =
            std::process::Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
                .args(["bench", "-p", "freezeml_bench", "--bench", bench])
                .env("CRITERION_SHIM_BUDGET_MS", budget_ms.to_string())
                .env("CRITERION_SHIM_JSON", &sink)
                .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("error: cargo bench --bench {bench} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: cannot run cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Query a running server's metrics: connect to `--connect ADDR`, send
/// one `stats` (or `metrics`) request, print the answer.
fn cmd_stats(rest: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let mut want_metrics = false;
    let mut it = rest.iter();
    while let Some(w) = it.next() {
        match w.as_str() {
            "--connect" => match it.next() {
                Some(a) => connect = Some(a.clone()),
                None => return usage(),
            },
            "--metrics" => want_metrics = true,
            _ => return usage(),
        }
    }
    let Some(addr) = connect else { return usage() };
    let line = if want_metrics {
        r#"{"cmd":"metrics"}"#
    } else {
        r#"{"cmd":"stats"}"#
    };
    let response = (|| -> io::Result<String> {
        let mut reply = String::new();
        if let Some(path) = addr.strip_prefix("unix:") {
            let mut s = std::os::unix::net::UnixStream::connect(path)?;
            writeln!(s, "{line}")?;
            BufReader::new(s).read_line(&mut reply)?;
        } else if addr.contains('/') {
            let mut s = std::os::unix::net::UnixStream::connect(&addr)?;
            writeln!(s, "{line}")?;
            BufReader::new(s).read_line(&mut reply)?;
        } else {
            let mut s = std::net::TcpStream::connect(&addr)?;
            writeln!(s, "{line}")?;
            BufReader::new(s).read_line(&mut reply)?;
        }
        Ok(reply)
    })();
    let reply = match response {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot query {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Ok(v) = Json::parse(reply.trim_end()) else {
        eprintln!("error: server answered non-JSON: {}", reply.trim_end());
        return ExitCode::FAILURE;
    };
    if v.get("ok") != Some(&Json::Bool(true)) {
        eprintln!("error: server answered {v}");
        return ExitCode::FAILURE;
    }
    if want_metrics {
        // The exposition text is carried as one JSON string; print raw.
        match v.get("metrics").and_then(Json::as_str) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("error: malformed metrics response: {v}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!("{v}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let tracer = match make_tracer(&args.trace) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match args.cmd.as_str() {
        "serve" => {
            if let Some(addr) = &args.socket {
                return cmd_serve_socket(&args, addr, tracer);
            }
            let mut svc = Service::new(args.cfg);
            if let Some(t) = tracer {
                svc.shared().set_tracer(t);
            }
            let checkpointer = args.cache.map(|pcfg| {
                report_load(&svc.attach_cache(pcfg.clone()));
                Checkpointer::checkpoint_every(
                    Arc::clone(svc.shared()),
                    persist::epoch(&svc.config().opts),
                    pcfg,
                    Duration::from_secs(args.checkpoint_secs),
                )
            });
            let stdin = io::stdin();
            let stdout = io::stdout();
            // Deadlines default OFF on stdio (stdin never stalls the
            // way a remote peer can); the flag still arms them.
            let serve_opts = ServeOptions {
                request_timeout_ms: args.request_timeout_ms.filter(|&n| n > 0),
                ..args.serve_opts
            };
            let served = serve_with(&mut svc, stdin.lock(), stdout.lock(), &serve_opts);
            if let Some(cp) = checkpointer {
                if let Err(e) = cp.finish() {
                    eprintln!("freezeml: cache: final snapshot failed: {e}");
                }
            }
            match served {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    let _ = writeln!(io::stderr(), "transport error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "check" => cmd_check(args.cfg, &args.rest, args.cache, tracer),
        "elaborate" => cmd_elaborate(args.cfg, &args.rest),
        "replay" => cmd_replay(args.cfg, &args.rest),
        "gen" => cmd_gen(&args.rest),
        "lint" => lint::cmd_lint(&args.rest),
        "bench-json" => cmd_bench_json(&args.rest),
        "stats" => cmd_stats(&args.rest),
        _ => usage(),
    }
}
