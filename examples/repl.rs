//! An interactive FreezeML REPL — a thin client of the program-checking
//! service.
//!
//! The session *is* a service document: every `:let` appends a top-level
//! declaration and the service rechecks the program incrementally (only
//! the new binding is inferred; everything else is served from the
//! scheme cache). Run with `cargo run --example repl`:
//!
//! ```text
//! > choose ~id
//! (forall a. a -> a) -> forall a. a -> a
//! > :let myid = $(fun x -> x)
//! myid : forall a. a -> a                       [rechecked 1, reused 0]
//! > :load examples/session.fml   -- load a program file (let …;; decls)
//! > :engine core                 -- core | uf | both (differential)
//! > :pure on                     -- toggle the value restriction
//! > :elim on                     -- toggle eliminator instantiation
//! > :env                         -- per-binding types of the session
//! > :quit
//! ```
//!
//! With `--connect ADDR` the REPL speaks the JSON line protocol to a
//! running `freezeml serve --socket ADDR` instead of checking
//! in-process — ADDR is `host:port` for TCP or a path (or `unix:PATH`)
//! for a Unix-domain socket. Engine/option toggles are server-side
//! configuration and are unavailable in that mode.

use freezeml::core::{InstantiationStrategy, Options};
use freezeml::service::{EngineSel, Json, Request, Service, ServiceConfig};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

const DOC: &str = "repl";

/// One binding's verdict, backend-agnostic.
struct BindLine {
    name: String,
    ok: bool,
    display: String,
}

/// What one `edit` round trip reports, backend-agnostic.
struct EditReport {
    bindings: Vec<BindLine>,
    rechecked: u64,
    reused: u64,
    waves: u64,
}

enum RemoteStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// A connection to `freezeml serve --socket`.
struct Remote {
    writer: RemoteStream,
    reader: BufReader<RemoteStream>,
    opened: bool,
}

impl Write for RemoteStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            RemoteStream::Tcp(s) => s.write(buf),
            RemoteStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            RemoteStream::Tcp(s) => s.flush(),
            RemoteStream::Unix(s) => s.flush(),
        }
    }
}

impl io::Read for RemoteStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            RemoteStream::Tcp(s) => s.read(buf),
            RemoteStream::Unix(s) => s.read(buf),
        }
    }
}

impl Remote {
    fn connect(addr: &str) -> io::Result<Remote> {
        let (writer, reader) = if let Some(path) = addr.strip_prefix("unix:") {
            let s = UnixStream::connect(path)?;
            let r = s.try_clone()?;
            (RemoteStream::Unix(s), RemoteStream::Unix(r))
        } else if addr.contains('/') {
            let s = UnixStream::connect(addr)?;
            let r = s.try_clone()?;
            (RemoteStream::Unix(s), RemoteStream::Unix(r))
        } else {
            let s = TcpStream::connect(addr)?;
            let _ = s.set_nodelay(true);
            let r = s.try_clone()?;
            (RemoteStream::Tcp(s), RemoteStream::Tcp(r))
        };
        Ok(Remote {
            writer,
            reader: BufReader::new(reader),
            opened: false,
        })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Json, String> {
        self.writer
            .write_all(format!("{}\n", req.to_json()).as_bytes())
            .map_err(|e| e.to_string())?;
        self.writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".to_string()),
            Ok(_) => Json::parse(line.trim_end()).map_err(|e| e.to_string()),
            Err(e) => Err(e.to_string()),
        }
    }
}

/// Turn one protocol binding object into a display line.
fn bind_line(b: &Json) -> BindLine {
    let name = b
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let status = b.get("status").and_then(Json::as_str).unwrap_or("?");
    let field = |k: &str| b.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let (ok, display) = match status {
        "ok" => {
            let mut d = field("type");
            if let Some(Json::Arr(names)) = b.get("defaulted") {
                let names: Vec<&str> = names.iter().filter_map(Json::as_str).collect();
                d.push_str(&format!("  (defaulted {})", names.join(", ")));
            }
            (true, d)
        }
        "error" => (false, field("message")),
        "blocked" => (false, format!("blocked on `{}`", field("on"))),
        "disagreement" => (
            false,
            format!(
                "engines disagree: core {} vs uf {}",
                field("core"),
                field("uf")
            ),
        ),
        other => (false, format!("unknown status `{other}`")),
    };
    BindLine { name, ok, display }
}

fn edit_report(response: &Json) -> Result<EditReport, String> {
    if response.get("ok") != Some(&Json::Bool(true)) {
        let msg = response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("request failed");
        return Err(msg.to_string());
    }
    let bindings = match response.get("bindings") {
        Some(Json::Arr(bs)) => bs.iter().map(bind_line).collect(),
        _ => Vec::new(),
    };
    let num = |k: &str| {
        response
            .get(k)
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .unwrap_or(0)
    };
    Ok(EditReport {
        bindings,
        rechecked: num("rechecked"),
        reused: num("reused"),
        waves: num("waves"),
    })
}

enum Backend {
    Local { svc: Service, opened: bool },
    Remote(Remote),
}

impl Backend {
    /// Replace the session document's text and recheck.
    fn edit(&mut self, text: &str) -> Result<EditReport, String> {
        match self {
            Backend::Local { svc, opened } => {
                let report = if *opened {
                    svc.edit(DOC, text)
                } else {
                    svc.open(DOC, text)
                }
                .map_err(|e| e.to_string())?;
                *opened = true;
                Ok(EditReport {
                    bindings: report
                        .bindings
                        .iter()
                        .map(|b| BindLine {
                            name: b.name.clone(),
                            ok: b.outcome.is_typed(),
                            display: b.outcome.display(),
                        })
                        .collect(),
                    rechecked: report.rechecked as u64,
                    reused: report.reused as u64,
                    waves: report.waves as u64,
                })
            }
            Backend::Remote(conn) => {
                let req = if conn.opened {
                    Request::Edit {
                        doc: DOC.to_string(),
                        text: text.to_string(),
                    }
                } else {
                    Request::Open {
                        doc: DOC.to_string(),
                        text: text.to_string(),
                    }
                };
                let response = conn.round_trip(&req)?;
                let report = edit_report(&response)?;
                conn.opened = true;
                Ok(report)
            }
        }
    }
}

struct Repl {
    backend: Backend,
    engine: EngineSel,
    opts: Options,
    /// The session program (starts with `#use prelude`).
    text: String,
    /// Fresh-name counter for throwaway query bindings.
    queries: usize,
    /// The last accepted report, for `:env`.
    env: Vec<(String, String)>,
}

impl Repl {
    fn new(engine: EngineSel, opts: Options) -> Repl {
        let mut repl = Repl {
            backend: Backend::Local {
                svc: Service::new(ServiceConfig {
                    opts,
                    engine,
                    workers: 2,
                }),
                opened: false,
            },
            engine,
            opts,
            text: "#use prelude\n".to_string(),
            queries: 0,
            env: Vec::new(),
        };
        repl.backend
            .edit(&repl.text.clone())
            .expect("the empty session parses");
        repl
    }

    fn connect(addr: &str) -> io::Result<Repl> {
        // An overloaded or draining server sheds whole connections with
        // one structured line (`overloaded` carries a `retry-after-ms`
        // hint) before closing. An interactive client retries a few
        // times with jittered exponential backoff before giving up.
        const ATTEMPTS: u32 = 8;
        let text = "#use prelude\n".to_string();
        let open = Request::Open {
            doc: DOC.to_string(),
            text: text.clone(),
        };
        let mut attempt = 0u32;
        let conn = loop {
            let mut retry = |hint: Option<u64>, why: &str| -> io::Result<()> {
                attempt += 1;
                if attempt >= ATTEMPTS {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("{why}; gave up after {attempt} attempt(s)"),
                    ));
                }
                let ms =
                    freezeml::service::backoff_ms(attempt, hint, u64::from(std::process::id()));
                eprintln!("{why}; retrying in {ms} ms ({attempt}/{ATTEMPTS})");
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            };
            let mut conn = match Remote::connect(addr) {
                Ok(conn) => conn,
                Err(e) => {
                    retry(None, &format!("cannot connect to {addr}: {e}"))?;
                    continue;
                }
            };
            match conn.round_trip(&open) {
                // The server closed before answering — a drained
                // listener does that; retryable.
                Err(e) => {
                    retry(None, &format!("{addr}: {e}"))?;
                    continue;
                }
                Ok(v) => match v.get("error").and_then(Json::as_str) {
                    Some("overloaded") | Some("draining") => {
                        let hint = v
                            .get("retry-after-ms")
                            .and_then(Json::as_num)
                            .map(|n| n as u64);
                        retry(hint, &format!("{addr} shed the connection"))?;
                        continue;
                    }
                    _ => {
                        edit_report(&v)
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                        conn.opened = true;
                        break conn;
                    }
                },
            }
        };
        Ok(Repl {
            backend: Backend::Remote(conn),
            engine: EngineSel::from_env(),
            opts: Options::default(),
            text,
            queries: 0,
            env: Vec::new(),
        })
    }

    fn remote(&self) -> bool {
        matches!(self.backend, Backend::Remote(_))
    }

    /// Rebuild the local service (engine/options changed), same text.
    fn rebuild(&mut self) {
        let mut fresh = Repl::new(self.engine, self.opts);
        fresh.text = self.text.clone();
        fresh.queries = self.queries;
        let _ = fresh.apply(&fresh.text.clone());
        *self = fresh;
    }

    /// Edit to `text` and remember the resulting env on success.
    fn apply(&mut self, text: &str) -> Result<EditReport, String> {
        let report = self.backend.edit(text)?;
        self.env = report
            .bindings
            .iter()
            .map(|b| (b.name.clone(), b.display.clone()))
            .collect();
        Ok(report)
    }

    /// Try new session text; on any failure, revert to the old text.
    /// Returns the display line(s) for the *last* binding on success.
    fn try_extend(&mut self, new_text: String) -> Result<String, String> {
        match self.apply(&new_text) {
            Err(e) => {
                let _ = self.apply(&self.text.clone());
                Err(e)
            }
            Ok(report) => {
                let last = report.bindings.last().expect("one binding was added");
                let line = format!(
                    "{} : {}\t[rechecked {}, reused {}]",
                    last.name, last.display, report.rechecked, report.reused
                );
                if last.ok {
                    self.text = new_text;
                    Ok(line)
                } else {
                    let msg = last.display.clone();
                    let _ = self.apply(&self.text.clone());
                    Err(msg)
                }
            }
        }
    }

    /// Evaluate a bare term by checking it as a throwaway binding.
    fn query(&mut self, term_src: &str) -> Result<String, String> {
        self.queries += 1;
        let name = format!("it{}", self.queries);
        let probe = format!("{}let {name} = {term_src};;\n", self.text);
        match self.apply(&probe) {
            Err(e) => {
                let _ = self.apply(&self.text.clone());
                Err(e)
            }
            Ok(report) => {
                let display = report
                    .bindings
                    .last()
                    .expect("probe binding")
                    .display
                    .clone();
                let _ = self.apply(&self.text.clone());
                Ok(display)
            }
        }
    }

    fn print_env(&self) {
        if self.env.is_empty() {
            println!("(no session bindings; the Figure 2 prelude is in scope)");
        }
        for (name, display) in &self.env {
            println!("{name} : {display}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut connect = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" if i + 1 < args.len() => {
                connect = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("usage: repl [--connect ADDR] (got `{other}`)");
                return;
            }
        }
    }
    let mut repl = match &connect {
        None => Repl::new(EngineSel::from_env(), Options::default()),
        Some(addr) => match Repl::connect(addr) {
            Ok(r) => {
                println!("connected to {addr}");
                r
            }
            Err(e) => {
                eprintln!("error: cannot connect to {addr}: {e}");
                return;
            }
        },
    };
    println!(
        "FreezeML REPL — service-backed session (engine {:?}, Figure 2 prelude loaded).",
        repl.engine
    );
    println!(
        "Commands: :let x = M, :load FILE, :engine core|uf|both, :env, \
         :pure on|off, :elim on|off, :quit"
    );

    let stdin = io::stdin();
    loop {
        print!("> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":env" {
            repl.print_env();
            continue;
        }
        if (line.starts_with(":engine") || line.starts_with(":pure") || line.starts_with(":elim"))
            && repl.remote()
        {
            println!("engine/options are server-side configuration under --connect");
            continue;
        }
        if let Some(rest) = line.strip_prefix(":engine") {
            match rest.trim() {
                "core" => repl.engine = EngineSel::Core,
                "uf" => repl.engine = EngineSel::Uf,
                "both" => repl.engine = EngineSel::Both,
                other => {
                    println!("usage: :engine core|uf|both (got `{other}`)");
                    continue;
                }
            }
            repl.rebuild();
            println!("engine: {:?}", repl.engine);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":pure") {
            repl.opts.value_restriction = rest.trim() != "on";
            repl.rebuild();
            println!(
                "value restriction {}",
                if repl.opts.value_restriction {
                    "on"
                } else {
                    "off (pure FreezeML)"
                }
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(":elim") {
            repl.opts.instantiation = if rest.trim() == "on" {
                InstantiationStrategy::Eliminator
            } else {
                InstantiationStrategy::Variable
            };
            repl.rebuild();
            println!("instantiation strategy: {:?}", repl.opts.instantiation);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":load") {
            let path = rest.trim();
            match std::fs::read_to_string(path) {
                Err(e) => println!("error: {path}: {e}"),
                Ok(contents) => {
                    let text = if contents.contains("#use prelude") {
                        contents
                    } else {
                        format!("#use prelude\n{contents}")
                    };
                    match repl.apply(&text) {
                        Err(e) => {
                            let _ = repl.apply(&repl.text.clone());
                            println!("error: {e}");
                        }
                        Ok(report) => {
                            repl.text = text;
                            for b in &report.bindings {
                                println!("{} : {}", b.name, b.display);
                            }
                            println!(
                                "[{} binding(s), rechecked {}, reused {}, {} wave(s)]",
                                report.bindings.len(),
                                report.rechecked,
                                report.reused,
                                report.waves
                            );
                        }
                    }
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":let") {
            let Some((name, body)) = rest.split_once('=') else {
                println!("usage: :let x = M");
                continue;
            };
            let decl = format!("let {} = {};;\n", name.trim(), body.trim());
            match repl.try_extend(format!("{}{decl}", repl.text)) {
                Ok(report) => println!("{report}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line.starts_with(':') {
            println!("unknown command `{line}`");
            continue;
        }
        match repl.query(line) {
            Ok(ty) => println!("{ty}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
