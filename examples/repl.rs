//! An interactive FreezeML REPL — a thin client of the program-checking
//! service.
//!
//! The session *is* a service document: every `:let` appends a top-level
//! declaration and the service rechecks the program incrementally (only
//! the new binding is inferred; everything else is served from the
//! scheme cache). Run with `cargo run --example repl`:
//!
//! ```text
//! > choose ~id
//! (forall a. a -> a) -> forall a. a -> a
//! > :let myid = $(fun x -> x)
//! myid : forall a. a -> a                       [rechecked 1, reused 0]
//! > :load examples/session.fml   -- load a program file (let …;; decls)
//! > :engine core                 -- core | uf | both (differential)
//! > :pure on                     -- toggle the value restriction
//! > :elim on                     -- toggle eliminator instantiation
//! > :env                         -- per-binding types of the session
//! > :quit
//! ```

use freezeml::core::{InstantiationStrategy, Options};
use freezeml::service::{EngineSel, Outcome, Service, ServiceConfig};
use std::io::{self, BufRead, Write};

const DOC: &str = "repl";

struct Repl {
    svc: Service,
    engine: EngineSel,
    opts: Options,
    /// The session program (starts with `#use prelude`).
    text: String,
    /// Fresh-name counter for throwaway query bindings.
    queries: usize,
}

impl Repl {
    fn new(engine: EngineSel, opts: Options) -> Repl {
        let mut repl = Repl {
            svc: Service::new(ServiceConfig {
                opts,
                engine,
                workers: 2,
            }),
            engine,
            opts,
            text: "#use prelude\n".to_string(),
            queries: 0,
        };
        repl.svc
            .open(DOC, &repl.text)
            .expect("the empty session parses");
        repl
    }

    /// Rebuild the service (engine/options changed) over the same text.
    fn rebuild(&mut self) {
        *self = {
            let mut fresh = Repl::new(self.engine, self.opts);
            fresh.text = self.text.clone();
            fresh.queries = self.queries;
            let _ = fresh.svc.edit(DOC, &fresh.text);
            fresh
        };
    }

    /// Try new session text; on any failure, revert to the old text.
    /// Returns the display line(s) for the *last* binding on success.
    fn try_extend(&mut self, new_text: String) -> Result<String, String> {
        match self.svc.edit(DOC, &new_text) {
            Err(e) => {
                let _ = self.svc.edit(DOC, &self.text);
                Err(e.to_string())
            }
            Ok(report) => {
                let last = report.bindings.last().expect("one binding was added");
                let line = format!(
                    "{} : {}\t[rechecked {}, reused {}]",
                    last.name,
                    last.outcome.display(),
                    report.rechecked,
                    report.reused
                );
                if last.outcome.is_typed() {
                    self.text = new_text;
                    Ok(line)
                } else {
                    let msg = last.outcome.display();
                    let _ = self.svc.edit(DOC, &self.text);
                    Err(msg)
                }
            }
        }
    }

    /// Evaluate a bare term by checking it as a throwaway binding.
    fn query(&mut self, term_src: &str) -> Result<String, String> {
        self.queries += 1;
        let name = format!("it{}", self.queries);
        let probe = format!("{}let {name} = {term_src};;\n", self.text);
        match self.svc.edit(DOC, &probe) {
            Err(e) => {
                let _ = self.svc.edit(DOC, &self.text);
                Err(e.to_string())
            }
            Ok(report) => {
                let outcome = report
                    .bindings
                    .last()
                    .expect("probe binding")
                    .outcome
                    .clone();
                let _ = self.svc.edit(DOC, &self.text);
                match outcome {
                    Outcome::Typed {
                        scheme, defaulted, ..
                    } if defaulted.is_empty() => Ok(scheme.to_string()),
                    o => Ok(o.display()),
                }
            }
        }
    }

    fn print_env(&self) {
        match self.svc.report(DOC) {
            None => println!("(empty session)"),
            Some(r) => {
                for b in &r.bindings {
                    println!("{} : {}", b.name, b.outcome.display());
                }
                if r.bindings.is_empty() {
                    println!("(no session bindings; the Figure 2 prelude is in scope)");
                }
            }
        }
    }
}

fn main() {
    let mut repl = Repl::new(EngineSel::from_env(), Options::default());
    println!(
        "FreezeML REPL — service-backed session (engine {:?}, Figure 2 prelude loaded).",
        repl.engine
    );
    println!(
        "Commands: :let x = M, :load FILE, :engine core|uf|both, :env, \
         :pure on|off, :elim on|off, :quit"
    );

    let stdin = io::stdin();
    loop {
        print!("> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":env" {
            repl.print_env();
            continue;
        }
        if let Some(rest) = line.strip_prefix(":engine") {
            match rest.trim() {
                "core" => repl.engine = EngineSel::Core,
                "uf" => repl.engine = EngineSel::Uf,
                "both" => repl.engine = EngineSel::Both,
                other => {
                    println!("usage: :engine core|uf|both (got `{other}`)");
                    continue;
                }
            }
            repl.rebuild();
            println!("engine: {:?}", repl.engine);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":pure") {
            repl.opts.value_restriction = rest.trim() != "on";
            repl.rebuild();
            println!(
                "value restriction {}",
                if repl.opts.value_restriction {
                    "on"
                } else {
                    "off (pure FreezeML)"
                }
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(":elim") {
            repl.opts.instantiation = if rest.trim() == "on" {
                InstantiationStrategy::Eliminator
            } else {
                InstantiationStrategy::Variable
            };
            repl.rebuild();
            println!("instantiation strategy: {:?}", repl.opts.instantiation);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":load") {
            let path = rest.trim();
            match std::fs::read_to_string(path) {
                Err(e) => println!("error: {path}: {e}"),
                Ok(contents) => {
                    let text = if contents.contains("#use prelude") {
                        contents
                    } else {
                        format!("#use prelude\n{contents}")
                    };
                    match repl.svc.edit(DOC, &text) {
                        Err(e) => {
                            let _ = repl.svc.edit(DOC, &repl.text);
                            println!("error: {e}");
                        }
                        Ok(report) => {
                            let report = report.clone();
                            repl.text = text;
                            for b in &report.bindings {
                                println!("{} : {}", b.name, b.outcome.display());
                            }
                            println!(
                                "[{} binding(s), rechecked {}, reused {}, {} wave(s)]",
                                report.bindings.len(),
                                report.rechecked,
                                report.reused,
                                report.waves
                            );
                        }
                    }
                }
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":let") {
            let Some((name, body)) = rest.split_once('=') else {
                println!("usage: :let x = M");
                continue;
            };
            let decl = format!("let {} = {};;\n", name.trim(), body.trim());
            match repl.try_extend(format!("{}{decl}", repl.text)) {
                Ok(report) => println!("{report}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line.starts_with(':') {
            println!("unknown command `{line}`");
            continue;
        }
        match repl.query(line) {
            Ok(ty) => println!("{ty}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
