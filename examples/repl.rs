//! An interactive FreezeML type-checking REPL over the Figure 2 prelude.
//!
//! Run with `cargo run --example repl`, then type FreezeML terms:
//!
//! ```text
//! > choose ~id
//! (forall a. a -> a) -> forall a. a -> a
//! > :let myid = $(fun x -> x)
//! myid : forall a. a -> a
//! > :pure on          -- toggle the value restriction (pure FreezeML)
//! > :elim on          -- toggle eliminator instantiation
//! > :env              -- show the environment
//! > :quit
//! ```

use freezeml::core::{infer_program, infer_term, parse_term, Options};
use freezeml::corpus::figure2;
use std::io::{self, BufRead, Write};

fn main() {
    let mut env = figure2();
    let mut opts = Options::default();
    let stdin = io::stdin();

    println!(
        "FreezeML REPL — Figure 2 prelude loaded ({} bindings).",
        env.len()
    );
    println!("Commands: :let x = M, :env, :pure on|off, :elim on|off, :quit");

    loop {
        print!("> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":env" {
            for (name, ty) in env.iter() {
                println!("{name} : {ty}");
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix(":pure") {
            opts.value_restriction = rest.trim() != "on";
            println!(
                "value restriction {}",
                if opts.value_restriction {
                    "on"
                } else {
                    "off (pure FreezeML)"
                }
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(":elim") {
            opts.instantiation = if rest.trim() == "on" {
                freezeml::core::InstantiationStrategy::Eliminator
            } else {
                freezeml::core::InstantiationStrategy::Variable
            };
            println!("instantiation strategy: {:?}", opts.instantiation);
            continue;
        }
        if let Some(rest) = line.strip_prefix(":let") {
            let Some((name, body)) = rest.split_once('=') else {
                println!("usage: :let x = M");
                continue;
            };
            let name = name.trim();
            // Reuse the actual `let` rule: the type of x in
            // `let x = M in ⌈x⌉` is exactly the let-bound type (generalised
            // for guarded values, monomorphised otherwise).
            let probe = format!("let {name} = {} in ~{name}", body.trim());
            match parse_term(&probe)
                .map_err(|e| e.to_string())
                .and_then(|t| infer_term(&env, &t, &opts).map_err(|e| e.to_string()))
            {
                Ok(out) => {
                    let mut ty = out.ty.canonicalize();
                    if !ty.ftv().is_empty() {
                        // Residual monomorphic variables (value restriction):
                        // ground them so the environment stays well-formed.
                        for v in ty.ftv() {
                            ty = ty.rename_free(&v, &freezeml::core::Type::int());
                        }
                        println!("note: residual monomorphic variables defaulted to Int");
                    }
                    println!("{name} : {ty}");
                    env.push(name, ty);
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match infer_program(&env, line, &opts) {
            Ok(ty) => println!("{ty}"),
            Err(e) => println!("error: {e}"),
        }
    }
}
