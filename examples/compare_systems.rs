//! Side-by-side comparison: FreezeML's explicit operators vs. the
//! HMF-style heuristics vs. plain ML, on the programs where the design
//! differences show (paper §7 and Appendix A).
//!
//! Run with `cargo run --example compare_systems`.

use freezeml::core::{infer_program, Options};
use freezeml::corpus::figure2;
use freezeml::miniml::{ml_accepts_src, MlOutcome};

enum Row {
    Section(&'static str),
    Program(&'static str, &'static str),
}

fn freezeml_type(src: &str) -> String {
    match infer_program(&figure2(), src, &Options::default()) {
        Ok(t) => t.to_string(),
        Err(_) => "✕".to_string(),
    }
}

fn hmf_type(src: &str) -> String {
    let env = figure2();
    match freezeml::core::parse_term(src)
        .ok()
        .and_then(|t| freezeml::hmf::HmfTerm::from_freezeml(&t))
    {
        Some(hmf) => match freezeml::hmf::hmf_infer_type(&env, &hmf) {
            Ok(t) => t.to_string(),
            Err(_) => "✕".to_string(),
        },
        None => "n/a (freeze)".to_string(),
    }
}

fn ml_verdict(src: &str) -> &'static str {
    match ml_accepts_src(&figure2(), src) {
        MlOutcome::Typed => "✓",
        MlOutcome::IllTyped => "✕",
        MlOutcome::NotMl => "n/a",
    }
}

fn main() {
    use Row::{Program, Section};
    let rows = [
        Section("Explicitness vs. heuristics"),
        Program(
            "poly id",
            "HMF generalises the argument; FreezeML never guesses",
        ),
        Program("poly ~id", "FreezeML's explicit freeze"),
        Program("poly $(fun x -> x)", "FreezeML's explicit generalisation"),
        Program("poly (fun x -> x)", "HMF guesses; FreezeML refuses"),
        Section("Minimal polymorphism"),
        Program("choose id", "everyone instantiates"),
        Program("choose ~id", "keeping the polytype needs the freeze"),
        Section("Argument-order (in)sensitivity"),
        Program("app poly id", "binary application suffices for HMF here"),
        Program(
            "revapp id poly",
            "…but not here (real HMF needs its n-ary rule)",
        ),
        Program("revapp ~id poly", "the freeze is order-robust (example D2)"),
        Section("First-class polymorphic data"),
        Program("head ids", "impredicative instantiation of a ⋆-variable"),
        Program("single id", "the minimal type, in every system"),
        Program("single ~id", "a polytype element — FreezeML only"),
    ];

    println!(
        "{:<24} | {:<44} | {:<32} | ML",
        "program", "FreezeML", "HMF (ours, approx)"
    );
    for row in rows {
        match row {
            Section(title) => println!("\n== {title} =="),
            Program(src, note) => {
                println!(
                    "{:<24} | {:<44} | {:<32} | {}",
                    src,
                    freezeml_type(src),
                    hmf_type(src),
                    ml_verdict(src)
                );
                println!("{:<24} |   {note}", "");
            }
        }
    }
}
