//! Regenerate Table 1 (Appendix A): the number of the 32 section A–E
//! examples each system fails to handle, per annotation budget.
//!
//! The FreezeML row (and a bonus plain-ML row) is computed by running the
//! real checkers; the other systems' rows are recorded from the paper —
//! see DESIGN.md for the substitution rationale.
//!
//! Run with `cargo run --example table1`.

use freezeml::corpus::table1::{freezeml_failure_sets, full_table, hmf_failure_sets};

fn main() {
    println!("Table 1 — examples not handled per system (of 32, sections A–E)");
    println!("{:=<66}", "");
    println!(
        "{:<18} {:>9} {:>9} {:>9}   source",
        "system", "nothing", "binders", "terms"
    );
    println!("{:-<66}", "");
    for row in full_table() {
        println!(
            "{:<18} {:>9} {:>9} {:>9}   {}",
            row.system,
            row.failures[0],
            row.failures[1],
            row.failures[2],
            if row.computed {
                "computed (this implementation)"
            } else {
                "recorded (paper Table 1)"
            }
        );
    }

    let [nothing, binders, terms] = freezeml_failure_sets();
    println!("\nFreezeML failure sets (computed):");
    println!("  annotate nothing: {}", nothing.join(", "));
    println!("  annotate binders: {}", binders.join(", "));
    println!("  annotate terms:   {}", terms.join(", "));
    let [h_nothing, ..] = hmf_failure_sets();
    println!("\nHMF-approx failures at nothing (ours; paper's real HMF fails 11):");
    println!("  {}", h_nothing.join(", "));
    println!("\npaper (§A): \"FreezeML handles all examples except for A8, B1, B2, and E1, ranking third.\"");
}
