//! The Appendix D example: translate
//! `let app = λf.λz.f z in app ⌈auto⌉ ⌈id⌉` to System F with `C⟦−⟧`,
//! typecheck it there, translate it back with `E⟦−⟧`, re-infer, and run
//! the System F image in the evaluator.
//!
//! Run with `cargo run --example translate_demo`.

use freezeml::core::{infer_term, parse_term, KindEnv, Options};
use freezeml::corpus::figure2;
use freezeml::systemf::{eval, prelude::runtime_env, typecheck};
use freezeml::translate::{elaborate, f_to_freeze};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env = figure2();
    let src = "let app = fun f z -> f z in app ~auto ~id";

    println!("FreezeML source (Appendix D):\n  {src}\n");

    // 1. Infer in FreezeML.
    let term = parse_term(src)?;
    let out = infer_term(&env, &term, &Options::default())?;
    println!("FreezeML principal type:\n  {}\n", out.ty.canonicalize());

    // 2. Translate to System F with C⟦−⟧ (Figure 11).
    let elab = elaborate(&out);
    println!("C⟦−⟧ image in System F:\n  {}\n", elab.term);

    // 3. Theorem 3: the image typechecks at the same type.
    let fty = typecheck(&KindEnv::new(), &env, &elab.term)?;
    println!("System F type of the image:\n  {}\n", fty.canonicalize());
    assert!(fty.alpha_eq(&elab.ty), "Theorem 3 violated!");

    // 4. Translate back with E⟦−⟧ (Figure 10) and re-infer (Theorem 2).
    let back = f_to_freeze(&KindEnv::new(), &env, &elab.term)?;
    let back_out = infer_term(&env, &back, &Options::default())?;
    println!(
        "E⟦−⟧ round trip re-infers at:\n  {}\n",
        back_out.ty.canonicalize()
    );
    assert!(back_out.ty.alpha_eq(&fty), "Theorem 2 violated!");

    // 5. Run it: app auto id evaluates to the identity; apply it to 42.
    let applied = freezeml::systemf::FTerm::app(
        freezeml::systemf::FTerm::tyapp(elab.term.clone(), freezeml::core::Type::int()),
        freezeml::systemf::FTerm::int(42),
    );
    let v = eval(&runtime_env(), &applied)?;
    println!("Evaluating (C⟦…⟧ [Int]) 42:\n  {v}");
    assert_eq!(v, freezeml::systemf::Value::Int(42));

    println!("\nAll translation theorems verified on the Appendix D example ✓");
    Ok(())
}
