//! Quickstart: infer types for FreezeML programs against the paper's
//! Figure 2 prelude, showing off freezing (`~x`), generalisation (`$`),
//! and instantiation (`@`).
//!
//! Run with `cargo run --example quickstart`.

use freezeml::core::{infer_program, Options};
use freezeml::corpus::figure2;

fn main() {
    let env = figure2();
    let opts = Options::default();

    let programs = [
        // Plain ML-style inference still works (§1: no annotations needed).
        "fun x y -> y",
        "single choose",
        // Freezing keeps a variable's polytype (§2, Explicit Freezing).
        "choose id",
        "choose ~id",
        // auto needs its argument frozen (§2).
        "auto ~id",
        // Generalisation $V and instantiation M@ (§2).
        "$(fun x -> x)",
        "poly $(fun x -> x)",
        "(head ids)@ 3",
        // Annotated binders admit polymorphic parameters (§2, B1).
        "fun (f : forall a. a -> a) -> (f 1, f true)",
        // Annotated lets admit non-principal types (§3.1).
        "let (f : Int -> Int) = fun x -> x in f 3",
        // Scoped type variables (§3.2).
        "let (f : forall a. a -> a) = fun (x : a) -> x in f 3",
        // And some programs the paper rejects by design:
        "auto id",                     // unfrozen id is instantiated
        "fun f -> (f 1, f true)",      // never guess polymorphism
        "let f = fun x -> x in ~f 42", // principal type of f is ∀a.a→a
    ];

    println!("FreezeML quickstart — inference against the Figure 2 prelude\n");
    for src in programs {
        match infer_program(&env, src, &opts) {
            Ok(ty) => println!("  {src}\n    : {ty}\n"),
            Err(e) => println!("  {src}\n    ✕ {e}\n"),
        }
    }
}
