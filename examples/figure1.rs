//! Regenerate Figure 1: run all 49 example programs through the checker
//! and print each row — inferred type (or ✕) next to the paper's.
//!
//! Run with `cargo run --example figure1`.

use freezeml::corpus::{run_all, Expected};

fn main() {
    let results = run_all();
    let mut failures = 0usize;
    let mut current_section = ' ';

    println!("Figure 1 — example FreezeML terms and types");
    println!("{:=<78}", "");
    for (example, result) in freezeml::corpus::EXAMPLES.iter().zip(&results) {
        if example.section != current_section {
            current_section = example.section;
            println!("\n-- section {current_section} --");
        }
        let expected = match example.expected {
            Expected::Type(t) => t.to_string(),
            Expected::Ill => "✕".to_string(),
        };
        let status = if result.pass { "ok " } else { "FAIL" };
        println!("[{status}] {:7} {}", example.id, example.src);
        println!("            paper:    {expected}");
        println!("            inferred: {}", result.inferred_display());
        if !result.pass {
            failures += 1;
        }
    }

    println!("\n{:=<78}", "");
    println!(
        "{} / {} rows reproduce the paper exactly{}",
        results.len() - failures,
        results.len(),
        if failures == 0 { " ✓" } else { "" }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
