//! HMF terms: ML terms plus annotated λ-parameters. No freeze operator —
//! that is FreezeML's contribution; HMF controls instantiation with
//! heuristics instead.

use freezeml_core::{Lit, Term, Type, Var};
use std::fmt;

/// An HMF term.
#[derive(Clone, Debug, PartialEq)]
pub enum HmfTerm {
    /// A variable (always implicitly instantiated).
    Var(Var),
    /// `λx.M` — monomorphic parameter.
    Lam(Var, Box<HmfTerm>),
    /// `λ(x:σ).M` — annotated (possibly polymorphic) parameter.
    LamAnn(Var, Type, Box<HmfTerm>),
    /// Application.
    App(Box<HmfTerm>, Box<HmfTerm>),
    /// `let x = M in N` — generalising (no value restriction).
    Let(Var, Box<HmfTerm>, Box<HmfTerm>),
    /// A literal.
    Lit(Lit),
}

impl HmfTerm {
    /// The variable `x`.
    pub fn var(x: impl Into<Var>) -> HmfTerm {
        HmfTerm::Var(x.into())
    }

    /// `λx.M`.
    pub fn lam(x: impl Into<Var>, body: HmfTerm) -> HmfTerm {
        HmfTerm::Lam(x.into(), Box::new(body))
    }

    /// `λ(x:σ).M`.
    pub fn lam_ann(x: impl Into<Var>, ann: Type, body: HmfTerm) -> HmfTerm {
        HmfTerm::LamAnn(x.into(), ann, Box::new(body))
    }

    /// `M N`.
    pub fn app(f: HmfTerm, a: HmfTerm) -> HmfTerm {
        HmfTerm::App(Box::new(f), Box::new(a))
    }

    /// `let x = M in N`.
    pub fn let_(x: impl Into<Var>, rhs: HmfTerm, body: HmfTerm) -> HmfTerm {
        HmfTerm::Let(x.into(), Box::new(rhs), Box::new(body))
    }

    /// Convert from a FreezeML term if it is in the HMF fragment (no
    /// freezing — and hence none of the `$`/`@` sugar, which desugars to
    /// frozen variables; no annotated `let`; no explicit type application).
    pub fn from_freezeml(t: &Term) -> Option<HmfTerm> {
        match t {
            Term::Var(x) => Some(HmfTerm::Var(*x)),
            Term::Lam(x, b) => Some(HmfTerm::Lam(*x, Box::new(Self::from_freezeml(b)?))),
            Term::LamAnn(x, ann, b) => Some(HmfTerm::LamAnn(
                *x,
                ann.clone(),
                Box::new(Self::from_freezeml(b)?),
            )),
            Term::App(f, a) => Some(HmfTerm::App(
                Box::new(Self::from_freezeml(f)?),
                Box::new(Self::from_freezeml(a)?),
            )),
            Term::Let(x, r, b) => Some(HmfTerm::Let(
                *x,
                Box::new(Self::from_freezeml(r)?),
                Box::new(Self::from_freezeml(b)?),
            )),
            Term::Lit(l) => Some(HmfTerm::Lit(*l)),
            Term::FrozenVar(_) | Term::LetAnn(_, _, _, _) | Term::TyApp(_, _) => None,
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            HmfTerm::Var(_) | HmfTerm::Lit(_) => 1,
            HmfTerm::Lam(_, b) | HmfTerm::LamAnn(_, _, b) => 1 + b.size(),
            HmfTerm::App(f, a) => 1 + f.size() + a.size(),
            HmfTerm::Let(_, r, b) => 1 + r.size() + b.size(),
        }
    }
}

impl fmt::Display for HmfTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmfTerm::Var(x) => write!(f, "{x}"),
            HmfTerm::Lit(l) => write!(f, "{l}"),
            HmfTerm::Lam(x, b) => write!(f, "(fun {x} -> {b})"),
            HmfTerm::LamAnn(x, t, b) => write!(f, "(fun ({x} : {t}) -> {b})"),
            HmfTerm::App(m, n) => write!(f, "({m} {n})"),
            HmfTerm::Let(x, r, b) => write!(f, "(let {x} = {r} in {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_sugar_is_in_the_hmf_fragment() {
        // `M@` desugars to `let x = M in x` with *plain* variables, so it
        // stays in the HMF fragment (HMF instantiates eagerly anyway).
        let t = freezeml_core::parse_term("(head ids)@ 3").unwrap();
        assert!(HmfTerm::from_freezeml(&t).is_some());
    }

    #[test]
    fn freeze_free_terms_convert() {
        let t = freezeml_core::parse_term("let i = fun x -> x in poly i").unwrap();
        assert!(HmfTerm::from_freezeml(&t).is_some());
        let ann = freezeml_core::parse_term("fun (f : forall a. a -> a) -> f 1").unwrap();
        assert!(HmfTerm::from_freezeml(&ann).is_some());
    }

    #[test]
    fn frozen_terms_do_not_convert() {
        for src in ["~id", "poly $(fun x -> x)", "~id@[Int]"] {
            let t = freezeml_core::parse_term(src).unwrap();
            assert!(HmfTerm::from_freezeml(&t).is_none(), "{src}");
        }
    }

    #[test]
    fn display_round_trips_visually() {
        let t = HmfTerm::lam("x", HmfTerm::app(HmfTerm::var("f"), HmfTerm::var("x")));
        assert_eq!(t.to_string(), "(fun x -> (f x))");
    }
}
