//! HMF-style inference (see the crate docs for the approximation notes).
//!
//! The algorithm reuses `freezeml-core`'s kinded unifier: unannotated
//! λ-parameters are `•`-kinded metas (monomorphic, as in HMF), while
//! instantiation metas are `⋆`-kinded and may pick up polytypes through
//! unification (how `head ids` works in HMF).

use crate::term::HmfTerm;
use freezeml_core::{unify, Kind, KindEnv, RefinedEnv, Subst, TyVar, Type, TypeEnv, TypeError};

/// Instantiate all top-level quantifiers with fresh `⋆` metas.
fn instantiate(theta: &mut RefinedEnv, ty: &Type) -> Type {
    let (vars, body) = ty.split_foralls();
    if vars.is_empty() {
        return ty.clone();
    }
    let pairs: Vec<(TyVar, Type)> = vars
        .into_iter()
        .map(|a| {
            let m = TyVar::fresh();
            theta.insert(m, Kind::Poly);
            (a, Type::Var(m))
        })
        .collect();
    Subst::from_pairs(pairs).apply(body)
}

/// Generalise `ty` over its metas not free in `gamma`, removing them from
/// `theta`. Quantifier order is first-appearance order, like FreezeML.
fn generalize(theta: &RefinedEnv, gamma: &TypeEnv, ty: &Type) -> (RefinedEnv, Type) {
    let env_ftv = gamma.ftv();
    let gens: Vec<TyVar> = ty
        .ftv()
        .into_iter()
        .filter(|v| theta.contains(v) && !env_ftv.contains(v))
        .collect();
    let theta2 = theta.minus(&gens);
    (theta2, Type::foralls(gens, ty.clone()))
}

/// The inference algorithm. Returns the residual meta environment, the
/// composed substitution, and the (ungeneralised) type.
///
/// # Errors
///
/// Any [`TypeError`] from unification or lookup.
pub fn hmf_infer(
    theta: &RefinedEnv,
    gamma: &TypeEnv,
    term: &HmfTerm,
) -> Result<(RefinedEnv, Subst, Type), TypeError> {
    let delta = KindEnv::new();
    match term {
        HmfTerm::Var(x) => {
            let scheme = gamma.lookup(x).cloned().ok_or(TypeError::UnboundVar(*x))?;
            let mut theta1 = theta.clone();
            let ty = instantiate(&mut theta1, &scheme);
            Ok((theta1, Subst::identity(), ty))
        }
        HmfTerm::Lit(l) => Ok((theta.clone(), Subst::identity(), l.ty())),
        HmfTerm::Lam(x, body) => {
            let a = TyVar::fresh();
            let theta_in = theta.inserted(a, Kind::Mono);
            let gamma_in = gamma.extended(*x, Type::Var(a));
            let (theta1, s, bty) = hmf_infer(&theta_in, &gamma_in, body)?;
            let param = s.image_of(&a);
            Ok((theta1, s.without(&a), Type::arrow(param, bty)))
        }
        HmfTerm::LamAnn(x, ann, body) => {
            let gamma_in = gamma.extended(*x, ann.clone());
            let (theta1, s, bty) = hmf_infer(theta, &gamma_in, body)?;
            Ok((theta1, s, Type::arrow(ann.clone(), bty)))
        }
        HmfTerm::App(f, arg) => {
            let (mut theta1, s1, fty0) = hmf_infer(theta, gamma, f)?;
            // HMF instantiates function types by default.
            let fty = instantiate(&mut theta1, &fty0);
            // Expose the arrow.
            let (dom, cod, theta1, s_arrow) = match &fty {
                Type::Con(freezeml_core::TyCon::Arrow, args) => {
                    (args[0].clone(), args[1].clone(), theta1, Subst::identity())
                }
                _ => {
                    let d = TyVar::fresh();
                    let c = TyVar::fresh();
                    let theta_arrow = theta1.inserted(d, Kind::Poly).inserted(c, Kind::Poly);
                    let expected = Type::arrow(Type::Var(d), Type::Var(c));
                    let (th, s) = unify(&delta, &theta_arrow, &fty, &expected)?;
                    (s.apply(&Type::Var(d)), s.apply(&Type::Var(c)), th, s)
                }
            };
            let s1 = s_arrow.compose(&s1);
            let gamma1 = s1.apply_env(gamma);
            let (theta2, s2, aty) = hmf_infer(&theta1, &gamma1, arg)?;
            let dom2 = s2.apply(&dom);
            // The HMF heuristic: generalise the argument's type when the
            // expected parameter type is polymorphic.
            let (theta2, aty2) = if matches!(dom2, Type::Forall(_, _)) {
                let gamma2 = s2.apply_env(&gamma1);
                let (th, t) = generalize(&theta2, &gamma2, &aty);
                (th, t)
            } else {
                (theta2, aty)
            };
            let (theta3, s3) = unify(&delta, &theta2, &dom2, &aty2)?;
            let cod_final = s3.apply(&s2.apply(&cod));
            Ok((theta3, s3.compose(&s2).compose(&s1), cod_final))
        }
        HmfTerm::Let(x, rhs, body) => {
            let (theta1, s1, aty) = hmf_infer(theta, gamma, rhs)?;
            let gamma1 = s1.apply_env(gamma);
            // No value restriction: always generalise (HMF is
            // Haskell-flavoured).
            let (theta1, scheme) = generalize(&theta1, &gamma1, &aty);
            let gamma_in = gamma1.extended(*x, scheme);
            let (theta2, s2, bty) = hmf_infer(&theta1, &gamma_in, body)?;
            Ok((theta2, s2.compose(&s1), bty))
        }
    }
}

/// Infer and fully generalise the principal-for-HMF type of a closed-
/// context term, canonicalised for display.
///
/// # Errors
///
/// Any [`TypeError`].
pub fn hmf_infer_type(gamma: &TypeEnv, term: &HmfTerm) -> Result<Type, TypeError> {
    let (theta, s, ty) = hmf_infer(&RefinedEnv::new(), gamma, term)?;
    let ty = s.apply(&ty);
    let (_, gen) = generalize(&theta, &TypeEnv::new(), &ty);
    Ok(gen.canonicalize())
}

/// Parse a surface program and run it through the HMF-style checker.
/// Returns `None` if the program is outside the HMF fragment (uses
/// freezing), `Some(result)` otherwise.
pub fn hmf_accepts_src(gamma: &TypeEnv, src: &str) -> Option<bool> {
    let term = freezeml_core::parse_term(src).ok()?;
    let hmf = HmfTerm::from_freezeml(&term)?;
    Some(hmf_infer_type(gamma, &hmf).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> TypeEnv {
        let mut g = TypeEnv::new();
        for (n, t) in [
            ("id", "forall a. a -> a"),
            ("ids", "List (forall a. a -> a)"),
            ("inc", "Int -> Int"),
            ("choose", "forall a. a -> a -> a"),
            ("single", "forall a. a -> List a"),
            ("head", "forall a. List a -> a"),
            ("poly", "(forall a. a -> a) -> Int * Bool"),
            ("auto", "(forall a. a -> a) -> forall a. a -> a"),
            ("pair", "forall a b. a -> b -> a * b"),
            ("app", "forall a b. (a -> b) -> a -> b"),
            ("revapp", "forall a b. a -> (a -> b) -> b"),
            ("runST", "forall a. (forall s. ST s a) -> a"),
            ("argST", "forall s. ST s Int"),
            ("nil", "forall a. List a"),
        ] {
            g.push_str(n, t).unwrap();
        }
        g
    }

    fn ty_of(src: &str) -> Result<String, TypeError> {
        let term = freezeml_core::parse_term(src).unwrap();
        let hmf = HmfTerm::from_freezeml(&term).expect("must be in the HMF fragment");
        hmf_infer_type(&env(), &hmf).map(|t| t.to_string())
    }

    #[test]
    fn hm_core_works() {
        assert_eq!(ty_of("fun x -> x").unwrap(), "forall a. a -> a");
        assert_eq!(ty_of("inc 1").unwrap(), "Int");
        assert_eq!(ty_of("let i = fun x -> x in i 1").unwrap(), "Int");
    }

    #[test]
    fn minimal_polymorphism_on_choose_id() {
        // HMF's signature behaviour: choose id gets the *least* polymorphic
        // type (§7: "uses weights to select between less and more
        // polymorphic types").
        assert_eq!(ty_of("choose id").unwrap(), "forall a. (a -> a) -> a -> a");
    }

    #[test]
    fn argument_generalisation_types_poly_lambda() {
        // poly (λx.x) — no annotation, no $ — typechecks in HMF because the
        // expected parameter type ∀a.a→a triggers argument generalisation.
        // FreezeML deliberately requires poly $(λx.x) here.
        assert_eq!(ty_of("poly (fun x -> x)").unwrap(), "Int * Bool");
        assert_eq!(ty_of("poly id").unwrap(), "Int * Bool");
        assert_eq!(ty_of("id poly (fun x -> x)").unwrap(), "Int * Bool");
    }

    #[test]
    fn impredicative_metas_type_polymorphic_lists() {
        assert_eq!(ty_of("head ids").unwrap(), "forall a. a -> a");
        assert_eq!(ty_of("head ids 3").unwrap(), "Int");
        assert_eq!(ty_of("choose [] ids").unwrap(), "List (forall a. a -> a)");
    }

    #[test]
    fn monomorphic_parameters_still_fail() {
        // The λ-bound f is monomorphic in HMF too.
        assert!(ty_of("fun f -> (f 1, f true)").is_err());
    }

    #[test]
    fn annotated_parameters_work() {
        assert_eq!(
            ty_of("fun (f : forall a. a -> a) -> (f 1, f true)").unwrap(),
            "(forall a. a -> a) -> Int * Bool"
        );
        assert_eq!(
            ty_of("fun (x : forall a. a -> a) -> x x").unwrap(),
            "forall b. (forall a. a -> a) -> b -> b"
        );
    }

    #[test]
    fn runst_argst_works_via_argument_generalisation() {
        assert_eq!(ty_of("runST argST").unwrap(), "Int");
        assert_eq!(ty_of("app runST argST").unwrap(), "Int");
    }

    #[test]
    fn binary_application_is_order_sensitive() {
        // The documented approximation: without n-ary minimal-polymorphism
        // weighting, the flipped argument order fails (real HMF's n-ary
        // rule handles it; FreezeML handles it with a freeze).
        assert_eq!(ty_of("app poly id").unwrap(), "Int * Bool");
        assert!(ty_of("revapp id poly").is_err());
        assert!(ty_of("revapp argST runST").is_err());
    }

    #[test]
    fn no_value_restriction() {
        // let xs = single id in … generalises even though the rhs is an
        // application — HMF has no value restriction.
        assert_eq!(
            ty_of("let f = choose id in (f inc 1, f id true)").unwrap(),
            "Int * Bool"
        );
    }

    #[test]
    fn lambda_result_polymorphism_is_kept() {
        // λx. head ids : the body keeps its polytype under the arrow.
        assert_eq!(
            ty_of("fun x -> head ids").unwrap(),
            "forall b. b -> forall a. a -> a"
        );
    }
}
