//! # An HMF-style baseline checker
//!
//! HMF (Leijen, *"HMF: simple type inference for first-class
//! polymorphism"*, ICFP 2008) is the system the FreezeML paper contrasts
//! most directly (§7): like FreezeML it uses plain System F types and an
//! Algorithm-W-style inference algorithm, but instead of explicit freezing
//! it relies on *heuristics* — instantiate by default, generalise argument
//! types when the expected parameter type is polymorphic, prefer "minimal
//! polymorphism".
//!
//! This crate implements the heart of that recipe so the Table 1
//! comparison can include a *computed* HMF-style row next to the recorded
//! one. It is a documented **approximation** (see `DESIGN.md`):
//!
//! * applications are inferred binarily, left to right — we do not
//!   implement the n-ary application rule with minimal-polymorphism
//!   weights that makes real HMF argument-order independent (so our
//!   checker fails `revapp ⌈id⌉ poly`-style examples that real HMF
//!   accepts, and the paper's D-section order-insensitivity remark shows
//!   up as measurable failures);
//! * rigid term annotations are not supported, only parameter annotations.
//!
//! What *is* faithfully HMF-like:
//!
//! * unannotated λ-parameters are monomorphic unification variables;
//! * variable occurrences are instantiated eagerly (no freeze operator);
//! * `let` generalises (no value restriction — HMF is Haskell-flavoured);
//! * when a function's parameter type is a quantified type, the argument's
//!   type is generalised before unification — this is how `poly (λx.x)`
//!   typechecks without any annotation, which FreezeML deliberately
//!   refuses to do ("never guess polymorphism");
//! * results are generalised at the top, giving minimal-polymorphism
//!   types such as `choose id : ∀a.(a→a)→a→a`.

pub mod infer;
pub mod term;

pub use infer::{hmf_accepts_src, hmf_infer, hmf_infer_type};
pub use term::HmfTerm;
