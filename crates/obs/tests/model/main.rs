//! Model-checked concurrency invariants for the metrics registry.
//!
//! Run with `RUSTFLAGS='--cfg interleave' cargo test -p freezeml_obs
//! --test model`. In normal builds this file compiles to nothing; under
//! the model cfg, `interleave::model` explores bounded-preemption
//! interleavings of the *production* counter code (the crate's `sync`
//! alias routes `crate::sync::atomic` through the checker).
#![cfg(interleave)]

use freezeml_obs::{Counter, LabeledCounter, Registry};
use interleave::sync::Arc;
use std::time::Duration;

/// The headline registry invariant: a counter's `get()` equals the sum
/// of all shard-local adds, no matter how the adding threads interleave
/// and which shards their model tids hash to.
#[test]
fn counter_total_is_sum_of_racing_shard_adds() {
    interleave::model(|| {
        let c = Arc::new(Counter::new());
        let hs: Vec<_> = (0..3)
            .map(|i| {
                let c = Arc::clone(&c);
                interleave::thread::spawn(move || c.add(i + 1))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // join() establishes happens-before, so the merged read is exact.
        assert_eq!(c.get(), 1 + 2 + 3);
    });
}

/// A reader racing the writers may see a partial sum, but never more
/// than the final total and never a torn/garbage value.
#[test]
fn racing_reader_sees_monotonic_prefix() {
    interleave::model(|| {
        let c = Arc::new(Counter::new());
        let w = {
            let c = Arc::clone(&c);
            interleave::thread::spawn(move || {
                c.add(5);
                c.add(5);
            })
        };
        let mid = c.get();
        assert!(mid == 0 || mid == 5 || mid == 10, "torn read: {mid}");
        w.join().unwrap();
        assert_eq!(c.get(), 10);
    });
}

/// Labeled counters serialize label insertion behind a ranked mutex:
/// two threads racing to create the same label must land on one slot.
#[test]
fn labeled_counter_racing_inserts_share_one_slot() {
    interleave::model(|| {
        let lc = Arc::new(LabeledCounter::new());
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let lc = Arc::clone(&lc);
                interleave::thread::spawn(move || lc.inc("shed"))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(lc.get("shed"), 2);
        assert_eq!(lc.snapshot().len(), 1, "duplicate label slot created");
    });
}

/// Registry request accounting survives concurrent recording: total
/// request count across commands equals the number of record calls.
#[test]
fn registry_totals_equal_sum_of_concurrent_records() {
    interleave::model(|| {
        let r = Arc::new(Registry::new());
        let hs: Vec<_> = (0..2)
            .map(|i| {
                let r = Arc::clone(&r);
                interleave::thread::spawn(move || {
                    r.record_request(
                        freezeml_obs::Cmd::Check,
                        Duration::from_nanos(100 * (i as u64 + 1)),
                        false,
                    );
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        let check = snap
            .commands
            .iter()
            .find(|c| c.cmd == freezeml_obs::Cmd::Check)
            .expect("check row");
        assert_eq!(check.count, 2);
        assert_eq!(check.errors, 0);
        assert_eq!(check.latency.count(), 2);
    });
}
