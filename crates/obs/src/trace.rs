//! The span/event tracing layer: JSONL records with hierarchical ids,
//! zero-cost when disabled.
//!
//! This is the evidence-sink pattern from the elaboration layer (PR 5)
//! applied to timing: code that can emit trace records is generic over
//! a [`TraceSink`], and the disabled sink ([`NoTrace`]) has
//! `ENABLED = false` as an associated *const* — every
//! `if S::ENABLED { … }` guard is resolved at monomorphisation time, so
//! the untraced instantiation compiles to exactly the code that existed
//! before tracing, with no branch, no clock read, and no dead record
//! construction. The `service/trace-overhead` bench row holds the
//! *enabled* path to the same standard dynamically (≤5% over the load
//! mix).
//!
//! ## Record schema
//!
//! One JSON object per line, fields in fixed order:
//!
//! ```json
//! {"ts_us":…,"ev":"span|event|warn","name":"infer","conn":1,"sess":2,
//!  "req":7,"wave":0,"binding":3,"dur_us":412,"extra_key":"…"}
//! ```
//!
//! * `ts_us` — microseconds since the Unix epoch at emit time;
//! * `ev` — `span` (a timed phase; `dur_us` present), `event` (a point
//!   occurrence), or `warn` (an abnormal condition, e.g. a snapshot
//!   falling back cold);
//! * `name` — the phase or event name (`parse`, `dep-graph`, `wave`,
//!   `infer`, `elaborate`, `cache-probe`, `snapshot-save`,
//!   `snapshot-load`, `checkpoint`, `connection`, `slow-request`, …);
//! * `conn`/`sess`/`req` — the hierarchical ids: socket connection →
//!   session → request (0 = not applicable, e.g. the checkpoint
//!   thread);
//! * `wave`/`binding` — deeper levels, present only inside the
//!   executor;
//! * trailing extras — small per-record payloads (byte counts, reasons).
//!
//! Spans are emitted *at completion* (one record carrying `dur_us`),
//! not as begin/end pairs: the consumer never has to pair lines, and a
//! crashed phase simply has no record — the enclosing request span
//! still bounds it.

use crate::lockrank;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, PoisonError};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// A small trace payload value.
#[derive(Clone, Copy, Debug)]
pub enum Val<'a> {
    /// An unsigned integer.
    U(u64),
    /// A string (JSON-escaped on write).
    S(&'a str),
}

/// One trace record, borrowed — built on the stack at the emit site.
#[derive(Clone, Copy, Debug)]
pub struct Record<'a> {
    /// `span`, `event`, or `warn`.
    pub ev: &'a str,
    /// Phase or event name.
    pub name: &'a str,
    /// Connection id (0 = none).
    pub conn: u64,
    /// Session id (0 = none).
    pub sess: u64,
    /// Request id within the session (0 = none).
    pub req: u64,
    /// Wave index within the request, if inside the executor.
    pub wave: Option<u64>,
    /// Binding index within the wave, if inside the executor.
    pub binding: Option<u64>,
    /// Span duration in microseconds (`ev == "span"` only).
    pub dur_us: Option<u64>,
    /// Trailing extras, emitted in order.
    pub extra: &'a [(&'a str, Val<'a>)],
}

impl<'a> Record<'a> {
    /// A record with just an event kind and name; ids default to 0.
    pub fn new(ev: &'a str, name: &'a str) -> Record<'a> {
        Record {
            ev,
            name,
            conn: 0,
            sess: 0,
            req: 0,
            wave: None,
            binding: None,
            dur_us: None,
            extra: &[],
        }
    }

    /// With the hierarchical ids from a [`TraceCtx`].
    pub fn ctx(mut self, ctx: TraceCtx) -> Record<'a> {
        self.conn = ctx.conn;
        self.sess = ctx.sess;
        self.req = ctx.req;
        self
    }

    /// With a wave index.
    pub fn wave(mut self, w: u64) -> Record<'a> {
        self.wave = Some(w);
        self
    }

    /// With a binding index.
    pub fn binding(mut self, b: u64) -> Record<'a> {
        self.binding = Some(b);
        self
    }

    /// With a duration (marks the record as a completed span).
    pub fn dur(mut self, d: std::time::Duration) -> Record<'a> {
        self.dur_us = Some(d.as_micros().min(u64::MAX as u128) as u64);
        self
    }

    /// With trailing extras.
    pub fn extras(mut self, extra: &'a [(&'a str, Val<'a>)]) -> Record<'a> {
        self.extra = extra;
        self
    }
}

/// The hierarchical ids a request-scoped emit site carries.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCtx {
    /// Socket connection id (0 for stdio or none).
    pub conn: u64,
    /// Session id.
    pub sess: u64,
    /// Request id within the session.
    pub req: u64,
}

/// Where trace records go. Implementations must be cheap to call when
/// disabled: [`NoTrace`] sets `ENABLED = false` so generic callers
/// guard every clock read and record construction behind a
/// monomorphisation-time constant.
pub trait TraceSink: Sync {
    /// Whether this sink records anything — an associated const so the
    /// disabled instantiation folds away.
    const ENABLED: bool;

    /// Write one record.
    fn emit(&self, r: &Record<'_>);
}

/// The disabled sink: `ENABLED = false`, `emit` is empty. Code
/// monomorphised over `NoTrace` is the zero-cost path.
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;
    fn emit(&self, _: &Record<'_>) {}
}

/// Minimal JSON string escaping (mirrors the protocol's writer: quote,
/// backslash, and control characters).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// The JSONL file sink: one lock-guarded buffered writer. Tracing is
/// opt-in and the lock is held only to append one preformatted line,
/// so contention stays far below the ≤5% overhead budget (see the
/// `service/trace-overhead` bench row).
pub struct JsonlSink {
    out: lockrank::Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Open (create or truncate) a trace file.
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: lockrank::Mutex::new(lockrank::TRACE_SINK, "obs.trace.sink", BufWriter::new(file)),
        })
    }

    /// Flush buffered records to disk.
    pub fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush();
    }
}

impl TraceSink for JsonlSink {
    const ENABLED: bool = true;

    fn emit(&self, r: &Record<'_>) {
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let mut line = String::with_capacity(160);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"ev\":\"");
        escape_into(&mut line, r.ev);
        line.push_str("\",\"name\":\"");
        escape_into(&mut line, r.name);
        line.push_str("\",\"conn\":");
        line.push_str(&r.conn.to_string());
        line.push_str(",\"sess\":");
        line.push_str(&r.sess.to_string());
        line.push_str(",\"req\":");
        line.push_str(&r.req.to_string());
        if let Some(w) = r.wave {
            line.push_str(",\"wave\":");
            line.push_str(&w.to_string());
        }
        if let Some(b) = r.binding {
            line.push_str(",\"binding\":");
            line.push_str(&b.to_string());
        }
        if let Some(d) = r.dur_us {
            line.push_str(",\"dur_us\":");
            line.push_str(&d.to_string());
        }
        for (k, v) in r.extra {
            line.push_str(",\"");
            escape_into(&mut line, k);
            line.push_str("\":");
            match v {
                Val::U(n) => line.push_str(&n.to_string()),
                Val::S(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        let mut g = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = g.write_all(line.as_bytes());
        // Flush per record: trace consumers (tests, the CI schema
        // check) read the file while the server lives, and record
        // volume is low enough that buffering buys little.
        let _ = g.flush();
    }
}

/// The dynamic handle the service layer threads around: either off
/// (`None`, the common case) or an [`Arc<JsonlSink>`]. Cloning is a
/// pointer copy. Call sites on hot paths should match on [`sink`] once
/// and monomorphise (`run::<JsonlSink>` vs `run::<NoTrace>`) rather
/// than branching per record.
///
/// [`sink`]: Tracer::sink
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<JsonlSink>>,
}

/// The environment variable [`Tracer::from_env`] reads: a path to
/// append JSONL trace records to (used by tests and `serve` without a
/// `--trace` flag).
pub const TRACE_ENV: &str = "FREEZEML_TRACE";

impl Tracer {
    /// The disabled tracer.
    pub fn off() -> Tracer {
        Tracer::default()
    }

    /// A tracer writing JSONL to `path`.
    pub fn to_file(path: &Path) -> std::io::Result<Tracer> {
        Ok(Tracer {
            sink: Some(Arc::new(JsonlSink::create(path)?)),
        })
    }

    /// A tracer from the `FREEZEML_TRACE` environment variable: set →
    /// trace to that path (off if the file cannot be created), unset →
    /// off.
    pub fn from_env() -> Tracer {
        match std::env::var_os(TRACE_ENV) {
            Some(path) if !path.is_empty() => {
                Tracer::to_file(Path::new(&path)).unwrap_or_else(|_| Tracer::off())
            }
            _ => Tracer::off(),
        }
    }

    /// Is tracing on?
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The sink, if tracing is on — for monomorphising call sites.
    pub fn sink(&self) -> Option<&Arc<JsonlSink>> {
        self.sink.as_ref()
    }

    /// Emit a record (no-op when off).
    pub fn emit(&self, r: &Record<'_>) {
        if let Some(s) = &self.sink {
            s.emit(r);
        }
    }

    /// Emit a point event.
    pub fn event(&self, name: &str, ctx: TraceCtx, extra: &[(&str, Val<'_>)]) {
        if self.sink.is_some() {
            self.emit(&Record::new("event", name).ctx(ctx).extras(extra));
        }
    }

    /// Emit a warning event.
    pub fn warn(&self, name: &str, ctx: TraceCtx, extra: &[(&str, Val<'_>)]) {
        if self.sink.is_some() {
            self.emit(&Record::new("warn", name).ctx(ctx).extras(extra));
        }
    }

    /// Start a timed span; the returned guard emits one `span` record
    /// (with `dur_us`) when dropped. Costs one clock read when on,
    /// nothing when off.
    pub fn span<'a>(&'a self, name: &'static str, ctx: TraceCtx) -> Span<'a> {
        Span {
            tracer: self,
            name,
            ctx,
            start: self.sink.as_ref().map(|_| Instant::now()),
        }
    }

    /// Flush the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(s) = &self.sink {
            s.flush();
        }
    }
}

/// A live span from [`Tracer::span`]; emits on drop.
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    ctx: TraceCtx,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.tracer.emit(
                &Record::new("span", self.name)
                    .ctx(self.ctx)
                    .dur(t0.elapsed()),
            );
        }
    }
}

static NEXT_CONN: AtomicU64 = AtomicU64::new(1);
static NEXT_SESS: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique connection id (ids start at 1; 0 means
/// "no connection").
pub fn next_conn_id() -> u64 {
    // ord: Relaxed — unique-id allocator; only RMW atomicity matters.
    NEXT_CONN.fetch_add(1, Ordering::Relaxed)
}

/// Allocate a process-unique session id (ids start at 1; 0 means
/// "no session").
pub fn next_session_id() -> u64 {
    // ord: Relaxed — unique-id allocator; only RMW atomicity matters.
    NEXT_SESS.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("freezeml-obs-{}-{name}.jsonl", std::process::id()))
    }

    fn read_lines(path: &Path) -> Vec<String> {
        std::fs::read_to_string(path)
            .expect("trace file readable")
            .lines()
            .map(|l| l.to_string())
            .collect()
    }

    #[test]
    fn no_trace_is_statically_disabled() {
        // The whole point: generic code can gate on the const.
        fn emits<S: TraceSink>(_: &S) -> bool {
            S::ENABLED
        }
        assert!(!emits(&NoTrace));
    }

    #[test]
    fn jsonl_records_have_the_fixed_schema() {
        let path = tmp("schema");
        let tracer = Tracer::to_file(&path).expect("create trace file");
        tracer.event(
            "connection",
            TraceCtx {
                conn: 3,
                sess: 0,
                req: 0,
            },
            &[("peer", Val::S("127.0.0.1:9"))],
        );
        {
            let _sp = tracer.span(
                "infer",
                TraceCtx {
                    conn: 3,
                    sess: 1,
                    req: 2,
                },
            );
        }
        tracer.warn(
            "cold-fallback",
            TraceCtx::default(),
            &[("reason", Val::S("checksum"))],
        );
        tracer.flush();
        let lines = read_lines(&path);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"ev\":\"event\""));
        assert!(lines[0].contains("\"name\":\"connection\""));
        assert!(lines[0].contains("\"conn\":3"));
        assert!(lines[0].contains("\"peer\":\"127.0.0.1:9\""));
        assert!(lines[1].contains("\"ev\":\"span\""));
        assert!(lines[1].contains("\"dur_us\":"));
        assert!(lines[1].contains("\"sess\":1"));
        assert!(lines[1].contains("\"req\":2"));
        assert!(lines[2].contains("\"ev\":\"warn\""));
        assert!(lines[2].contains("\"reason\":\"checksum\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strings_are_json_escaped() {
        let path = tmp("escape");
        let tracer = Tracer::to_file(&path).expect("create trace file");
        tracer.event(
            "note",
            TraceCtx::default(),
            &[("detail", Val::S("a\"b\\c\nd\u{1}"))],
        );
        let lines = read_lines(&path);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(r#""detail":"a\"b\\c\nd\u0001""#),
            "{}",
            lines[0]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn env_toggle_constructs_a_live_tracer() {
        // The one test that touches the process environment; other
        // suites pass a Tracer explicitly to avoid env races.
        let path = tmp("env");
        std::env::set_var(TRACE_ENV, &path);
        let tracer = Tracer::from_env();
        std::env::remove_var(TRACE_ENV);
        assert!(tracer.enabled());
        tracer.event("probe", TraceCtx::default(), &[]);
        assert_eq!(read_lines(&path).len(), 1);
        drop(tracer);
        let _ = std::fs::remove_file(&path);
        assert!(!Tracer::from_env().enabled());
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_conn_id();
        let b = next_conn_id();
        assert!(a >= 1 && b > a);
        let s1 = next_session_id();
        let s2 = next_session_id();
        assert!(s1 >= 1 && s2 > s1);
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_span_reads_no_clock() {
        let tracer = Tracer::off();
        assert!(!tracer.enabled());
        tracer.event("x", TraceCtx::default(), &[]);
        let sp = tracer.span("y", TraceCtx::default());
        assert!(sp.start.is_none());
    }
}
