//! # Lock-rank discipline — a debug-build deadlock witness
//!
//! Every long-lived lock in the serving stack carries a [`Rank`].
//! The global ordering rule is:
//!
//! > a thread may only acquire a lock whose rank is **strictly
//! > greater** than every lock it already holds.
//!
//! Any pair of code paths that respects this rule cannot form a
//! lock-order cycle, so the system is deadlock-free by construction —
//! and a violation is caught the *first* time the bad nesting runs, on
//! any schedule, not just the schedule where it happens to deadlock.
//!
//! In debug builds (`cfg(debug_assertions)`) every acquisition pushes
//! onto a thread-local stack of held locks and checks the rule,
//! panicking with both acquisition sites (and backtraces, when
//! `RUST_BACKTRACE` is set) on violation. In release builds the
//! bookkeeping compiles away: [`Mutex`]/[`RwLock`] are newtypes over
//! the `crate::sync` primitives with no extra state per guard.
//!
//! ## The rank table
//!
//! Higher rank = acquired later = more deeply nested. Gaps are left for
//! future layers.
//!
//! | rank | name            | lock                                            |
//! |------|-----------------|-------------------------------------------------|
//! | 10   | `SESSION_RX`    | `service::sock` shared accept→session receiver  |
//! | 15   | `PERSIST_STOP`  | checkpointer stop flag (held across `save`)     |
//! | 20   | `FRONTEND`      | `service::Shared` frontend (elaborator state)   |
//! | 30   | `DOC_REPORTS`   | `service::Shared` per-document report map       |
//! | 50   | `FAULT_TABLE`   | `service::fault` failpoint table                |
//! | 60   | `CACHE_STRIPE`  | `service::Shared` verdict-cache stripe          |
//! | 70   | `TRACE_SINK`    | `obs::trace` JSONL writer                       |
//! | 80   | `METRICS_LABELS`| `obs::metrics` labeled-counter slots            |
//! | 90   | `BANK_SHARD`    | `engine::bank` scheme-bank shard                |
//!
//! `PERSIST_STOP` ranks below everything `save()` touches because the
//! checkpointer thread holds it across the whole checkpoint write.
//! The symbol-table lock in `freezeml_core` is an unranked leaf: it is
//! acquired for single intern/lookup calls that never take another
//! lock, so it cannot participate in a cycle.

use crate::sync::{Condvar as RawCondvar, LockResult, Mutex as RawMutex, PoisonError};
use crate::sync::{RwLock as RawRwLock, WaitTimeoutResult};
use std::mem::ManuallyDrop;
use std::time::Duration;

/// Position of a lock in the global acquisition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank(pub u16);

/// `service::sock` shared accept→session receiver.
pub const SESSION_RX: Rank = Rank(10);
/// Checkpointer stop flag; held across the whole checkpoint `save`.
pub const PERSIST_STOP: Rank = Rank(15);
/// `service::Shared` frontend (elaborator) state.
pub const FRONTEND: Rank = Rank(20);
/// `service::Shared` per-document report map.
pub const DOC_REPORTS: Rank = Rank(30);
/// `service::fault` failpoint table.
pub const FAULT_TABLE: Rank = Rank(50);
/// `service::Shared` verdict-cache stripe.
pub const CACHE_STRIPE: Rank = Rank(60);
/// `obs::trace` JSONL writer.
pub const TRACE_SINK: Rank = Rank(70);
/// `obs::metrics` labeled-counter slots.
pub const METRICS_LABELS: Rank = Rank(80);
/// `engine::bank` scheme-bank shard.
pub const BANK_SHARD: Rank = Rank(90);

// ---------------------------------------------------------- debug witness

#[cfg(debug_assertions)]
mod witness {
    use super::Rank;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::panic::Location;

    struct Held {
        rank: Rank,
        name: &'static str,
        token: u64,
        location: &'static Location<'static>,
        backtrace: Backtrace,
    }

    thread_local! {
        static HELD: RefCell<(u64, Vec<Held>)> = const { RefCell::new((0, Vec::new())) };
    }

    /// Check the strictly-increasing rule and record the acquisition.
    /// Runs BEFORE blocking on the lock, so a violation panics instead
    /// of deadlocking.
    #[track_caller]
    pub(super) fn push(rank: Rank, name: &'static str) -> u64 {
        let location = Location::caller();
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(top) = h.1.iter().max_by_key(|e| e.rank) {
                if top.rank >= rank {
                    panic!(
                        "lock-rank violation: acquiring `{name}` (rank {}) at {location} \
                         while holding `{}` (rank {}) acquired at {}\n\
                         --- holder backtrace ---\n{}\n\
                         --- acquirer backtrace ---\n{}",
                        rank.0,
                        top.name,
                        top.rank.0,
                        top.location,
                        top.backtrace,
                        Backtrace::capture(),
                    );
                }
            }
            h.0 += 1;
            let token = h.0;
            h.1.push(Held {
                rank,
                name,
                token,
                location,
                backtrace: Backtrace::capture(),
            });
            token
        })
    }

    /// Forget an acquisition. Guards may drop out of creation order, so
    /// removal is by token, not by popping.
    pub(super) fn pop(token: u64) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.1.iter().rposition(|e| e.token == token) {
                h.1.remove(pos);
            }
        });
    }
}

#[cfg(debug_assertions)]
type Token = u64;
#[cfg(not(debug_assertions))]
type Token = ();

#[cfg(debug_assertions)]
#[track_caller]
fn push(rank: Rank, name: &'static str) -> Token {
    witness::push(rank, name)
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn push(_rank: Rank, _name: &'static str) -> Token {}

#[cfg(debug_assertions)]
fn pop(token: Token) {
    witness::pop(token)
}

#[cfg(not(debug_assertions))]
#[inline(always)]
fn pop(_token: Token) {}

// ---------------------------------------------------------------- wrappers

/// A `crate::sync::Mutex` that participates in the rank discipline.
pub struct Mutex<T: ?Sized> {
    rank: Rank,
    name: &'static str,
    inner: RawMutex<T>,
}

/// Guard for [`Mutex`]; releases the rank entry on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<crate::sync::MutexGuard<'a, T>>,
    token: Token,
}

impl<T> Mutex<T> {
    /// `const`, so ranked locks can back `static` tables.
    pub const fn new(rank: Rank, name: &'static str, value: T) -> Self {
        Mutex {
            rank,
            name,
            inner: RawMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, enforcing the rank rule in debug builds. Poisoning is
    /// surfaced exactly like `std`: the `Err` carries a usable guard.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let token = push(self.rank, self.name);
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                inner: ManuallyDrop::new(g),
                token,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                inner: ManuallyDrop::new(p.into_inner()),
                token,
            })),
        }
    }

    /// The rank this lock was declared with.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        pop(self.token);
        // Safety: dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish()
    }
}

/// A `crate::sync::RwLock` that participates in the rank discipline.
/// Read and write acquisitions obey the same strictly-increasing rule —
/// holding two same-rank read locks is also a violation, which keeps
/// the discipline immune to writer-priority upgrades.
pub struct RwLock<T: ?Sized> {
    rank: Rank,
    name: &'static str,
    inner: RawRwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<crate::sync::RwLockReadGuard<'a, T>>,
    token: Token,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ManuallyDrop<crate::sync::RwLockWriteGuard<'a, T>>,
    token: Token,
}

impl<T> RwLock<T> {
    pub const fn new(rank: Rank, name: &'static str, value: T) -> Self {
        RwLock {
            rank,
            name,
            inner: RawRwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let token = push(self.rank, self.name);
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                inner: ManuallyDrop::new(g),
                token,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                inner: ManuallyDrop::new(p.into_inner()),
                token,
            })),
        }
    }

    #[track_caller]
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let token = push(self.rank, self.name);
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                inner: ManuallyDrop::new(g),
                token,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                inner: ManuallyDrop::new(p.into_inner()),
                token,
            })),
        }
    }

    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        pop(self.token);
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        pop(self.token);
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish()
    }
}

/// Condvar paired with a ranked [`Mutex`]. Waiting releases the rank
/// entry (the lock really is released) and re-registers it — re-running
/// the rank check — on wakeup.
pub struct Condvar {
    inner: RawCondvar,
    rank: Rank,
    name: &'static str,
}

impl Condvar {
    pub const fn new(rank: Rank, name: &'static str) -> Self {
        Condvar {
            inner: RawCondvar::new(),
            rank,
            name,
        }
    }

    /// Split a ranked guard into its raw guard, releasing the rank
    /// entry, without running its destructor.
    fn unwrap_guard<'a, T: ?Sized>(guard: MutexGuard<'a, T>) -> crate::sync::MutexGuard<'a, T> {
        let mut shell = ManuallyDrop::new(guard);
        pop(shell.token);
        // Safety: the shell is never dropped, so `inner` is moved out
        // exactly once.
        unsafe { ManuallyDrop::take(&mut shell.inner) }
    }

    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let raw = Self::unwrap_guard(guard);
        match self.inner.wait(raw) {
            Ok(g) => {
                let token = push(self.rank, self.name);
                Ok(MutexGuard {
                    inner: ManuallyDrop::new(g),
                    token,
                })
            }
            Err(p) => {
                let token = push(self.rank, self.name);
                Err(PoisonError::new(MutexGuard {
                    inner: ManuallyDrop::new(p.into_inner()),
                    token,
                }))
            }
        }
    }

    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let raw = Self::unwrap_guard(guard);
        match self.inner.wait_timeout(raw, dur) {
            Ok((g, t)) => {
                let token = push(self.rank, self.name);
                Ok((
                    MutexGuard {
                        inner: ManuallyDrop::new(g),
                        token,
                    },
                    t,
                ))
            }
            Err(p) => {
                let (g, t) = p.into_inner();
                let token = push(self.rank, self.name);
                Err(PoisonError::new((
                    MutexGuard {
                        inner: ManuallyDrop::new(g),
                        token,
                    },
                    t,
                )))
            }
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The witness state is thread-local, so each test runs on its own
    // thread to keep panics from contaminating neighbours.

    #[test]
    fn in_order_nesting_is_allowed() {
        std::thread::spawn(|| {
            let low = Mutex::new(FRONTEND, "test.low", 1u32);
            let high = Mutex::new(BANK_SHARD, "test.high", 2u32);
            let g1 = low.lock().unwrap();
            let g2 = high.lock().unwrap();
            assert_eq!(*g1 + *g2, 3);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn out_of_order_nesting_panics_with_both_sites() {
        let err = std::thread::spawn(|| {
            let low = Mutex::new(FRONTEND, "test.low", 1u32);
            let high = Mutex::new(BANK_SHARD, "test.high", 2u32);
            let _g2 = high.lock().unwrap();
            let _g1 = low.lock().unwrap(); // rank 20 after rank 90: boom
        })
        .join()
        .expect_err("inverted nesting must panic in debug builds");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("lock-rank violation"), "got: {msg}");
        assert!(
            msg.contains("test.high") && msg.contains("test.low"),
            "got: {msg}"
        );
        assert!(
            msg.contains("lockrank.rs"),
            "acquisition sites recorded: {msg}"
        );
    }

    #[test]
    fn same_rank_twice_panics() {
        std::thread::spawn(|| {
            let a = Mutex::new(CACHE_STRIPE, "test.stripe-a", ());
            let b = Mutex::new(CACHE_STRIPE, "test.stripe-b", ());
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        })
        .join()
        .expect_err("two same-rank locks held together must panic");
    }

    #[test]
    fn sequential_reacquisition_is_fine() {
        std::thread::spawn(|| {
            let high = Mutex::new(BANK_SHARD, "test.high", ());
            let low = Mutex::new(FRONTEND, "test.low", ());
            drop(high.lock().unwrap());
            drop(low.lock().unwrap()); // high released first: no nesting
            drop(high.lock().unwrap());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn rwlock_reads_participate() {
        let err = std::thread::spawn(|| {
            let shard = RwLock::new(BANK_SHARD, "test.shard", ());
            let stop = Mutex::new(PERSIST_STOP, "test.stop", ());
            let _g = shard.read().unwrap();
            let _s = stop.lock().unwrap(); // rank 15 under rank 90: boom
        })
        .join()
        .expect_err("read guards hold their rank too");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic carries a message");
        assert!(msg.contains("test.shard"), "got: {msg}");
    }

    #[test]
    fn condvar_wait_releases_rank() {
        std::thread::spawn(|| {
            let stop = Mutex::new(PERSIST_STOP, "test.stop", false);
            let cv = Condvar::new(PERSIST_STOP, "test.stop");
            let g = stop.lock().unwrap();
            // While waiting, the PERSIST_STOP rank must not be held:
            // prove it by timing out and then nesting a higher rank.
            let (g, t) = cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
            assert!(t.timed_out());
            let high = Mutex::new(FRONTEND, "test.frontend", ());
            let _h = high.lock().unwrap(); // 20 over 15: legal
            drop(g);
        })
        .join()
        .unwrap();
    }
}
