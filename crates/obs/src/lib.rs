//! # FreezeML observability — the flight recorder
//!
//! Two layers, both built so that *not* observing costs nothing:
//!
//! * [`metrics`] — a lock-free registry of sharded atomic counters and
//!   log-bucketed latency histograms (p50/p90/p99 derivable from
//!   bucket counts), merged on read. One [`Registry`] per hub replaces
//!   the scattered per-layer counters (`CheckReport`'s
//!   rechecked/reused/waves, the scheme bank's render hits, the
//!   persistence layer's evictions) as the single source of truth,
//!   exposed live through the protocol's `stats` (JSON) and `metrics`
//!   (Prometheus text) commands.
//! * [`trace`] — span/event tracing to JSONL, modeled on the
//!   elaboration layer's evidence-sink pattern: emit sites are generic
//!   over a [`TraceSink`] whose `ENABLED` associated const lets the
//!   disabled instantiation ([`NoTrace`]) monomorphise to the exact
//!   pre-tracing code. Records carry hierarchical ids (connection →
//!   session → request → wave → binding) and per-phase durations.
//!
//! This crate sits below every serving-layer crate and above none; its
//! only dependency is the vendored `interleave` shim, whose normal-build
//! personality is a literal `std::sync` re-export (zero cost), and whose
//! `--cfg interleave` personality lets `tests/model/` model-check this
//! crate's real production code. Two correctness-tooling modules live
//! here so every crate above can use them:
//!
//! * [`sync`] — the alias module all locks/atomics in this crate import
//!   from (the `freezeml lint` gate forbids bare `std::sync` imports).
//! * [`lockrank`] — debug-build lock-rank witness: ranked `Mutex` /
//!   `RwLock` wrappers that panic (with both acquisition backtraces) on
//!   out-of-order lock nesting anywhere in the process.

pub mod lockrank;
pub mod metrics;
pub mod sync;
pub mod trace;

pub use metrics::{
    bucket_le_ns, Cmd, CmdMetrics, CmdSnapshot, Counter, HistSnapshot, Histogram, LabeledCounter,
    Registry, Snapshot, BUCKETS,
};
pub use trace::{
    next_conn_id, next_session_id, JsonlSink, NoTrace, Record, Span, TraceCtx, TraceSink, Tracer,
    Val, TRACE_ENV,
};
