//! The lock-free metrics registry: sharded atomic counters and
//! log-bucketed latency histograms, merged on read.
//!
//! The hot path (a worker recording a verdict-cache hit, a session
//! thread timing a request) must never take a lock and never allocate.
//! Both primitives here are arrays of cache-line-aligned `AtomicU64`
//! shards — the same contention-avoidance shape as the scheme bank's
//! sixteen shards — indexed by a per-thread shard id, so concurrent
//! writers touch distinct cache lines. Reads (`get`, `snapshot`) sum
//! across shards; they are racy in the benign sense (a concurrent
//! increment may or may not be visible) but never torn, since every
//! shard is a single atomic.
//!
//! Histograms bucket by the position of the highest set bit of the
//! recorded nanosecond value — `floor(log2(ns)) + 1`, forty buckets
//! covering 1 ns to ~4.5 min with the last bucket open-ended. That is
//! coarse (each bucket spans a factor of two) but allocation-free, and
//! p50/p90/p99 read off the cumulative bucket counts are accurate to
//! within one octave — plenty for a slow-request threshold or a
//! regression gate.
//!
//! The [`Registry`] is the single source of truth for every counter the
//! service layer previously scattered across `CheckReport`, the scheme
//! bank, and the persistence layer: one instance lives on the hub
//! (`Shared`) and every session, worker, and the checkpoint thread
//! write into it.

use crate::lockrank;
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::PoisonError;
use std::time::Duration;

/// Shard count for counters and histograms. Power of two; eight is
/// enough to keep an eight-session load mix off each other's cache
/// lines without bloating merge cost.
pub const SHARDS: usize = 8;

/// Number of log2 latency buckets: bucket `i` (for `i >= 1`) holds
/// samples in `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds exact zeros;
/// the last bucket is open-ended.
pub const BUCKETS: usize = 40;

/// A per-thread shard selector: threads get consecutive ids on first
/// touch, folded into `SHARDS`. Workers and session threads therefore
/// spread across shards rather than hashing to one.
fn shard_index() -> usize {
    // Under the model checker, shard choice must be a pure function of
    // the model thread id: the cross-execution `NEXT` static would make
    // schedules non-deterministic and break DFS replay.
    if let Some(tid) = interleave::thread::model_tid() {
        return tid & (SHARDS - 1);
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    IDX.with(|c| {
        let mut i = c.get();
        if i == usize::MAX {
            // ord: Relaxed — a unique-id allocator; only the RMW's
            // atomicity matters, no other memory is published through it.
            i = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(i);
        }
        i & (SHARDS - 1)
    })
}

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A sharded monotonic counter. `add` is one relaxed `fetch_add` on the
/// calling thread's shard; `get` sums the shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        // ord: Relaxed — monotonic statistic; readers only need each
        // shard's value to be untorn, not ordered against other memory.
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            // ord: Relaxed — benign race by design: a concurrent add may
            // or may not be counted, but each shard read is untorn.
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// One histogram shard: per-bucket counts plus the running sum of
/// recorded nanoseconds (so exposition can report a mean and a
/// Prometheus `_sum`).
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for HistShard {
    fn default() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// Which bucket a nanosecond sample lands in.
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` in nanoseconds
/// (`u64::MAX` for the open-ended last bucket).
pub fn bucket_le_ns(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A sharded log-bucketed latency histogram. Recording is two relaxed
/// `fetch_add`s on the calling thread's shard — no locks, no
/// allocation.
#[derive(Default)]
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record a sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let shard = &self.shards[shard_index()];
        // ord: Relaxed — monotonic statistics; bucket count and sum may
        // be observed at different instants by a reader, by design.
        shard.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        // ord: Relaxed — see above.
        shard.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record a duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merge the shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum_ns = 0u64;
        for s in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(&s.buckets) {
                // ord: Relaxed — snapshot reads race benignly with
                // writers; each bucket read is untorn.
                *acc += b.load(Ordering::Relaxed);
            }
            // ord: Relaxed — see above.
            sum_ns = sum_ns.wrapping_add(s.sum_ns.load(Ordering::Relaxed));
        }
        HistSnapshot { buckets, sum_ns }
    }
}

/// A merged, immutable view of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; bucket bounds via [`bucket_le_ns`].
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded samples in nanoseconds.
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper bound (ns) of the bucket containing quantile `q`
    /// (`0.0..=1.0`), or 0 for an empty histogram. Accurate to one
    /// octave by construction.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_le_ns(i);
            }
        }
        bucket_le_ns(BUCKETS - 1)
    }

    /// Median sample bound in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile bound in nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile bound in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Mean sample in nanoseconds (0 for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }
}

/// A counter with a small dynamic label set (e.g. cold-fallback
/// *reasons*). Cold-path only — it takes a lock — so it is reserved for
/// events that are already I/O-bound failures.
pub struct LabeledCounter {
    slots: lockrank::Mutex<Vec<(String, u64)>>,
}

impl Default for LabeledCounter {
    fn default() -> LabeledCounter {
        LabeledCounter {
            slots: lockrank::Mutex::new(lockrank::METRICS_LABELS, "obs.metrics.labels", Vec::new()),
        }
    }
}

impl LabeledCounter {
    /// A fresh empty labeled counter.
    pub fn new() -> LabeledCounter {
        LabeledCounter::default()
    }

    /// Add one to `label`'s count.
    pub fn inc(&self, label: &str) {
        let mut g = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = g.iter_mut().find(|(l, _)| l == label) {
            slot.1 += 1;
        } else {
            g.push((label.to_string(), 1));
        }
    }

    /// The count for one label (0 if never bumped).
    pub fn get(&self, label: &str) -> u64 {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, n)| *n)
    }

    /// All `(label, count)` pairs, sorted by label for stable output.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut v = self
            .slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        v.sort();
        v
    }

    /// Sum over all labels.
    pub fn total(&self) -> u64 {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(_, n)| n)
            .sum()
    }
}

/// The protocol commands the registry tracks per-command latency and
/// error counts for. `Invalid` absorbs lines that never resolved to a
/// command (parse failures, unknown `cmd` values, junk fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmd {
    Open,
    Edit,
    Check,
    TypeOf,
    Elaborate,
    Close,
    Stats,
    Metrics,
    Shutdown,
    Invalid,
}

impl Cmd {
    /// Every command, in exposition order.
    pub const ALL: [Cmd; 10] = [
        Cmd::Open,
        Cmd::Edit,
        Cmd::Check,
        Cmd::TypeOf,
        Cmd::Elaborate,
        Cmd::Close,
        Cmd::Stats,
        Cmd::Metrics,
        Cmd::Shutdown,
        Cmd::Invalid,
    ];

    /// The protocol spelling.
    pub fn name(self) -> &'static str {
        match self {
            Cmd::Open => "open",
            Cmd::Edit => "edit",
            Cmd::Check => "check",
            Cmd::TypeOf => "type-of",
            Cmd::Elaborate => "elaborate",
            Cmd::Close => "close",
            Cmd::Stats => "stats",
            Cmd::Metrics => "metrics",
            Cmd::Shutdown => "shutdown",
            Cmd::Invalid => "invalid",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-command request metrics.
#[derive(Default)]
pub struct CmdMetrics {
    /// Requests answered (including error answers).
    pub count: Counter,
    /// Requests answered with `ok:false`.
    pub errors: Counter,
    /// End-to-end request latency (receive → response written).
    pub latency: Histogram,
}

/// The registry: every counter and histogram the serving stack exposes,
/// one instance per hub. All members are individually lock-free (except
/// the labeled cold-path failure counter); there is no registry-wide
/// lock and no registration step — the metric set is closed and typed,
/// so exposition code enumerates it statically.
#[derive(Default)]
pub struct Registry {
    commands: [CmdMetrics; Cmd::ALL.len()],
    /// Socket connections accepted.
    pub connections: Counter,
    /// Sessions constructed against the hub.
    pub sessions: Counter,
    /// Requests exceeding the `--slow-ms` threshold.
    pub slow_requests: Counter,
    /// Bindings covered by produced or served `CheckReport`s.
    pub bindings: Counter,
    /// Bindings actually re-inferred.
    pub rechecked: Counter,
    /// Bindings served from the verdict cache.
    pub reused: Counter,
    /// Bindings not checked (failed dependency or recursive group).
    pub blocked: Counter,
    /// Topological waves scheduled.
    pub waves: Counter,
    /// Verdict-cache (striped outcome cache) hits.
    pub verdict_hits: Counter,
    /// Verdict-cache misses.
    pub verdict_misses: Counter,
    /// Whole-document report cache hits.
    pub doc_hits: Counter,
    /// Whole-document report cache misses.
    pub doc_misses: Counter,
    /// Cache entries evicted by the persistence layer.
    pub evictions: Counter,
    /// Snapshot loads that restored state.
    pub cache_loads: Counter,
    /// Snapshot loads that fell back cold, by reason.
    pub cache_load_failures: LabeledCounter,
    /// Checkpoints completed (snapshot written and renamed).
    pub checkpoints: Counter,
    /// Checkpoint attempts that failed.
    pub checkpoint_failures: Counter,
    /// Bytes written by completed checkpoints.
    pub checkpoint_bytes: Counter,
    /// Wall-clock duration of each completed checkpoint save.
    pub checkpoint_duration: Histogram,
    /// Connections shed by admission control before a session touched
    /// them (queue over `--max-pending`, or the server was draining).
    pub requests_shed: Counter,
    /// Requests answered with the structured `deadline` error (budget
    /// exhausted at a wave boundary, or the socket read/write timed
    /// out).
    pub deadline_exceeded: Counter,
    /// 1 while the server is draining (stopped accepting, finishing
    /// in-flight requests), else 0. A gauge, not a counter.
    pub draining: AtomicU64,
    /// Fault-injection trips, by site (`FREEZEML_FAILPOINTS`).
    pub failpoint_trips: LabeledCounter,
    /// Session threads that died outside `catch_unwind` and were
    /// respawned by the pool.
    pub session_thread_deaths: Counter,
}

impl Registry {
    /// A fresh zeroed registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The metrics for one command.
    pub fn cmd(&self, c: Cmd) -> &CmdMetrics {
        &self.commands[c.index()]
    }

    /// Record one answered request: its command, latency, and whether
    /// the answer was an error.
    pub fn record_request(&self, c: Cmd, latency: Duration, is_error: bool) {
        let m = self.cmd(c);
        m.count.inc();
        if is_error {
            m.errors.inc();
        }
        m.latency.record(latency);
    }

    /// Merge everything into a point-in-time snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            commands: Cmd::ALL
                .iter()
                .map(|&c| {
                    let m = self.cmd(c);
                    CmdSnapshot {
                        cmd: c,
                        count: m.count.get(),
                        errors: m.errors.get(),
                        latency: m.latency.snapshot(),
                    }
                })
                .collect(),
            connections: self.connections.get(),
            sessions: self.sessions.get(),
            slow_requests: self.slow_requests.get(),
            bindings: self.bindings.get(),
            rechecked: self.rechecked.get(),
            reused: self.reused.get(),
            blocked: self.blocked.get(),
            waves: self.waves.get(),
            verdict_hits: self.verdict_hits.get(),
            verdict_misses: self.verdict_misses.get(),
            doc_hits: self.doc_hits.get(),
            doc_misses: self.doc_misses.get(),
            evictions: self.evictions.get(),
            cache_loads: self.cache_loads.get(),
            cache_load_failures: self.cache_load_failures.snapshot(),
            checkpoints: self.checkpoints.get(),
            checkpoint_failures: self.checkpoint_failures.get(),
            checkpoint_bytes: self.checkpoint_bytes.get(),
            checkpoint_duration: self.checkpoint_duration.snapshot(),
            requests_shed: self.requests_shed.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            // ord: Relaxed — exposition-only gauge; the drain *control*
            // flow reads `service::Shared::draining` (Acquire/Release),
            // never this copy, so staleness here is cosmetic.
            draining: self.draining.load(Ordering::Relaxed),
            failpoint_trips: self.failpoint_trips.snapshot(),
            session_thread_deaths: self.session_thread_deaths.get(),
        }
    }

    /// Flip the draining gauge.
    pub fn set_draining(&self, on: bool) {
        // ord: Relaxed — exposition-only gauge (see `snapshot`); drain
        // control flow synchronizes through `Shared::draining` instead.
        self.draining.store(u64::from(on), Ordering::Relaxed);
    }
}

/// Snapshot of one command's metrics.
#[derive(Clone, Debug)]
pub struct CmdSnapshot {
    /// Which command.
    pub cmd: Cmd,
    /// Requests answered.
    pub count: u64,
    /// Error answers.
    pub errors: u64,
    /// Latency distribution.
    pub latency: HistSnapshot,
}

/// A merged point-in-time view of the whole [`Registry`].
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field-for-field mirror of `Registry`
pub struct Snapshot {
    pub commands: Vec<CmdSnapshot>,
    pub connections: u64,
    pub sessions: u64,
    pub slow_requests: u64,
    pub bindings: u64,
    pub rechecked: u64,
    pub reused: u64,
    pub blocked: u64,
    pub waves: u64,
    pub verdict_hits: u64,
    pub verdict_misses: u64,
    pub doc_hits: u64,
    pub doc_misses: u64,
    pub evictions: u64,
    pub cache_loads: u64,
    pub cache_load_failures: Vec<(String, u64)>,
    pub checkpoints: u64,
    pub checkpoint_failures: u64,
    pub checkpoint_bytes: u64,
    pub checkpoint_duration: HistSnapshot,
    pub requests_shed: u64,
    pub deadline_exceeded: u64,
    pub draining: u64,
    pub failpoint_trips: Vec<(String, u64)>,
    pub session_thread_deaths: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn buckets_are_log2_with_zero_and_open_top() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Bucket bounds are consistent with membership: a sample is
        // <= its bucket's bound and > the previous bucket's bound.
        for ns in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789] {
            let b = bucket_of(ns);
            assert!(ns <= bucket_le_ns(b), "{ns} > le({b})");
            if b > 0 {
                assert!(ns > bucket_le_ns(b - 1), "{ns} <= le({})", b - 1);
            }
        }
        assert_eq!(bucket_le_ns(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_read_off_cumulative_buckets() {
        let h = Histogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        // p50 and p90 land in the 1 µs octave; p99 in the 1 ms octave.
        assert!(s.p50_ns() >= 1_000 && s.p50_ns() < 2_048, "{}", s.p50_ns());
        assert!(s.p90_ns() >= 1_000 && s.p90_ns() < 2_048, "{}", s.p90_ns());
        assert!(
            s.p99_ns() >= 1_000_000 && s.p99_ns() < 2_097_152,
            "{}",
            s.p99_ns()
        );
        assert_eq!(s.mean_ns(), (90 * 1_000 + 10 * 1_000_000) / 100);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn histogram_records_concurrently() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record_ns(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 8_000);
    }

    #[test]
    fn labeled_counter_accumulates_per_label() {
        let c = LabeledCounter::new();
        c.inc("checksum");
        c.inc("epoch");
        c.inc("checksum");
        assert_eq!(
            c.snapshot(),
            vec![("checksum".to_string(), 2), ("epoch".to_string(), 1)]
        );
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn registry_snapshot_mirrors_counters() {
        let r = Registry::new();
        r.record_request(Cmd::Check, Duration::from_micros(250), false);
        r.record_request(Cmd::Check, Duration::from_micros(900), true);
        r.record_request(Cmd::Stats, Duration::from_micros(5), false);
        r.bindings.add(16);
        r.rechecked.add(4);
        r.reused.add(12);
        r.cache_load_failures.inc("checksum");
        r.requests_shed.add(3);
        r.deadline_exceeded.inc();
        r.set_draining(true);
        r.failpoint_trips.inc("persist.write");
        r.session_thread_deaths.inc();
        let s = r.snapshot();
        let check = s
            .commands
            .iter()
            .find(|c| c.cmd == Cmd::Check)
            .expect("check row");
        assert_eq!((check.count, check.errors), (2, 1));
        assert_eq!(check.latency.count(), 2);
        assert_eq!(s.bindings, 16);
        assert_eq!(s.rechecked + s.reused + s.blocked, 16);
        assert_eq!(s.cache_load_failures, vec![("checksum".to_string(), 1)]);
        assert_eq!(s.requests_shed, 3);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.draining, 1);
        assert_eq!(s.failpoint_trips, vec![("persist.write".to_string(), 1)]);
        assert_eq!(s.session_thread_deaths, 1);
        r.set_draining(false);
        assert_eq!(r.snapshot().draining, 0);
    }
}
