//! The type-erasure round-trip property, on both engines: for every
//! well-typed term `M`, the *literal* Figure 11 image `C⟦M⟧` erases back
//! to `M`'s own λ-skeleton — `erase(C⟦M⟧) ≡ erase(M)` — where erasure
//! drops types, freezing, and `Λ`/type applications, and reads `let` as
//! its β-redex image. The reduced image is additionally held to the
//! System F typing oracle at a type α-equivalent to the inferred scheme.

use freezeml_core::{KindEnv, Options, Term, Type, TypeEnv};
use freezeml_translate::{elaborate_with, erase_fterm, erase_term, ElabEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn annotation_pool() -> Vec<Type> {
    [
        "Int",
        "Int -> Int",
        "forall a. a -> a",
        "forall a b. a -> b -> a",
        "List (forall a. a -> a)",
        "forall a. List a -> a",
        "(forall a. a -> a) -> Int * Bool",
    ]
    .iter()
    .map(|s| freezeml_core::parse_type(s).expect("pool type parses"))
    .collect()
}

struct TermPool {
    prelude: Vec<String>,
    annotations: Vec<Type>,
}

fn fresh_name(counter: &mut usize) -> String {
    let n = format!("x{counter}");
    *counter += 1;
    n
}

fn leaf<R: Rng>(rng: &mut R, pool: &TermPool, scope: &[String]) -> Term {
    let n_scope = scope.len();
    let n_prelude = pool.prelude.len();
    let total = 2 * (n_scope + n_prelude) + 2;
    let i = rng.gen_range(0..total);
    let name_at = |i: usize| -> &str {
        if i < n_scope {
            scope[i].as_str()
        } else {
            pool.prelude[i - n_scope].as_str()
        }
    };
    if i < n_scope + n_prelude {
        Term::var(name_at(i))
    } else if i < 2 * (n_scope + n_prelude) {
        Term::frozen(name_at(i - n_scope - n_prelude))
    } else if i == 2 * (n_scope + n_prelude) {
        Term::int(rng.gen_range(0..100))
    } else {
        Term::bool(rng.gen_bool(0.5))
    }
}

fn random_term<R: Rng>(
    rng: &mut R,
    pool: &TermPool,
    depth: usize,
    scope: &mut Vec<String>,
    counter: &mut usize,
) -> Term {
    if depth == 0 {
        return leaf(rng, pool, scope);
    }
    match rng.gen_range(0..20) {
        0..=3 => leaf(rng, pool, scope),
        4..=6 => {
            let x = fresh_name(counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::lam(x.as_str(), body)
        }
        7 => {
            let x = fresh_name(counter);
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::lam_ann(x.as_str(), ann, body)
        }
        8..=12 => {
            let f = random_term(rng, pool, depth - 1, scope, counter);
            let a = random_term(rng, pool, depth - 1, scope, counter);
            Term::app(f, a)
        }
        13..=15 => {
            let x = fresh_name(counter);
            let rhs = random_term(rng, pool, depth - 1, scope, counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::let_(x.as_str(), rhs, body)
        }
        16 => {
            let x = fresh_name(counter);
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            let rhs = random_term(rng, pool, depth - 1, scope, counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::let_ann(x.as_str(), ann, rhs, body)
        }
        17 => Term::gen(random_term(rng, pool, depth - 1, scope, counter)),
        18 => Term::inst(random_term(rng, pool, depth - 1, scope, counter)),
        _ => {
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            Term::ty_app(random_term(rng, pool, depth - 1, scope, counter), ann)
        }
    }
}

fn env() -> TypeEnv {
    freezeml_corpus::figure2()
}

#[test]
fn erasure_round_trips_on_generated_terms_both_engines() {
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE2A5E);
    let env = env();
    let pool = TermPool {
        prelude: env.iter().map(|(v, _)| v.to_string()).collect(),
        annotations: annotation_pool(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut well_typed = 0usize;
    for case in 0..cases {
        let mut scope = Vec::new();
        let mut counter = 0usize;
        let term = random_term(&mut rng, &pool, 5, &mut scope, &mut counter);
        let opts = if rng.gen_bool(0.2) {
            Options::eliminator()
        } else {
            Options::default()
        };
        let want = erase_term(&term);
        for engine in [ElabEngine::Core, ElabEngine::Uf] {
            let Ok(image) = elaborate_with(engine, &env, &term, &opts) else {
                continue;
            };
            well_typed += 1;
            let got = erase_fterm(&image.literal);
            assert_eq!(
                got, want,
                "case {case} ({engine:?}, seed {seed}): erase(C⟦{term}⟧) ≠ erase({term})"
            );
            // The reduced image is held to the System F oracle.
            let fty = freezeml_systemf::typecheck(&KindEnv::new(), &env, &image.term)
                .unwrap_or_else(|e| {
                    panic!(
                        "case {case} ({engine:?}, seed {seed}): C⟦{term}⟧ ill-typed: {e}\n  {}",
                        image.term
                    )
                });
            assert!(
                fty.alpha_eq(&image.ty),
                "case {case} ({engine:?}, seed {seed}): {fty} vs {}",
                image.ty
            );
        }
    }
    assert!(
        well_typed * 10 >= cases,
        "only {well_typed} well-typed elaborations over {cases} cases"
    );
}

#[test]
fn erasure_round_trips_on_figure1_corpus() {
    for e in freezeml_corpus::EXAMPLES {
        let env = freezeml_corpus::runner::env_for(e);
        let opts = freezeml_corpus::runner::options_for(e);
        let Ok(term) = freezeml_core::parse_term(e.src) else {
            continue;
        };
        let want = erase_term(&term);
        for engine in [ElabEngine::Core, ElabEngine::Uf] {
            if let Ok(image) = elaborate_with(engine, &env, &term, &opts) {
                assert_eq!(erase_fterm(&image.literal), want, "{} ({engine:?})", e.id);
            }
        }
    }
}
