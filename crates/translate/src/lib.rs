//! # Translations between FreezeML and System F (paper §4)
//!
//! * [`freeze_to_f()`](freeze_to_f()) — `C⟦−⟧` (Figure 11): FreezeML typing derivations to
//!   System F terms; type-preserving (Theorem 3).
//! * [`f_to_freeze()`](f_to_freeze()) — `E⟦−⟧` (Figure 10): System F terms to FreezeML;
//!   type-preserving (Theorem 2). Together they exhibit FreezeML as exactly
//!   as expressive as System F.
//! * [`freeze_to_poly_ml`] — the Appendix E translation into Poly-ML's
//!   boxed-polymorphism style, inserting no new type annotations.
//!
//! ## A repaired corner of Theorem 3
//!
//! The paper's proof of Theorem 3 (case `Let`, `M ∈ GVal`) claims that
//! `C⟦V⟧` is a System F *value* for every FreezeML value `V`. This is not
//! quite true: FreezeML values include `let x = V in W`, and `C` translates
//! `let` into a β-redex `(λx.W′) V′` — an application, which System F's
//! value restriction does not allow under `Λ`. [`freeze_to_f_valuable`]
//! repairs this by *administratively reducing* `let`-redexes whose argument
//! is already a value — a type- and semantics-preserving step that restores
//! the value form the proof assumes. The literal Figure 11 translation is
//! kept as [`freeze_to_f()`](freeze_to_f()).
//!
//! ```
//! use freezeml_core::{infer_term, parse_term, Options, TypeEnv};
//! use freezeml_translate::elaborate;
//! use freezeml_systemf::typecheck;
//! use freezeml_core::KindEnv;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut env = TypeEnv::new();
//! env.push_str("poly", "(forall a. a -> a) -> Int * Bool")?;
//! let term = parse_term("poly $(fun x -> x)")?;
//! let out = infer_term(&env, &term, &Options::default())?;
//! let elab = elaborate(&out);
//! // Theorem 3: the translation typechecks in System F at the same type.
//! let fty = typecheck(&KindEnv::new(), &env, &elab.term)?;
//! assert!(fty.alpha_eq(&elab.ty));
//! # Ok(())
//! # }
//! ```

pub mod elaborate;
pub mod f_to_freeze;
pub mod freeze_to_f;
pub mod poly_ml;

pub use elaborate::{
    canonicalize_fterm, elaborate_with, erase_fterm, erase_term, ElabEngine, ElabImage, Skeleton,
};
pub use f_to_freeze::f_to_freeze;
pub use freeze_to_f::{admin_reduce, elaborate, freeze_to_f, freeze_to_f_valuable, Elaborated};
pub use poly_ml::{freeze_to_poly_ml, PmlTerm, PmlType};
