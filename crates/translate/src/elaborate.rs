//! Elaboration drivers over **either** inference engine, plus the
//! canonical rendering and type-erasure views the differential harness
//! compares.
//!
//! The translation `C⟦−⟧` (Figure 11) now has two implementations:
//!
//! * the derivation-tree pipeline in [`crate::freeze_to_f`] — the
//!   paper-literal path, consuming `core`'s [`TypedTerm`]s;
//! * the engine-native pipeline in `freezeml_engine::elab` — evidence
//!   recorded during union-find inference, `TypeId`s read through the
//!   store, no derivation trees anywhere.
//!
//! [`elaborate_with`] dispatches on an [`ElabEngine`] selector; the
//! conformance crate's `elaborate` differential holds the two pipelines
//! to the same obligations (both images typecheck in
//! [`freezeml_systemf`] at a type α-equivalent to the inferred scheme,
//! and evaluate to the same ground values).
//!
//! Two term views support that comparison:
//!
//! * [`canonicalize_fterm`] — a canonical α-renaming of an [`FTerm`]:
//!   every type binder (term-level `Λ` and in-type `∀`) and every
//!   invented free type variable is renamed to `a, b, c, …` in one
//!   deterministic traversal, and invented term variables (desugaring
//!   artefacts like `$17`) to `x1, x2, …`. Renderings of canonicalised
//!   terms are stable across runs and engines, which is what the
//!   `expect-f:` golden directive keys on;
//! * [`erase_fterm`]/[`erase_term`] — the shared untyped λ-skeleton:
//!   `erase(C⟦M⟧) ≡ erase(M)` is the type-erasure round-trip property
//!   (`let` erases to its β-redex image on both sides).

use freezeml_core::{Lit, Options, Symbol, Term, TyVar, Type, TypeEnv, TypeError, Var};
use freezeml_systemf::FTerm;
use fxhash::{FxHashMap, FxHashSet};

use crate::freeze_to_f::freeze_to_f;

/// Which inference engine produces the evidence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElabEngine {
    /// The paper-literal derivation-tree pipeline (`core`).
    Core,
    /// The union-find engine's native evidence.
    Uf,
}

/// The image of a term under both `C⟦−⟧` pipelines: the administratively
/// reduced form (what the oracle typechecks) plus the literal Figure 11
/// image (what type erasure rounds through). The engine-side result
/// ([`freezeml_engine::Elab`]) converts via `From`, so the two types
/// cannot drift apart field-by-field.
#[derive(Clone, Debug)]
pub struct ElabImage {
    /// The administratively reduced System F term.
    pub term: FTerm,
    /// The literal (unreduced) image.
    pub literal: FTerm,
    /// The inferred type, residuals grounded to `Int`.
    pub ty: Type,
}

impl From<freezeml_engine::Elab> for ElabImage {
    fn from(e: freezeml_engine::Elab) -> ElabImage {
        ElabImage {
            term: e.term,
            literal: e.literal,
            ty: e.ty,
        }
    }
}

/// Elaborate on the selected engine.
///
/// # Errors
///
/// The engine's [`TypeError`] when the term does not typecheck.
pub fn elaborate_with(
    engine: ElabEngine,
    gamma: &TypeEnv,
    term: &Term,
    opts: &Options,
) -> Result<ElabImage, TypeError> {
    match engine {
        ElabEngine::Core => {
            // One defaulting pass, one Figure 11 translation — the
            // reduced image is derived from the literal one.
            let mut typed = freezeml_core::infer_term(gamma, term, opts)?.typed;
            typed.default_residuals(&Type::int());
            let literal = freeze_to_f(&typed);
            Ok(ElabImage {
                term: crate::admin_reduce(&literal),
                literal,
                ty: typed.ty,
            })
        }
        ElabEngine::Uf => Ok(freezeml_engine::elaborate_term(gamma, term, opts)?.into()),
    }
}

// ------------------------------------------------- checked elaboration

/// An elaboration that has been through the soundness oracle: the image
/// typechecks at the inferred scheme and its canonical rendering is
/// ready for cross-engine comparison. Evaluation is *not* performed
/// here — only the `both`-engine agreement obligation
/// ([`images_agree`]) runs the image, so single-engine callers never
/// execute the program they are elaborating.
pub struct CheckedElab {
    /// The verified image.
    pub image: ElabImage,
    /// Canonical rendering of the reduced image
    /// ([`canonicalize_fterm`]) — stable across runs and engines.
    pub rendered: String,
}

impl CheckedElab {
    /// Evaluate the image under the Figure 2 runtime prelude.
    pub fn evaluate(&self) -> Result<freezeml_systemf::Value, String> {
        freezeml_systemf::eval(&freezeml_systemf::prelude::runtime_env(), &self.image.term)
            .map_err(|e| e.to_string())
    }
}

/// Elaborate on one engine and — when the term typechecks at all —
/// verify against the System F oracle: the image must typecheck (in
/// `∆ = ∅`, under `gamma`) at a type α-equivalent to the inferred
/// scheme (Theorem 3). `Ok(None)` when inference itself fails (there is
/// no image to check — elaboration is total on well-typed terms, so an
/// engine error here *is* the inference verdict); inference runs
/// exactly once.
///
/// # Errors
///
/// A rendered description of a failed obligation — the oracle rejected
/// the image, or the oracle's type disagrees with the inferred scheme.
/// Each is a soundness bug.
pub fn try_check_sound(
    engine: ElabEngine,
    gamma: &TypeEnv,
    term: &Term,
    opts: &Options,
) -> Result<Option<CheckedElab>, String> {
    let Ok(image) = elaborate_with(engine, gamma, term, opts) else {
        return Ok(None);
    };
    let fty = freezeml_systemf::typecheck(&freezeml_core::KindEnv::new(), gamma, &image.term)
        .map_err(|e| {
            format!(
                "{engine:?} image rejected by the System F oracle: {e}\n    term  {}",
                image.term
            )
        })?;
    if !fty.alpha_eq(&image.ty) {
        return Err(format!(
            "{engine:?} image typechecks at {fty}, but the inferred scheme is {}",
            image.ty
        ));
    }
    let rendered = canonicalize_fterm(&image.term).to_string();
    Ok(Some(CheckedElab { image, rendered }))
}

/// [`try_check_sound`] for callers that already know the term
/// typechecks (the service elaborates only bindings its report marked
/// `Typed`).
///
/// # Errors
///
/// As [`try_check_sound`], plus an error when the term unexpectedly
/// fails to infer.
pub fn check_sound(
    engine: ElabEngine,
    gamma: &TypeEnv,
    term: &Term,
    opts: &Options,
) -> Result<CheckedElab, String> {
    try_check_sound(engine, gamma, term, opts)?
        .ok_or_else(|| format!("{engine:?}: the term does not typecheck"))
}

/// The cross-pipeline agreement obligation on two checked images: the
/// canonical renderings must be identical and the evaluations must
/// agree ([`evals_agree`]). One definition, shared by the conformance
/// differential and the service's `elaborate` endpoint.
///
/// # Errors
///
/// A rendered description of the disagreement — a checker bug.
pub fn images_agree(core: &CheckedElab, uf: &CheckedElab) -> Result<(), String> {
    if core.rendered != uf.rendered {
        return Err(format!(
            "the two pipelines' canonical images differ:\n    core  {}\n    uf    {}",
            core.rendered, uf.rendered
        ));
    }
    let (core_val, uf_val) = (core.evaluate(), uf.evaluate());
    if !evals_agree(&core_val, &uf_val) {
        return Err(format!(
            "the two images evaluate differently:\n    core  {}\n    uf    {}",
            render_eval(&core_val),
            render_eval(&uf_val)
        ));
    }
    Ok(())
}

/// Do two images' evaluation outcomes agree? Ground values must be
/// equal; non-ground outcomes (closures, partial builtins) only need to
/// agree on success/failure.
pub fn evals_agree(
    a: &Result<freezeml_systemf::Value, String>,
    b: &Result<freezeml_systemf::Value, String>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => !(x.is_ground() && y.is_ground()) || x == y,
        (Err(_), Err(_)) => true,
        _ => false,
    }
}

/// Render an evaluation outcome for reports.
pub fn render_eval(r: &Result<freezeml_systemf::Value, String>) -> String {
    match r {
        Ok(v) => v.to_string(),
        Err(e) => format!("✕ ({e})"),
    }
}

// -------------------------------------------------- canonical renaming

struct Canon {
    /// Letters not already claimed by a named type variable anywhere in
    /// the term (free named variables must keep their spelling; bound
    /// named variables are renamed, but reserving their letters keeps
    /// the assignment independent of binding structure).
    supply: std::vec::IntoIter<Symbol>,
    overflow: u32,
    /// Canonical names for invented *free* type variables.
    ty_free: FxHashMap<TyVar, TyVar>,
    /// Canonical names for invented term variables.
    var_map: FxHashMap<Var, Var>,
    var_names: FxHashSet<&'static str>,
    var_counter: usize,
}

impl Canon {
    fn next_letter(&mut self) -> TyVar {
        match self.supply.next() {
            Some(s) => TyVar::from_symbol(s),
            None => {
                // Astronomically many binders: fall back to numbered
                // names (still deterministic).
                self.overflow += 1;
                TyVar::named(format!("t{}", self.overflow))
            }
        }
    }

    fn rename_var(&mut self, x: Var) -> Var {
        if x.name().is_some() {
            return x;
        }
        if let Some(&v) = self.var_map.get(&x) {
            return v;
        }
        let fresh = loop {
            self.var_counter += 1;
            let name = format!("x{}", self.var_counter);
            if !self.var_names.contains(name.as_str()) {
                break Var::named(&name);
            }
        };
        self.var_map.insert(x, fresh);
        fresh
    }

    fn ty_var(&mut self, v: TyVar, env: &[(TyVar, TyVar)]) -> TyVar {
        if let Some((_, to)) = env.iter().rev().find(|(from, _)| *from == v) {
            return *to;
        }
        if v.is_named() {
            return v;
        }
        if let Some(&to) = self.ty_free.get(&v) {
            return to;
        }
        let to = self.next_letter();
        self.ty_free.insert(v, to);
        to
    }

    fn ty(&mut self, t: &Type, env: &mut Vec<(TyVar, TyVar)>) -> Type {
        match t {
            Type::Var(v) => Type::Var(self.ty_var(*v, env)),
            Type::Con(c, args) => Type::Con(*c, args.iter().map(|a| self.ty(a, env)).collect()),
            Type::Forall(v, body) => {
                let to = self.next_letter();
                env.push((*v, to));
                let body = self.ty(body, env);
                env.pop();
                Type::Forall(to, Box::new(body))
            }
        }
    }

    fn term(&mut self, t: &FTerm, env: &mut Vec<(TyVar, TyVar)>) -> FTerm {
        match t {
            FTerm::Var(x) => FTerm::Var(self.rename_var(*x)),
            FTerm::Lit(l) => FTerm::Lit(*l),
            FTerm::Lam(x, ann, body) => {
                let x = self.rename_var(*x);
                let ann = self.ty(ann, env);
                FTerm::Lam(x, ann, Box::new(self.term(body, env)))
            }
            FTerm::App(m, n) => FTerm::app(self.term(m, env), self.term(n, env)),
            FTerm::TyLam(a, body) => {
                let to = self.next_letter();
                env.push((*a, to));
                let body = self.term(body, env);
                env.pop();
                FTerm::TyLam(to, Box::new(body))
            }
            FTerm::TyApp(m, ty) => {
                let m = self.term(m, env);
                let ty = self.ty(ty, env);
                FTerm::tyapp(m, ty)
            }
        }
    }
}

/// Collect the *free* named type variables (the only names the supply
/// must avoid — bound named binders are renamed away, and reserving
/// their letters would make the assignment depend on which pipeline
/// kept source names at binders) and every named term variable.
fn collect_names(
    t: &FTerm,
    bound: &mut Vec<TyVar>,
    tys: &mut FxHashSet<Symbol>,
    vars: &mut FxHashSet<&'static str>,
) {
    fn ty_names(t: &Type, bound: &mut Vec<TyVar>, out: &mut FxHashSet<Symbol>) {
        match t {
            Type::Var(v) => {
                if !bound.contains(v) {
                    if let Some(s) = v.symbol() {
                        out.insert(s);
                    }
                }
            }
            Type::Con(_, args) => args.iter().for_each(|a| ty_names(a, bound, out)),
            Type::Forall(v, body) => {
                bound.push(*v);
                ty_names(body, bound, out);
                bound.pop();
            }
        }
    }
    match t {
        FTerm::Var(x) => {
            if let Some(n) = x.name() {
                vars.insert(n);
            }
        }
        FTerm::Lit(_) => {}
        FTerm::Lam(x, ann, body) => {
            if let Some(n) = x.name() {
                vars.insert(n);
            }
            ty_names(ann, bound, tys);
            collect_names(body, bound, tys, vars);
        }
        FTerm::App(m, n) => {
            collect_names(m, bound, tys, vars);
            collect_names(n, bound, tys, vars);
        }
        FTerm::TyLam(a, body) => {
            bound.push(*a);
            collect_names(body, bound, tys, vars);
            bound.pop();
        }
        FTerm::TyApp(m, ty) => {
            collect_names(m, bound, tys, vars);
            ty_names(ty, bound, tys);
        }
    }
}

/// Canonically α-rename a System F term: every type binder (`Λ` and
/// in-type `∀`) gets the next letter of one deterministic pre-order
/// supply, invented free type variables are lettered at first
/// appearance, and invented term variables become `x1, x2, …`. Named
/// free variables keep their spelling. Two α-equivalent terms with the
/// same named-variable skeleton canonicalise to the same term, so the
/// *rendering* of the canonical form is a stable golden — independent
/// of the global fresh-name counter and of which engine produced the
/// evidence.
pub fn canonicalize_fterm(t: &FTerm) -> FTerm {
    let mut tys = FxHashSet::default();
    let mut vars = FxHashSet::default();
    collect_names(t, &mut Vec::new(), &mut tys, &mut vars);
    // Pre-draw a generous batch of letters (the supply iterator borrows
    // the taken set).
    let letters: Vec<Symbol> = freezeml_core::types::letter_supply(tys).take(512).collect();
    let mut canon = Canon {
        supply: letters.into_iter(),
        overflow: 0,
        ty_free: FxHashMap::default(),
        var_map: FxHashMap::default(),
        var_names: vars,
        var_counter: 0,
    };
    canon.term(t, &mut Vec::new())
}

// ----------------------------------------------------------- erasure

/// The untyped λ-skeleton shared by FreezeML terms and their System F
/// images (types, freezing, and generalisation/instantiation markers
/// erased; `let` as its β-redex image).
#[derive(Clone, Debug, PartialEq)]
pub enum Skeleton {
    /// A variable.
    Var(Var),
    /// A literal.
    Lit(Lit),
    /// `λx.M`.
    Lam(Var, Box<Skeleton>),
    /// Application.
    App(Box<Skeleton>, Box<Skeleton>),
}

/// Erase a System F term: drop `Λ`, type applications, and annotations.
pub fn erase_fterm(t: &FTerm) -> Skeleton {
    match t {
        FTerm::Var(x) => Skeleton::Var(*x),
        FTerm::Lit(l) => Skeleton::Lit(*l),
        FTerm::Lam(x, _, body) => Skeleton::Lam(*x, Box::new(erase_fterm(body))),
        FTerm::App(m, n) => Skeleton::App(Box::new(erase_fterm(m)), Box::new(erase_fterm(n))),
        FTerm::TyLam(_, body) => erase_fterm(body),
        FTerm::TyApp(m, _) => erase_fterm(m),
    }
}

/// Erase a FreezeML term to the same skeleton: freezing and type
/// applications vanish, annotations drop, and `let x = M in N` erases to
/// `(λx.N) M` — the image Figure 11 gives it.
pub fn erase_term(t: &Term) -> Skeleton {
    match t {
        Term::Var(x) | Term::FrozenVar(x) => Skeleton::Var(*x),
        Term::Lit(l) => Skeleton::Lit(*l),
        Term::Lam(x, body) | Term::LamAnn(x, _, body) => {
            Skeleton::Lam(*x, Box::new(erase_term(body)))
        }
        Term::App(m, n) => Skeleton::App(Box::new(erase_term(m)), Box::new(erase_term(n))),
        Term::TyApp(m, _) => erase_term(m),
        Term::Let(x, rhs, body) | Term::LetAnn(x, _, rhs, body) => Skeleton::App(
            Box::new(Skeleton::Lam(*x, Box::new(erase_term(body)))),
            Box::new(erase_term(rhs)),
        ),
    }
}
