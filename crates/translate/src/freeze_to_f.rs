//! `C⟦−⟧`: FreezeML → System F (Figure 11).
//!
//! The translation is defined on typing derivations; it consumes the
//! [`TypedTerm`] trees produced by inference:
//!
//! ```text
//! C⟦⌈x⌉⟧            = x
//! C⟦x (at δ, ∆′)⟧   = x δ(∆′)
//! C⟦λx.M⟧           = λx^S. C⟦M⟧
//! C⟦λ(x:A).M⟧       = λx^A. C⟦M⟧
//! C⟦M N⟧            = C⟦M⟧ C⟦N⟧
//! C⟦let x = M in N⟧ = let x^A = Λ∆′. C⟦M⟧ in C⟦N⟧
//! ```
//!
//! Derivations must be fully resolved before translation; any residual
//! flexible variables (e.g. the `a` in `λx.x : a → a`) are grounded to
//! `Int` by the [`elaborate`] driver so that the output typechecks in a
//! closed context.

use freezeml_core::{InferOutput, Type, TypedNode, TypedTerm};
use freezeml_systemf::FTerm;

/// The result of elaborating a FreezeML program into System F.
#[derive(Clone, Debug)]
pub struct Elaborated {
    /// The System F term (administratively reduced — see
    /// [`freeze_to_f_valuable`]).
    pub term: FTerm,
    /// Its type — equal to the FreezeML type of the source (Theorem 3),
    /// after grounding of residual flexible variables.
    pub ty: Type,
}

/// Elaborate an inference result into System F. Residual flexible
/// variables are grounded to `Int`, and administrative `let`-redexes are
/// reduced so the output satisfies System F's value restriction.
pub fn elaborate(out: &InferOutput) -> Elaborated {
    let mut typed = out.typed.clone();
    typed.default_residuals(&Type::int());
    Elaborated {
        term: freeze_to_f_valuable(&typed),
        ty: typed.ty.clone(),
    }
}

/// The literal Figure 11 translation. The derivation must be fully
/// resolved (no flexible variables).
pub fn freeze_to_f(typed: &TypedTerm) -> FTerm {
    match &typed.node {
        TypedNode::FrozenVar { name } => FTerm::Var(*name),
        TypedNode::Var { name, inst, .. } => {
            FTerm::tyapps(FTerm::Var(*name), inst.iter().map(|(_, t)| t.clone()))
        }
        TypedNode::Lit { lit } => FTerm::Lit(*lit),
        TypedNode::Lam {
            param,
            param_ty,
            body,
        } => FTerm::lam(*param, param_ty.clone(), freeze_to_f(body)),
        TypedNode::LamAnn { param, ann, body } => {
            FTerm::lam(*param, ann.clone(), freeze_to_f(body))
        }
        TypedNode::App { func, arg } => FTerm::app(freeze_to_f(func), freeze_to_f(arg)),
        TypedNode::TyApp { inner, arg, .. } => FTerm::tyapp(freeze_to_f(inner), arg.clone()),
        TypedNode::ImplicitInst { inner, inst } => {
            FTerm::tyapps(freeze_to_f(inner), inst.iter().map(|(_, t)| t.clone()))
        }
        TypedNode::Let {
            name,
            gen_vars,
            bound_ty,
            rhs,
            body,
            ..
        } => FTerm::let_(
            *name,
            bound_ty.clone(),
            FTerm::tylams(gen_vars.iter().cloned(), freeze_to_f(rhs)),
            freeze_to_f(body),
        ),
        TypedNode::LetAnn {
            name,
            ann,
            split_vars,
            rhs,
            body,
            ..
        } => FTerm::let_(
            *name,
            ann.clone(),
            FTerm::tylams(split_vars.iter().cloned(), freeze_to_f(rhs)),
            freeze_to_f(body),
        ),
    }
}

/// Figure 11 followed by administrative reduction of `let`-redexes whose
/// right-hand side is already a value — the repair described in the crate
/// docs. The reduction ([`admin_reduce`]) is plain β (type- and
/// semantics-preserving); it now lives in `freezeml_systemf` so the
/// engine-native elaboration pipeline shares it.
pub fn freeze_to_f_valuable(typed: &TypedTerm) -> FTerm {
    admin_reduce(&freeze_to_f(typed))
}

pub use freezeml_systemf::admin_reduce;

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::{infer_term, parse_term, KindEnv, Options, TypeEnv, Var};
    use freezeml_systemf::typecheck;

    fn env() -> TypeEnv {
        freezeml_corpus::figure2()
    }

    fn elaborate_src(src: &str) -> (FTerm, Type) {
        let term = parse_term(src).unwrap();
        let out = infer_term(&env(), &term, &Options::default()).unwrap();
        let e = elaborate(&out);
        (e.term, e.ty)
    }

    fn check_preserves(src: &str) {
        let (f, ty) = elaborate_src(src);
        let fty = typecheck(&KindEnv::new(), &env(), &f)
            .unwrap_or_else(|e| panic!("C⟦{src}⟧ ill-typed: {e}\n  {f}"));
        assert!(
            fty.alpha_eq(&ty),
            "type not preserved for `{src}`: {fty} vs {ty}"
        );
    }

    #[test]
    fn theorem3_on_representative_programs() {
        for src in [
            "~id",
            "id",
            "choose id",
            "choose ~id",
            "poly ~id",
            "poly $(fun x -> x)",
            "single ~id",
            "fun (x : forall a. a -> a) -> x ~x",
            "let f = fun x -> x in poly ~f",
            "let (f : Int -> Int) = fun x -> x in f 3",
            "(head ids)@ 3",
            "runST ~argST",
            "auto ~id",
        ] {
            check_preserves(src);
        }
    }

    #[test]
    fn frozen_var_translates_to_plain_var() {
        let (f, _) = elaborate_src("~id");
        assert_eq!(f, FTerm::var("id"));
    }

    #[test]
    fn plain_var_translates_to_type_application() {
        let (f, _) = elaborate_src("id");
        // id [Int] after grounding of the residual instantiation variable.
        assert_eq!(f, FTerm::tyapp(FTerm::var("id"), Type::int()));
    }

    #[test]
    fn generalising_let_produces_tylam() {
        let (f, ty) = elaborate_src("$(fun x -> x)");
        assert!(ty.alpha_eq(&freezeml_core::parse_type("forall a. a -> a").unwrap()));
        // let x^∀a.a→a = Λa.λx:a.x in x — after admin reduction just the Λ.
        assert!(matches!(f, FTerm::TyLam(_, _)), "got {f}");
    }

    #[test]
    fn nested_let_values_satisfy_the_value_restriction() {
        // The Theorem 3 repair: generalising over a let-value.
        let src = "let g = (let y = fun x -> x in y) in poly ~g";
        let term = parse_term(src).unwrap();
        let out = infer_term(&env(), &term, &Options::default()).unwrap();
        // The literal Figure 11 image violates the value restriction...
        let mut typed = out.typed.clone();
        typed.default_residuals(&Type::int());
        let literal = freeze_to_f(&typed);
        assert!(
            typecheck(&KindEnv::new(), &env(), &literal).is_err(),
            "expected the literal translation to trip the value restriction"
        );
        // ...and the administratively reduced image repairs it.
        let e = elaborate(&out);
        let fty = typecheck(&KindEnv::new(), &env(), &e.term).unwrap();
        assert!(fty.alpha_eq(&e.ty));
    }

    #[test]
    fn admin_reduce_is_capture_avoiding() {
        // (λx. λy. x) y  — substituting y for x must not capture.
        let inner = FTerm::lam(
            "x",
            Type::int(),
            FTerm::lam("y", Type::int(), FTerm::var("x")),
        );
        let t = FTerm::app(inner, FTerm::var("y"));
        let r = admin_reduce(&t);
        match r {
            FTerm::Lam(param, _, body) => {
                assert_ne!(param, Var::named("y"));
                assert_eq!(*body, FTerm::var("y"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn translated_programs_evaluate() {
        use freezeml_systemf::{eval, prelude::runtime_env, Value};
        let (f, _) = elaborate_src("poly $(fun x -> x)");
        let v = eval(&runtime_env(), &f).unwrap();
        assert_eq!(
            v,
            Value::Pair(Box::new(Value::Int(42)), Box::new(Value::Bool(true)))
        );
        let (f2, _) = elaborate_src("(head ids)@ 3");
        assert_eq!(eval(&runtime_env(), &f2).unwrap(), Value::Int(3));
    }
}
