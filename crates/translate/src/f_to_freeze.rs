//! `E⟦−⟧`: System F → FreezeML (Figure 10).
//!
//! ```text
//! E⟦x⟧        = ⌈x⌉
//! E⟦λx^A.M⟧   = λ(x : A). E⟦M⟧
//! E⟦M N⟧      = E⟦M⟧ E⟦N⟧
//! E⟦Λa.V⟧     = let (x : ∀a.B) = (E⟦V⟧)@ in ⌈x⌉     where V : B
//! E⟦M A⟧      = let (x : B[A/a]) = (E⟦M⟧)@ in ⌈x⌉   where M : ∀a.B
//! ```
//!
//! The translation is type-directed (it needs the types of `Λ`/type-
//! application subterms), so it runs the System F typechecker as it goes.
//! The explicit instantiation `(E⟦V⟧)@` is necessary: binding `E⟦V⟧`
//! directly would freeze a possibly-unguarded value whose type cannot then
//! be re-generalised (§4.1 discusses the failed simpler translation).

use freezeml_core::{KindEnv, Term, TyVar, Type, TypeEnv, Var};
use freezeml_systemf::{typecheck, FTerm, FTypeError};

/// Translate a System F term into FreezeML (Theorem 2: type-preserving).
///
/// Every `Λ`-binder is freshened on the way in (the paper's implicit
/// α-convention): FreezeML's scoped type variables require the top-level
/// binders of nested `let` annotations to be pairwise distinct, and the
/// translation of nested `Λa.Λb.…` would otherwise re-bind the outer
/// annotation's variables.
///
/// # Errors
///
/// [`FTypeError`] if the input is not well-typed — the translation is only
/// defined on typing derivations.
pub fn f_to_freeze(delta: &KindEnv, gamma: &TypeEnv, term: &FTerm) -> Result<Term, FTypeError> {
    // The translation is defined on derivations: validate up front.
    typecheck(delta, gamma, term)?;
    go(delta, gamma, term)
}

fn go(delta: &KindEnv, gamma: &TypeEnv, term: &FTerm) -> Result<Term, FTypeError> {
    match term {
        FTerm::Var(x) => Ok(Term::FrozenVar(*x)),
        FTerm::Lit(l) => Ok(Term::Lit(*l)),
        FTerm::Lam(x, ann, body) => {
            let g2 = gamma.extended(*x, ann.clone());
            Ok(Term::lam_ann(*x, ann.clone(), go(delta, &g2, body)?))
        }
        FTerm::App(m, n) => Ok(Term::app(go(delta, gamma, m)?, go(delta, gamma, n)?)),
        FTerm::TyLam(a, v) => {
            // α-freshen the binder (see function docs).
            let c = TyVar::fresh();
            let v2 = rename_tyvar(v, a, &c);
            let delta2 = delta
                .extended([c])
                .expect("fresh type variable cannot clash");
            let b = typecheck(&delta2, gamma, &v2)?;
            let ann = Type::Forall(c, Box::new(b));
            let x = Var::fresh();
            Ok(Term::let_ann(
                x,
                ann,
                Term::inst(go(&delta2, gamma, &v2)?),
                Term::FrozenVar(x),
            ))
        }
        FTerm::TyApp(m, ty) => {
            let mty = typecheck(delta, gamma, m)?;
            match mty {
                Type::Forall(a, body) => {
                    let ann = body.rename_free(&a, ty);
                    let x = Var::fresh();
                    Ok(Term::let_ann(
                        x,
                        ann,
                        Term::inst(go(delta, gamma, m)?),
                        Term::FrozenVar(x),
                    ))
                }
                other => Err(FTypeError::NotAForall(other)),
            }
        }
    }
}

/// Rename a rigid type variable throughout a term's annotations,
/// respecting term-level `Λ` shadowing.
fn rename_tyvar(t: &FTerm, from: &TyVar, to: &TyVar) -> FTerm {
    match t {
        FTerm::Var(_) | FTerm::Lit(_) => t.clone(),
        FTerm::Lam(x, a, b) => FTerm::Lam(
            *x,
            a.rename_free(from, &Type::Var(*to)),
            Box::new(rename_tyvar(b, from, to)),
        ),
        FTerm::App(m, n) => FTerm::app(rename_tyvar(m, from, to), rename_tyvar(n, from, to)),
        FTerm::TyLam(a, b) => {
            if a == from {
                t.clone() // shadowed
            } else {
                FTerm::TyLam(*a, Box::new(rename_tyvar(b, from, to)))
            }
        }
        FTerm::TyApp(m, ty) => FTerm::TyApp(
            Box::new(rename_tyvar(m, from, to)),
            ty.rename_free(from, &Type::Var(*to)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::{infer, Options, RefinedEnv};

    fn env() -> TypeEnv {
        freezeml_corpus::figure2()
    }

    /// Theorem 2 harness: F-typecheck, translate, FreezeML-infer, compare.
    fn check_preserves(f: &FTerm) {
        let delta = KindEnv::new();
        let fty = typecheck(&delta, &env(), f).expect("input must be F-typed");
        let frz = f_to_freeze(&delta, &env(), f).unwrap();
        let (theta, subst, ty, _) = infer(
            &delta,
            &RefinedEnv::new(),
            &env(),
            &frz,
            &Options::default(),
        )
        .unwrap_or_else(|e| panic!("E⟦{f}⟧ = {frz} did not infer: {e}"));
        let _ = theta;
        let resolved = subst.apply(&ty);
        assert!(
            resolved.alpha_eq(&fty),
            "type not preserved for {f}: FreezeML {resolved} vs F {fty}"
        );
    }

    fn id_term() -> FTerm {
        FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")))
    }

    #[test]
    fn variables_become_frozen() {
        let f = FTerm::var("id");
        let t = f_to_freeze(&KindEnv::new(), &env(), &f).unwrap();
        assert_eq!(t, Term::frozen("id"));
        check_preserves(&f);
    }

    #[test]
    fn theorem2_on_type_abstraction() {
        check_preserves(&id_term());
    }

    #[test]
    fn theorem2_on_type_application() {
        check_preserves(&FTerm::tyapp(id_term(), Type::int()));
        // Impredicative instantiation.
        let poly = freezeml_core::parse_type("forall a. a -> a").unwrap();
        check_preserves(&FTerm::tyapp(id_term(), poly));
        // Instantiation of a prelude constant.
        check_preserves(&FTerm::tyapp(FTerm::var("id"), Type::bool()));
    }

    #[test]
    fn theorem2_on_applications() {
        // auto id? In F: auto (id) needs id at the polytype — auto expects
        // ∀a.a→a, id : ∀a.a→a, direct application is fine in F.
        check_preserves(&FTerm::app(FTerm::var("auto"), FTerm::var("id")));
        // poly id.
        check_preserves(&FTerm::app(FTerm::var("poly"), FTerm::var("id")));
        // id [Int] 42.
        check_preserves(&FTerm::app(
            FTerm::tyapp(FTerm::var("id"), Type::int()),
            FTerm::int(42),
        ));
    }

    #[test]
    fn theorem2_on_nested_tylams() {
        // Λa.Λb. λ(f : a→b). λ(x : a). f x  :  ∀a b. (a→b) → a → b
        let t = FTerm::tylams(
            [
                freezeml_core::TyVar::named("a"),
                freezeml_core::TyVar::named("b"),
            ],
            FTerm::lam(
                "f",
                Type::arrow(Type::var("a"), Type::var("b")),
                FTerm::lam(
                    "x",
                    Type::var("a"),
                    FTerm::app(FTerm::var("f"), FTerm::var("x")),
                ),
            ),
        );
        check_preserves(&t);
    }

    #[test]
    fn appendix_d_round_trip() {
        // let app = λf.λz.f z in app ⌈auto⌉ ⌈id⌉ — its C-image from
        // Appendix D, translated back with E, must still have type ∀a.a→a.
        let app_ty = freezeml_core::parse_type("forall a b. (a -> b) -> a -> b").unwrap();
        let id_ty = freezeml_core::parse_type("forall a. a -> a").unwrap();
        let app_impl = FTerm::tylams(
            [
                freezeml_core::TyVar::named("a"),
                freezeml_core::TyVar::named("b"),
            ],
            FTerm::lam(
                "f",
                Type::arrow(Type::var("a"), Type::var("b")),
                FTerm::lam(
                    "z",
                    Type::var("a"),
                    FTerm::app(FTerm::var("f"), FTerm::var("z")),
                ),
            ),
        );
        let body = FTerm::apps(
            FTerm::tyapps(FTerm::var("app"), [id_ty.clone(), id_ty]),
            [FTerm::var("auto"), FTerm::var("id")],
        );
        let whole = FTerm::app(FTerm::lam("app", app_ty, body), app_impl);
        check_preserves(&whole);
    }

    #[test]
    fn ill_typed_input_is_rejected() {
        let bad = FTerm::app(FTerm::int(1), FTerm::int(2));
        assert!(f_to_freeze(&KindEnv::new(), &env(), &bad).is_err());
    }

    #[test]
    fn round_trip_f_to_freeze_to_f() {
        // E then C: types must survive the full round trip.
        let delta = KindEnv::new();
        for f in [
            id_term(),
            FTerm::tyapp(FTerm::var("id"), Type::int()),
            FTerm::app(FTerm::var("poly"), FTerm::var("id")),
        ] {
            let fty = typecheck(&delta, &env(), &f).unwrap();
            let frz = f_to_freeze(&delta, &env(), &f).unwrap();
            let out = freezeml_core::infer_term(&env(), &frz, &Options::default()).unwrap();
            let e = crate::freeze_to_f::elaborate(&out);
            let back_ty = typecheck(&delta, &env(), &e.term).unwrap();
            assert!(
                back_ty.alpha_eq(&fty),
                "round trip changed {fty} to {back_ty} for {f}"
            );
        }
    }
}
