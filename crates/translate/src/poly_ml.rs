//! The FreezeML → Poly-ML translation (paper Appendix E).
//!
//! Poly-ML (Garrigue & Rémy 1999) distinguishes ML type schemes from
//! *boxed* polymorphic types `[σ]ε`; boxed terms must be explicitly
//! `⟨opened⟩`. Appendix E shows FreezeML embeds into (a lightly extended)
//! Poly-ML **without inserting any new type annotations**, which is the
//! paper's argument that FreezeML matches Poly-ML's expressiveness with
//! lighter syntax:
//!
//! ```text
//! ⟦a⟧τ        = a
//! ⟦A₁ → A₂⟧τ  = ⟦A₁⟧τ → ⟦A₂⟧τ
//! ⟦∀∆.H⟧τ     = [∀∆.⟦H⟧τ]ε          (∆ ≠ ·)   — boxed
//! ⟦∀∆.H⟧σ     = ∀∆.⟦H⟧τ             (∆ ≠ ·)   — top level stays unboxed
//!
//! ⟦⌈x⌉⟧       = x
//! ⟦x⟧         = x   if the occurrence instantiates nothing, else ⟨x⟩
//! ⟦λx.M⟧      = λx.⟦M⟧
//! ⟦λ(x:A).M⟧  = λ(x : ⟦A⟧τ).⟦M⟧
//! ⟦let x = M in N⟧ = let x = [⟦M⟧ : ⟦A⟧σ] in ⟦N⟧   if generalising
//!                  = let x = ⟦M⟧ in ⟦N⟧            otherwise
//! ```
//!
//! We implement the translation on [`TypedTerm`] derivations and verify its
//! *structural* properties (where boxes and openings appear). Lemma E.1's
//! type preservation into Poly-ML's own label-based type system would
//! require implementing Garrigue–Rémy's checker, which is out of scope —
//! recorded as a substitution in `DESIGN.md`.

use freezeml_core::{Lit, TyCon, TyVar, Type, TypedNode, TypedTerm, Var};
use std::fmt;

/// A Poly-ML type: ML structure plus boxed polymorphic types.
#[derive(Clone, Debug, PartialEq)]
pub enum PmlType {
    /// A type variable.
    Var(TyVar),
    /// A constructor application (including `→`).
    Con(TyCon, Vec<PmlType>),
    /// A boxed polymorphic type `[∀∆.τ]ε` (the label `ε` is fixed, as in
    /// Appendix E).
    Boxed(Vec<TyVar>, Box<PmlType>),
    /// A top-level type scheme `∀∆.τ` (the image of `⟦−⟧σ`; only ever at
    /// the top of an annotation).
    Scheme(Vec<TyVar>, Box<PmlType>),
}

impl PmlType {
    /// Count the boxes in the type.
    pub fn box_count(&self) -> usize {
        match self {
            PmlType::Var(_) => 0,
            PmlType::Con(_, args) => args.iter().map(PmlType::box_count).sum(),
            PmlType::Boxed(_, inner) => 1 + inner.box_count(),
            PmlType::Scheme(_, inner) => inner.box_count(),
        }
    }
}

impl fmt::Display for PmlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmlType::Var(a) => write!(f, "{a}"),
            PmlType::Con(TyCon::Arrow, args) => {
                write!(f, "({} -> {})", args[0], args[1])
            }
            PmlType::Con(c, args) if args.is_empty() => write!(f, "{c}"),
            PmlType::Con(c, args) => {
                write!(f, "({c}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            PmlType::Boxed(vars, inner) => {
                write!(f, "[forall")?;
                for v in vars {
                    write!(f, " {v}")?;
                }
                write!(f, ". {inner}]e")
            }
            PmlType::Scheme(vars, inner) => {
                write!(f, "forall")?;
                for v in vars {
                    write!(f, " {v}")?;
                }
                write!(f, ". {inner}")
            }
        }
    }
}

/// A Poly-ML term.
#[derive(Clone, Debug, PartialEq)]
pub enum PmlTerm {
    /// A variable used at its scheme (or monomorphic) type.
    Var(Var),
    /// An *opened* variable `⟨x⟩` — explicit unboxing/instantiation.
    Open(Var),
    /// `λx.M`, optionally with a (translated) annotation.
    Lam(Var, Option<PmlType>, Box<PmlTerm>),
    /// Application.
    App(Box<PmlTerm>, Box<PmlTerm>),
    /// `let x = M in N`.
    Let(Var, Box<PmlTerm>, Box<PmlTerm>),
    /// A boxing annotation `[M : σ]`.
    BoxAnn(Box<PmlTerm>, PmlType),
    /// A literal.
    Lit(Lit),
}

impl PmlTerm {
    /// Count `⟨−⟩` openings.
    pub fn open_count(&self) -> usize {
        match self {
            PmlTerm::Var(_) | PmlTerm::Lit(_) => 0,
            PmlTerm::Open(_) => 1,
            PmlTerm::Lam(_, _, b) => b.open_count(),
            PmlTerm::App(m, n) => m.open_count() + n.open_count(),
            PmlTerm::Let(_, r, b) => r.open_count() + b.open_count(),
            PmlTerm::BoxAnn(m, _) => m.open_count(),
        }
    }

    /// Count `[− : σ]` boxing annotations.
    pub fn box_ann_count(&self) -> usize {
        match self {
            PmlTerm::Var(_) | PmlTerm::Open(_) | PmlTerm::Lit(_) => 0,
            PmlTerm::Lam(_, _, b) => b.box_ann_count(),
            PmlTerm::App(m, n) => m.box_ann_count() + n.box_ann_count(),
            PmlTerm::Let(_, r, b) => r.box_ann_count() + b.box_ann_count(),
            PmlTerm::BoxAnn(m, _) => 1 + m.box_ann_count(),
        }
    }

    /// Count explicit *type* annotations (λ-annotations and boxings) — the
    /// quantity Appendix E argues stays at zero for new annotations.
    pub fn annotation_count(&self) -> usize {
        match self {
            PmlTerm::Var(_) | PmlTerm::Open(_) | PmlTerm::Lit(_) => 0,
            PmlTerm::Lam(_, ann, b) => usize::from(ann.is_some()) + b.annotation_count(),
            PmlTerm::App(m, n) => m.annotation_count() + n.annotation_count(),
            PmlTerm::Let(_, r, b) => r.annotation_count() + b.annotation_count(),
            PmlTerm::BoxAnn(m, _) => 1 + m.annotation_count(),
        }
    }
}

impl fmt::Display for PmlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmlTerm::Var(x) => write!(f, "{x}"),
            PmlTerm::Open(x) => write!(f, "<{x}>"),
            PmlTerm::Lam(x, None, b) => write!(f, "(fun {x} -> {b})"),
            PmlTerm::Lam(x, Some(t), b) => write!(f, "(fun ({x} : {t}) -> {b})"),
            PmlTerm::App(m, n) => write!(f, "({m} {n})"),
            PmlTerm::Let(x, r, b) => write!(f, "(let {x} = {r} in {b})"),
            PmlTerm::BoxAnn(m, t) => write!(f, "[{m} : {t}]"),
            PmlTerm::Lit(l) => write!(f, "{l}"),
        }
    }
}

/// An error from the Poly-ML translation.
#[derive(Clone, Debug, PartialEq)]
pub enum PmlError {
    /// The derivation uses an extension form (explicit type application or
    /// eliminator instantiation) that Appendix E does not cover.
    UnsupportedExtension(&'static str),
}

impl fmt::Display for PmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmlError::UnsupportedExtension(what) => {
                write!(f, "the Poly-ML translation does not cover {what}")
            }
        }
    }
}

impl std::error::Error for PmlError {}

/// `⟦A⟧τ` — box every quantifier group.
pub fn type_to_pml(ty: &Type) -> PmlType {
    match ty {
        Type::Var(a) => PmlType::Var(*a),
        Type::Con(c, args) => PmlType::Con(*c, args.iter().map(type_to_pml).collect()),
        Type::Forall(_, _) => {
            let (vars, body) = ty.split_foralls();
            PmlType::Boxed(vars, Box::new(type_to_pml(body)))
        }
    }
}

/// `⟦A⟧σ` — like `⟦−⟧τ` but the *top-level* quantifiers stay unboxed.
pub fn scheme_to_pml(ty: &Type) -> PmlType {
    let (vars, body) = ty.split_foralls();
    if vars.is_empty() {
        type_to_pml(ty)
    } else {
        PmlType::Scheme(vars, Box::new(type_to_pml(body)))
    }
}

/// `⟦−⟧` on typing derivations (Appendix E, "Terms").
///
/// # Errors
///
/// [`PmlError::UnsupportedExtension`] on `M@[A]` / eliminator-instantiation
/// nodes, which Appendix E does not treat.
pub fn freeze_to_poly_ml(typed: &TypedTerm) -> Result<PmlTerm, PmlError> {
    match &typed.node {
        TypedNode::FrozenVar { name } => Ok(PmlTerm::Var(*name)),
        TypedNode::Var { name, inst, .. } => {
            if inst.is_empty() {
                Ok(PmlTerm::Var(*name))
            } else {
                Ok(PmlTerm::Open(*name))
            }
        }
        TypedNode::Lit { lit } => Ok(PmlTerm::Lit(*lit)),
        TypedNode::Lam { param, body, .. } => Ok(PmlTerm::Lam(
            *param,
            None,
            Box::new(freeze_to_poly_ml(body)?),
        )),
        TypedNode::LamAnn { param, ann, body } => Ok(PmlTerm::Lam(
            *param,
            Some(type_to_pml(ann)),
            Box::new(freeze_to_poly_ml(body)?),
        )),
        TypedNode::App { func, arg } => Ok(PmlTerm::App(
            Box::new(freeze_to_poly_ml(func)?),
            Box::new(freeze_to_poly_ml(arg)?),
        )),
        TypedNode::Let {
            name,
            gen_vars,
            bound_ty,
            rhs,
            body,
            ..
        } => {
            let rhs_pml = freeze_to_poly_ml(rhs)?;
            let rhs_pml = if gen_vars.is_empty() {
                rhs_pml
            } else {
                // Generalising let: box at the let-bound scheme. (The note
                // in Appendix E: with a principal-type boxing operator the
                // annotation could be omitted; we keep it, as the paper's
                // translation does.)
                PmlTerm::BoxAnn(Box::new(rhs_pml), scheme_to_pml(bound_ty))
            };
            Ok(PmlTerm::Let(
                *name,
                Box::new(rhs_pml),
                Box::new(freeze_to_poly_ml(body)?),
            ))
        }
        TypedNode::LetAnn {
            name,
            ann,
            split_vars,
            rhs,
            body,
            ..
        } => {
            let rhs_pml = freeze_to_poly_ml(rhs)?;
            let rhs_pml = if split_vars.is_empty() {
                rhs_pml
            } else {
                PmlTerm::BoxAnn(Box::new(rhs_pml), scheme_to_pml(ann))
            };
            Ok(PmlTerm::Let(
                *name,
                Box::new(rhs_pml),
                Box::new(freeze_to_poly_ml(body)?),
            ))
        }
        TypedNode::TyApp { .. } => Err(PmlError::UnsupportedExtension(
            "explicit type application (§6 extension)",
        )),
        TypedNode::ImplicitInst { .. } => Err(PmlError::UnsupportedExtension(
            "eliminator instantiation (§3.2 extension)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::{infer_term, parse_term, parse_type, Options};

    fn translate(src: &str) -> PmlTerm {
        let env = freezeml_corpus::figure2();
        let term = parse_term(src).unwrap();
        let out = infer_term(&env, &term, &Options::default()).unwrap();
        freeze_to_poly_ml(&out.typed).unwrap()
    }

    #[test]
    fn types_box_nested_quantifiers_only() {
        // ⟦List (∀a.a→a)⟧τ has one box; ⟦∀a. List (∀b.b→b) → a⟧σ keeps the
        // top level unboxed and boxes the inner group.
        let t = parse_type("List (forall a. a -> a)").unwrap();
        assert_eq!(type_to_pml(&t).box_count(), 1);
        let s = parse_type("forall a. List (forall b. b -> b) -> a").unwrap();
        let pml = scheme_to_pml(&s);
        assert_eq!(pml.box_count(), 1);
        assert!(matches!(pml, PmlType::Scheme(_, _)));
        // Whereas ⟦−⟧τ of the same type boxes both groups.
        assert_eq!(type_to_pml(&s).box_count(), 2);
    }

    #[test]
    fn monotypes_have_no_boxes() {
        let t = parse_type("Int -> List Bool * Int").unwrap();
        assert_eq!(type_to_pml(&t).box_count(), 0);
    }

    #[test]
    fn frozen_variables_stay_plain() {
        // ⟦⌈id⌉⟧ = id — no opening.
        let p = translate("~id");
        assert_eq!(p, PmlTerm::Var(Var::named("id")));
    }

    #[test]
    fn instantiating_occurrences_open() {
        // ⟦id⟧ = ⟨id⟩ — the occurrence instantiates a quantifier.
        let p = translate("id");
        assert_eq!(p, PmlTerm::Open(Var::named("id")));
        // Monomorphic variables don't open.
        let p2 = translate("inc");
        assert_eq!(p2, PmlTerm::Var(Var::named("inc")));
    }

    #[test]
    fn generalising_lets_box() {
        // let f = λx.x in poly ⌈f⌉ — the let generalises, so its rhs boxes
        // at the scheme ∀a.a→a.
        let p = translate("let f = fun x -> x in poly ~f");
        assert_eq!(p.box_ann_count(), 1);
        match &p {
            PmlTerm::Let(_, rhs, _) => match rhs.as_ref() {
                PmlTerm::BoxAnn(_, t) => {
                    assert!(matches!(t, PmlType::Scheme(vars, _) if vars.len() == 1))
                }
                other => panic!("expected a boxing, got {other}"),
            },
            other => panic!("expected a let, got {other}"),
        }
    }

    #[test]
    fn non_generalising_lets_do_not_box() {
        // F9: let f = revapp ⌈id⌉ in f poly — no generalisation, no box.
        let p = translate("let f = revapp ~id in f poly");
        assert_eq!(p.box_ann_count(), 0);
    }

    #[test]
    fn no_new_type_annotations_beyond_boxings() {
        // The point of Appendix E: translating unannotated FreezeML inserts
        // no λ-annotations; the only annotations are the let-boxings (which
        // a principal-type boxing operator could drop).
        for src in [
            "choose ~id",
            "poly $(fun x -> x)",
            "(head ids)@ 3",
            "single ~id",
        ] {
            let p = translate(src);
            assert_eq!(
                p.annotation_count(),
                p.box_ann_count(),
                "{src} produced a non-boxing annotation: {p}"
            );
        }
    }

    #[test]
    fn lambda_annotations_are_translated() {
        let p = translate("fun (x : forall a. a -> a) -> x ~x");
        match &p {
            PmlTerm::Lam(_, Some(t), _) => {
                assert!(matches!(t, PmlType::Boxed(_, _)), "got {t}")
            }
            other => panic!("expected annotated λ, got {other}"),
        }
    }

    #[test]
    fn extension_nodes_are_rejected() {
        let env = freezeml_corpus::figure2();
        let term = parse_term("~id@[Int]").unwrap();
        let out = infer_term(&env, &term, &Options::default()).unwrap();
        assert!(matches!(
            freeze_to_poly_ml(&out.typed),
            Err(PmlError::UnsupportedExtension(_))
        ));
    }

    #[test]
    fn display_is_readable() {
        let p = translate("poly ~id");
        assert_eq!(p.to_string(), "(poly id)");
        let p2 = translate("id 3");
        assert_eq!(p2.to_string(), "(<id> 3)");
    }
}
