//! Run `.fml` conformance cases through the real checker, render readable
//! diffs on mismatch, and bless expectations in place.
//!
//! The entry points are [`run_dir`] (check every `.fml` file in a
//! directory), [`bless_dir`] (rewrite golden expectations from actual
//! checker output, the `UPDATE_EXPECT=1` path), and [`check_or_bless`]
//! (dispatch on the environment variable, for use from tests).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::format::{self, Case, CaseFile, Expectation, FormatError, Mode};
use freezeml_core::{infer_program, parse_type, Options, Type, TypeEnv};
use freezeml_corpus::figure2;
use freezeml_engine::differential;

/// Which inference engine(s) the runner drives.
///
/// Selected by the `ENGINE` environment variable: `core` (the
/// paper-literal Figure 15–16 engine), `uf` (the union-find engine), or
/// `both` (the default — run the union-find engine against the oracle and
/// fail any case on which they disagree, so `cargo test -q` exercises the
/// new engine on every golden file).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Paper-literal engine only.
    Core,
    /// Union-find engine only.
    Uf,
    /// Both, with an agreement obligation per case.
    #[default]
    Both,
}

impl Engine {
    /// Read the selection from `ENGINE` (defaults to [`Engine::Both`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelt selector silently
    /// running the wrong engine would defeat the differential harness.
    pub fn from_env() -> Engine {
        match std::env::var("ENGINE") {
            Err(_) => Engine::default(),
            Ok(v) => match v.as_str() {
                "core" => Engine::Core,
                "uf" => Engine::Uf,
                "both" | "" => Engine::Both,
                other => panic!("ENGINE must be core|uf|both, got `{other}`"),
            },
        }
    }
}

/// What the checker actually produced for a case.
#[derive(Clone, Debug)]
pub enum Actual {
    /// Inference succeeded with this type.
    Type(Type),
    /// Inference failed; the rendered error.
    Error(String),
    /// The case could not even be set up (bad `env:` binding, unparsable
    /// golden type, …).
    Invalid(String),
}

impl Actual {
    /// Render the way Figure 1 renders outcomes (`✕`-style errors get
    /// their message).
    pub fn display(&self) -> String {
        match self {
            Actual::Type(t) => t.to_string(),
            Actual::Error(e) => format!("✕ ({e})"),
            Actual::Invalid(e) => format!("invalid case: {e}"),
        }
    }

    /// The directive line bless mode writes for this outcome.
    fn bless_directive(&self) -> Option<String> {
        match self {
            Actual::Type(t) => Some(format!("expect: {}", t.canonicalize())),
            Actual::Error(e) => Some(format!("expect-error: {e}")),
            Actual::Invalid(_) => None,
        }
    }
}

/// The verdict on one case (or one `differs-from` obligation).
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case name, or `A ≠ B` for a distinctness obligation.
    pub name: String,
    /// File the case came from.
    pub path: PathBuf,
    /// 1-based line of the case header.
    pub line: usize,
    /// Did the case meet its expectation?
    pub pass: bool,
    /// Readable explanation when `pass` is false.
    pub diff: Option<String>,
}

/// The verdict on a whole suite of files.
#[derive(Clone, Debug, Default)]
pub struct SuiteOutcome {
    /// Every case and distinctness verdict, in file order.
    pub outcomes: Vec<CaseOutcome>,
}

impl SuiteOutcome {
    pub fn passed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.pass).count()
    }

    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.passed()
    }

    pub fn all_pass(&self) -> bool {
        self.failed() == 0
    }

    /// Names of the plain cases (distinctness obligations excluded).
    pub fn case_names(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.name.contains('≠'))
            .map(|o| o.name.as_str())
            .collect()
    }

    /// The failure report: every failing case's diff, ready to panic with.
    pub fn render_failures(&self) -> String {
        let mut out = String::new();
        for o in self.outcomes.iter().filter(|o| !o.pass) {
            if let Some(diff) = &o.diff {
                out.push_str(diff);
                out.push('\n');
            }
        }
        if !out.is_empty() {
            out.push_str(&format!(
                "{} of {} conformance checks failed; \
                 bless intended changes with UPDATE_EXPECT=1\n",
                self.failed(),
                self.outcomes.len(),
            ));
        }
        out
    }
}

/// Build the environment for a case: Figure 2 plus its `env:` bindings.
pub(crate) fn case_env(case: &Case) -> Result<TypeEnv, String> {
    let mut env = figure2();
    for (name, ty) in &case.env {
        env.push_str(name, ty)
            .map_err(|e| format!("env binding `{name} : {ty}` does not parse: {e}"))?;
    }
    Ok(env)
}

pub(crate) fn case_options(case: &Case) -> Options {
    match case.mode {
        Mode::Standard => Options::default(),
        Mode::Pure => Options::pure_freezeml(),
    }
}

/// Run inference for a case with the engine selected by `ENGINE`,
/// independent of its expectation.
pub fn infer_case(case: &Case) -> Actual {
    infer_case_with(case, Engine::from_env())
}

/// Run inference for a case on a specific engine. In [`Engine::Both`]
/// mode the union-find engine must agree with the oracle (α-equivalent
/// type, or same error class); a disagreement renders the case invalid,
/// which fails it with a readable diff naming both verdicts.
pub fn infer_case_with(case: &Case, engine: Engine) -> Actual {
    let env = match case_env(case) {
        Ok(env) => env,
        Err(e) => return Actual::Invalid(e),
    };
    let opts = case_options(case);
    let to_actual = |r: Result<Type, freezeml_core::ProgramError>| match r {
        Ok(ty) => Actual::Type(ty),
        Err(e) => Actual::Error(e.to_string()),
    };
    match engine {
        Engine::Core => to_actual(infer_program(&env, &case.program, &opts)),
        Engine::Uf => to_actual(freezeml_engine::infer_program(&env, &case.program, &opts)),
        Engine::Both => match differential::compare_program(&env, &case.program, &opts) {
            // Expectations (golden types and error wording) are checked
            // against the oracle's output.
            Ok(oracle) => to_actual(oracle),
            Err(d) => Actual::Invalid(format!(
                "engines disagree: core gave {}, union-find gave {}",
                d.core, d.uf
            )),
        },
    }
}

/// A `-`/`+` two-liner for the readable part of a failing diff.
fn render_diff(case: &Case, path: &Path, expected: &str, actual: &Actual, note: &str) -> String {
    let mut s = format!(
        "✗ {} — {}:{}\n    program    {}\n",
        case.name,
        path.display(),
        case.header_line,
        case.program
    );
    if case.mode == Mode::Pure {
        s.push_str("    mode       pure\n");
    }
    for (name, ty) in &case.env {
        s.push_str(&format!("    env        {name} : {ty}\n"));
    }
    s.push_str(&format!("  - expected   {expected}\n"));
    s.push_str(&format!("  + actual     {}\n", actual.display()));
    if !note.is_empty() {
        s.push_str(&format!("    note       {note}\n"));
    }
    s
}

/// Check one case against its expectation, plus — for cases that infer
/// a type — the elaborate obligations (System F oracle, cross-engine
/// evidence agreement, and the `expect-f:` golden when present; see
/// [`crate::elab`]).
pub fn run_case(case: &Case, path: &Path) -> (CaseOutcome, Actual) {
    let actual = infer_case(case);
    let (pass, diff) = expectation_verdict(case, path, &actual);
    let (pass, diff) = if pass {
        elaboration_verdict(case, path, &actual)
    } else {
        (pass, diff)
    };
    (
        CaseOutcome {
            name: case.name.clone(),
            path: path.to_owned(),
            line: case.header_line,
            pass,
            diff,
        },
        actual,
    )
}

/// The original golden machinery: does the inference outcome meet the
/// case's `expect:`/`expect-error:` expectation?
fn expectation_verdict(case: &Case, path: &Path, actual: &Actual) -> (bool, Option<String>) {
    match (&case.expectation, actual) {
        (_, Actual::Invalid(msg)) => (
            false,
            Some(render_diff(case, path, "a well-formed case", actual, msg)),
        ),
        (Expectation::Type(want_src), _) => match parse_type(want_src) {
            Err(e) => (
                false,
                Some(render_diff(
                    case,
                    path,
                    want_src,
                    actual,
                    &format!("golden type does not parse: {e}"),
                )),
            ),
            Ok(want) => match actual {
                Actual::Type(got) if got.alpha_eq(&want) => (true, None),
                _ => (
                    false,
                    Some(render_diff(
                        case,
                        path,
                        want_src,
                        actual,
                        "types compared up to α-equivalence",
                    )),
                ),
            },
        },
        (Expectation::ErrorContains(needle), Actual::Error(e)) => {
            if e.contains(needle.as_str()) {
                (true, None)
            } else {
                (
                    false,
                    Some(render_diff(
                        case,
                        path,
                        &format!("an error containing `{needle}`"),
                        actual,
                        "",
                    )),
                )
            }
        }
        (Expectation::ErrorContains(needle), Actual::Type(_)) => (
            false,
            Some(render_diff(
                case,
                path,
                &format!("✕ (an error containing `{needle}`)"),
                actual,
                "",
            )),
        ),
        (Expectation::Unblessed, _) => (
            false,
            Some(render_diff(
                case,
                path,
                "(unblessed — no expectation recorded yet)",
                actual,
                "write the golden line with UPDATE_EXPECT=1",
            )),
        ),
    }
}

/// The elaborate obligations, applied once the expectation passed: a
/// well-typed case must elaborate to a System F term the oracle accepts
/// at the inferred scheme (on every selected engine, with cross-engine
/// evidence agreement under `ENGINE=both`), and must match its
/// `expect-f:` golden when one is pinned.
fn elaboration_verdict(case: &Case, path: &Path, actual: &Actual) -> (bool, Option<String>) {
    if !matches!(actual, Actual::Type(_)) {
        // A pinned image on a case that does not infer a type would be
        // dead forever — fail it instead of silently skipping.
        if case.expect_f.is_some() {
            return (
                false,
                Some(format!(
                    "✗ {} — {}:{}\n    `expect-f:` on a case that did not infer a type \
                     ({}); the image golden can never be checked — remove it\n",
                    case.name,
                    path.display(),
                    case.header_line,
                    actual.display()
                )),
            );
        }
        return (true, None);
    }
    let fail = |expected: &str, got: &str, note: &str| {
        let mut s = format!(
            "✗ {} — {}:{}\n    program    {}\n",
            case.name,
            path.display(),
            case.header_line,
            case.program
        );
        s.push_str(&format!("  - expected   {expected}\n"));
        s.push_str(&format!("  + actual     {got}\n"));
        if !note.is_empty() {
            s.push_str(&format!("    note       {note}\n"));
        }
        (false, Some(s))
    };
    match crate::elab::check_case(case, Engine::from_env()) {
        Err(msg) => fail(
            "a sound System F elaboration",
            &msg,
            "every inferred type must elaborate to an oracle-accepted F term",
        ),
        Ok(None) => match &case.expect_f {
            Some(_) => fail(
                "an `expect-f:` check",
                "elaboration is not checked for this case",
                "pure-mode images live in full System F (see freezeml_conformance::elab)",
            ),
            None => (true, None),
        },
        Ok(Some(out)) => match &case.expect_f {
            Some(want) if want.is_empty() => fail(
                "(unblessed expect-f — no image recorded yet)",
                &out.rendered,
                "write the golden line with UPDATE_EXPECT=1",
            ),
            Some(want) if *want != out.rendered => fail(
                want,
                &out.rendered,
                "canonical System F images compared verbatim",
            ),
            _ => (true, None),
        },
    }
}

/// Run a set of parsed files as one suite (so `differs-from` may refer to
/// cases in other files).
pub fn run_files(files: &[CaseFile]) -> SuiteOutcome {
    let mut outcomes = Vec::new();
    let mut inferred: BTreeMap<String, Actual> = BTreeMap::new();

    for file in files {
        for case in &file.cases {
            let (mut outcome, actual) = run_case(case, &file.path);
            // The parser enforces uniqueness per file; enforce it across
            // the suite too, or `differs-from` could silently resolve to
            // a shadowed case.
            if inferred.contains_key(&case.name) {
                outcome.pass = false;
                outcome.diff = Some(format!(
                    "✗ {} — {}:{}\n    duplicate case name: another file in \
                     this suite already defines {}\n",
                    case.name,
                    file.path.display(),
                    case.header_line,
                    case.name
                ));
            } else {
                inferred.insert(case.name.clone(), actual);
            }
            outcomes.push(outcome);
        }
    }

    // Distinctness obligations (freeze/thaw pairs): both cases must be
    // well typed, at α-distinct types.
    for file in files {
        for case in &file.cases {
            let Some(other) = &case.differs_from else {
                continue;
            };
            let name = format!("{} ≠ {}", case.name, other);
            let verdict = match (inferred.get(&case.name), inferred.get(other)) {
                (_, None) => Err(format!("`differs-from: {other}` names an unknown case")),
                (Some(Actual::Type(a)), Some(Actual::Type(b))) => {
                    if a.alpha_eq(b) {
                        Err(format!(
                            "expected the freeze/thaw pair to have distinct types, \
                             but both inferred {a}"
                        ))
                    } else {
                        Ok(())
                    }
                }
                (a, b) => Err(format!(
                    "distinctness needs both sides well typed; {} gave {}, {} gave {}",
                    case.name,
                    a.map_or("nothing".to_owned(), Actual::display),
                    other,
                    b.map_or("nothing".to_owned(), Actual::display),
                )),
            };
            outcomes.push(CaseOutcome {
                name: name.clone(),
                path: file.path.clone(),
                line: case.header_line,
                pass: verdict.is_ok(),
                diff: verdict.err().map(|e| {
                    format!(
                        "✗ {} — {}:{}\n    {}\n",
                        name,
                        file.path.display(),
                        case.header_line,
                        e
                    )
                }),
            });
        }
    }

    SuiteOutcome { outcomes }
}

/// All `.fml` files in `dir`, sorted by name for stable report order.
pub fn fml_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "fml"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Parse every *case-format* `.fml` file in `dir`. Files opening with a
/// `#!` marker line (e.g. `#! differential`, see [`crate::differential`])
/// follow a different schema and are skipped here.
pub fn parse_dir(dir: &Path) -> Result<Vec<CaseFile>, FormatError> {
    let paths = fml_files(dir).map_err(|e| FormatError {
        path: dir.to_owned(),
        line: 0,
        message: format!("cannot list: {e}"),
    })?;
    let mut files = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| FormatError {
            path: path.clone(),
            line: 0,
            message: format!("cannot read: {e}"),
        })?;
        if text.starts_with("#!") {
            continue;
        }
        files.push(format::parse_str(path, &text)?);
    }
    Ok(files)
}

/// Check every `.fml` file in `dir` as one suite.
pub fn run_dir(dir: &Path) -> Result<SuiteOutcome, FormatError> {
    Ok(run_files(&parse_dir(dir)?))
}

/// Rewrite the expectations of every failing or unblessed case in `files`
/// from the checker's actual output, preserving comments and layout.
/// Returns the rewritten text per file (only files with changes) — the
/// pure core of [`bless_dir`], separated for testing.
pub fn bless_files(files: &[CaseFile]) -> Vec<(PathBuf, String)> {
    let mut out = Vec::new();
    for file in files {
        // Edits as (1-based line, replace?) — insertions go *after* the line.
        let mut replacements: Vec<(usize, String)> = Vec::new();
        let mut insertions: Vec<(usize, String)> = Vec::new();
        for case in &file.cases {
            let actual = infer_case(case);
            let (expectation_ok, _) = expectation_verdict(case, &file.path, &actual);
            if !expectation_ok {
                if let Some(directive) = actual.bless_directive() {
                    match case.expectation_line {
                        Some(line) => replacements.push((line, directive)),
                        None => insertions.push((case.program_line, directive)),
                    }
                }
            }
            // `expect-f:` blessing is opt-in per case: only a present
            // (wrong or unblessed) directive is rewritten.
            if let (Some(want), Some(line)) = (&case.expect_f, case.expect_f_line) {
                if let Ok(Some(out)) = crate::elab::check_case(case, Engine::from_env()) {
                    if *want != out.rendered {
                        replacements.push((line, format!("expect-f: {}", out.rendered)));
                    }
                }
            }
        }
        if replacements.is_empty() && insertions.is_empty() {
            continue;
        }
        let mut lines = file.lines.clone();
        for (line, text) in replacements {
            lines[line - 1] = text;
        }
        insertions.sort_by_key(|&(line, _)| std::cmp::Reverse(line)); // bottom-up keeps indices valid
        for (line, text) in insertions {
            lines.insert(line, text);
        }
        let mut text = lines.join("\n");
        text.push('\n');
        out.push((file.path.clone(), text));
    }
    out
}

/// The `UPDATE_EXPECT=1` path: bless every `.fml` file in `dir` in place.
/// Returns the number of files rewritten.
pub fn bless_dir(dir: &Path) -> Result<usize, FormatError> {
    let files = parse_dir(dir)?;
    let rewrites = bless_files(&files);
    let n = rewrites.len();
    for (path, text) in rewrites {
        std::fs::write(&path, text).map_err(|e| FormatError {
            path,
            line: 0,
            message: format!("cannot write blessed file: {e}"),
        })?;
    }
    Ok(n)
}

/// Test entry point: bless first when `UPDATE_EXPECT=1` is set, then run
/// the suite (so a bless pass is itself verified).
pub fn check_or_bless(dir: &Path) -> Result<SuiteOutcome, FormatError> {
    if std::env::var("UPDATE_EXPECT").is_ok_and(|v| v == "1") {
        let n = bless_dir(dir)?;
        eprintln!("UPDATE_EXPECT: blessed {n} file(s) under {}", dir.display());
    }
    run_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::parse_str;

    fn suite(src: &str) -> SuiteOutcome {
        run_files(&[parse_str("mem.fml", src).unwrap()])
    }

    #[test]
    fn a_correct_expectation_passes() {
        let s = suite(
            "## case A2•\nprogram: choose ~id\nexpect: (forall a. a -> a) -> forall a. a -> a\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn every_engine_selection_handles_a_case() {
        let file = parse_str(
            "mem.fml",
            "## case A2•\nprogram: choose ~id\n\
             ## case A8\nprogram: choose id auto'\n",
        )
        .unwrap();
        for engine in [Engine::Core, Engine::Uf, Engine::Both] {
            let ok = infer_case_with(&file.cases[0], engine);
            assert!(
                matches!(&ok, Actual::Type(t)
                    if t.to_string() == "(forall a. a -> a) -> forall a. a -> a"),
                "{engine:?}: {}",
                ok.display()
            );
            let err = infer_case_with(&file.cases[1], engine);
            assert!(matches!(err, Actual::Error(_)), "{engine:?}");
        }
    }

    #[test]
    fn engine_default_is_both() {
        assert_eq!(Engine::default(), Engine::Both);
    }

    #[test]
    fn alpha_equivalent_expectations_pass() {
        let s = suite("## case F1\nprogram: $(fun x -> x)\nexpect: forall zz. zz -> zz\n");
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn a_wrong_expectation_fails_with_a_readable_diff() {
        let s = suite("## case A2\nprogram: choose id\nexpect: Int -> Int\n");
        assert_eq!(s.failed(), 1);
        let report = s.render_failures();
        for needle in [
            "✗ A2 — mem.fml:1",
            "program    choose id",
            "- expected   Int -> Int",
            "+ actual     (a -> a) -> a -> a",
            "UPDATE_EXPECT=1",
        ] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
    }

    #[test]
    fn expected_errors_match_on_substring() {
        let ok = suite("## case A8\nprogram: choose id auto'\nexpect-error: cannot\n");
        let wrong = suite("## case A8\nprogram: choose id auto'\nexpect-error: zorp\n");
        // The exact wording is the checker's own; this suite only relies on
        // `cannot` appearing in the unification failure.
        assert!(ok.all_pass(), "{}", ok.render_failures());
        assert_eq!(wrong.failed(), 1);
        assert!(wrong
            .render_failures()
            .contains("an error containing `zorp`"));
    }

    #[test]
    fn well_typed_when_error_expected_fails() {
        let s = suite("## case C3\nprogram: head ids\nexpect-error: nope\n");
        assert_eq!(s.failed(), 1);
        assert!(s
            .render_failures()
            .contains("+ actual     forall a. a -> a"));
    }

    #[test]
    fn env_and_mode_directives_are_honoured() {
        let s = suite(
            "## case A9⋆\nenv: f : forall a. (a -> a) -> List a -> a\n\
             program: f (choose ~id) ids\nexpect: forall a. a -> a\n\
             ## case F10†\nmode: pure\n\
             program: choose id (fun (x : forall a. a -> a) -> $(auto' ~x))\n\
             expect: (forall a. a -> a) -> forall a. a -> a\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn distinctness_obligations_check_both_sides() {
        let ok = suite(
            "## case A2\nprogram: choose id\nexpect: (a -> a) -> a -> a\n\
             ## case A2•\nprogram: choose ~id\n\
             expect: (forall a. a -> a) -> forall a. a -> a\ndiffers-from: A2\n",
        );
        assert!(ok.all_pass(), "{}", ok.render_failures());
        assert_eq!(ok.outcomes.len(), 3, "two cases plus one obligation");

        let same = suite(
            "## case X\nprogram: choose id\nexpect: (a -> a) -> a -> a\n\
             ## case Y\nprogram: choose id\nexpect: (a -> a) -> a -> a\ndiffers-from: X\n",
        );
        assert_eq!(same.failed(), 1);
        assert!(same.render_failures().contains("distinct types"));

        let dangling =
            suite("## case X\nprogram: choose id\nexpect: (a -> a) -> a -> a\ndiffers-from: Z\n");
        assert_eq!(dangling.failed(), 1);
        assert!(dangling.render_failures().contains("unknown case"));
    }

    #[test]
    fn expect_f_goldens_check_the_canonical_image() {
        // A correct image passes; a wrong one fails with the image diff.
        let ok = suite("## case E\nprogram: ~id\nexpect: forall a. a -> a\nexpect-f: id\n");
        assert!(ok.all_pass(), "{}", ok.render_failures());
        let wrong =
            suite("## case E\nprogram: ~id\nexpect: forall a. a -> a\nexpect-f: tyfun a -> id\n");
        assert_eq!(wrong.failed(), 1);
        assert!(
            wrong.render_failures().contains("+ actual     id"),
            "{}",
            wrong.render_failures()
        );
        // An empty directive is unblessed: fails showing the image.
        let unblessed = suite("## case E\nprogram: ~id\nexpect: forall a. a -> a\nexpect-f:\n");
        assert_eq!(unblessed.failed(), 1);
        assert!(unblessed.render_failures().contains("UPDATE_EXPECT=1"));
        // Pure-mode cases cannot pin an image (full-System-F boundary).
        let pure = suite(
            "## case P\nmode: pure\nprogram: $(auto' ~id)\nexpect: forall a. a -> a\nexpect-f: x\n",
        );
        assert_eq!(pure.failed(), 1);
        assert!(pure.render_failures().contains("not checked"));
        // …and neither can error cases: a pinned image there would be
        // dead forever, so it fails loudly instead of being skipped.
        let dead = suite("## case D\nprogram: auto id\nexpect-error: cannot\nexpect-f: auto id\n");
        assert_eq!(dead.failed(), 1);
        assert!(
            dead.render_failures().contains("did not infer a type"),
            "{}",
            dead.render_failures()
        );
    }

    #[test]
    fn every_well_typed_case_carries_the_elaboration_obligation() {
        // No expect-f needed: a case that infers a type is still held to
        // the System F oracle. (A failure here would be a checker bug;
        // this pins that the obligation actually runs by exercising a
        // case whose elaboration is non-trivial.)
        let s = suite(
            "## case L\nprogram: let g = (let y = fun x -> x in y) in poly ~g\n\
             expect: Int * Bool\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn bless_fills_in_expect_f() {
        let file = parse_str(
            "mem.fml",
            "## case E\nprogram: choose ~id\n\
             expect: (forall a. a -> a) -> forall a. a -> a\nexpect-f:\n",
        )
        .unwrap();
        let rewrites = bless_files(&[file]);
        assert_eq!(rewrites.len(), 1);
        let text = &rewrites[0].1;
        assert!(
            text.contains("expect-f: choose [forall a. a -> a] id"),
            "{text}"
        );
        // The expectation line was already right and is untouched.
        assert!(text.contains("expect: (forall a. a -> a) -> forall a. a -> a"));
        let s = run_files(&[parse_str("mem.fml", text).unwrap()]);
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn bless_replaces_wrong_expectations_in_place() {
        let file = parse_str(
            "mem.fml",
            "# a comment to preserve\n## case A2\nprogram: choose id\nexpect: Bool\n",
        )
        .unwrap();
        let rewrites = bless_files(&[file]);
        assert_eq!(rewrites.len(), 1);
        let text = &rewrites[0].1;
        assert!(text.starts_with("# a comment to preserve\n"), "{text}");
        assert!(text.contains("expect: (a -> a) -> a -> a"), "{text}");
        // And the blessed text passes.
        let s = run_files(&[parse_str("mem.fml", text).unwrap()]);
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn bless_fills_in_unblessed_cases() {
        let file = parse_str(
            "mem.fml",
            "## case C3\nprogram: head ids\n\
             ## case A8\nprogram: choose id auto'\n",
        )
        .unwrap();
        let rewrites = bless_files(&[file]);
        assert_eq!(rewrites.len(), 1);
        let text = &rewrites[0].1;
        assert!(
            text.contains("program: head ids\nexpect: forall a. a -> a"),
            "{text}"
        );
        assert!(text.contains("expect-error: "), "{text}");
        let s = run_files(&[parse_str("mem.fml", text).unwrap()]);
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn bless_leaves_passing_files_untouched() {
        let file = parse_str("mem.fml", "## case C1\nprogram: length ids\nexpect: Int\n").unwrap();
        assert!(bless_files(&[file]).is_empty());
    }

    #[test]
    fn duplicate_case_names_across_files_fail() {
        let a = parse_str("a.fml", "## case C1\nprogram: length ids\nexpect: Int\n").unwrap();
        let b = parse_str("b.fml", "## case C1\nprogram: length ids\nexpect: Int\n").unwrap();
        let s = run_files(&[a, b]);
        assert_eq!(s.failed(), 1);
        let report = s.render_failures();
        assert!(report.contains("duplicate case name"), "{report}");
        assert!(report.contains("b.fml:1"), "{report}");
    }
}
