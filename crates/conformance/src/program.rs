//! The `program` golden mode: multi-binding `.fml` files checked
//! through the program-checking service.
//!
//! A program-mode file opens with a `#! program` marker line (so the
//! single-expression runner skips it, mirroring `#! differential`) and
//! holds cases of whole programs with per-binding expectations:
//!
//! ```text
//! #! program
//! ## case diamond
//! > #use prelude
//! > let base = 1;;
//! > let l = plus base 1;;
//! expect base: Int
//! expect l: Int
//! ```
//!
//! Directives after a `## case NAME` header:
//!
//! | directive | meaning |
//! |-----------|---------|
//! | `> text`  | one program line (repeatable, in order) |
//! | `mode:`   | `standard` (default) or `pure` |
//! | `expect NAME: TYPE` | the binding's scheme, up to α-equivalence |
//! | `expect-error NAME: SUBSTR` | the binding fails; message contains SUBSTR |
//! | `expect-blocked NAME: DEP` | the binding is skipped because DEP failed |
//!
//! Expectations are positional: the `k`-th expectation line describes
//! the `k`-th declaration, and its NAME must match — so shadowing
//! chains are expressible and a program cannot silently grow a binding
//! no golden line covers. The service is driven cold per case with the
//! engine selected by `ENGINE` (`core` / `uf` / `both`; `both` adds the
//! per-binding differential obligation).

use std::path::{Path, PathBuf};

use crate::format::FormatError;
use crate::runner::{fml_files, CaseOutcome, SuiteOutcome};
use freezeml_core::Options;
use freezeml_service::{EngineSel, Outcome, Service, ServiceConfig};

/// The marker line opening a program-mode file.
pub const MARKER: &str = "#! program";

/// What one binding is expected to do.
#[derive(Clone, Debug, PartialEq)]
pub enum BindExpect {
    /// Typed at this scheme (α-equivalence).
    Type(String),
    /// Fails with a message containing this substring.
    ErrorContains(String),
    /// Blocked on the named failing dependency.
    BlockedOn(String),
}

/// One program case.
#[derive(Clone, Debug)]
pub struct ProgramCase {
    /// Case name, unique within the suite.
    pub name: String,
    /// 1-based header line.
    pub header_line: usize,
    /// `standard` or `pure`.
    pub pure: bool,
    /// The program text (the `> ` lines, joined).
    pub program: String,
    /// Positional per-binding expectations.
    pub expects: Vec<(String, BindExpect)>,
}

/// A parsed program-mode file.
#[derive(Clone, Debug)]
pub struct ProgramFile {
    /// Where the file lives.
    pub path: PathBuf,
    /// The cases, in file order.
    pub cases: Vec<ProgramCase>,
}

/// Parse program-mode source text.
///
/// # Errors
///
/// A [`FormatError`] naming the offending line.
pub fn parse_str(path: impl Into<PathBuf>, text: &str) -> Result<ProgramFile, FormatError> {
    let path = path.into();
    let err = |line: usize, message: String| FormatError {
        path: path.clone(),
        line,
        message,
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim_end() == MARKER => {}
        _ => return Err(err(1, format!("program-mode files start with `{MARKER}`"))),
    }

    let mut cases: Vec<ProgramCase> = Vec::new();
    let mut current: Option<ProgramCase> = None;
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("## case ") {
            if let Some(case) = current.take() {
                finish(&path, case, &mut cases)?;
            }
            current = Some(ProgramCase {
                name: name.trim().to_string(),
                header_line: lineno,
                pure: false,
                program: String::new(),
                expects: Vec::new(),
            });
            continue;
        }
        if line.starts_with("##") {
            return Err(err(lineno, format!("unrecognised header `{line}`")));
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let Some(case) = current.as_mut() else {
            return Err(err(lineno, format!("`{line}` before any `## case`")));
        };
        if let Some(src) = line.strip_prefix('>') {
            case.program.push_str(src.strip_prefix(' ').unwrap_or(src));
            case.program.push('\n');
            continue;
        }
        if let Some(mode) = line.strip_prefix("mode:") {
            case.pure = match mode.trim() {
                "standard" => false,
                "pure" => true,
                other => return Err(err(lineno, format!("unknown mode `{other}`"))),
            };
            continue;
        }
        let parsed = ["expect-error ", "expect-blocked ", "expect "]
            .iter()
            .find_map(|prefix| line.strip_prefix(prefix).map(|rest| (*prefix, rest)));
        let Some((prefix, rest)) = parsed else {
            return Err(err(lineno, format!("unknown directive `{line}`")));
        };
        let Some((name, value)) = rest.split_once(':') else {
            return Err(err(
                lineno,
                format!("`{}` wants `NAME: value`", prefix.trim()),
            ));
        };
        let (name, value) = (name.trim().to_string(), value.trim().to_string());
        let expect = match prefix {
            "expect " => BindExpect::Type(value),
            "expect-error " => BindExpect::ErrorContains(value),
            _ => BindExpect::BlockedOn(value),
        };
        case.expects.push((name, expect));
    }
    if let Some(case) = current.take() {
        finish(&path, case, &mut cases)?;
    }
    Ok(ProgramFile { path, cases })
}

fn finish(path: &Path, case: ProgramCase, cases: &mut Vec<ProgramCase>) -> Result<(), FormatError> {
    let fail = |message: String| FormatError {
        path: path.to_owned(),
        line: case.header_line,
        message,
    };
    if case.program.trim().is_empty() {
        return Err(fail(format!("case {} has no `>` program lines", case.name)));
    }
    if case.expects.is_empty() {
        return Err(fail(format!("case {} has no expectations", case.name)));
    }
    if cases.iter().any(|c| c.name == case.name) {
        return Err(fail(format!("duplicate case name {}", case.name)));
    }
    cases.push(case);
    Ok(())
}

/// Read and parse a program-mode file.
///
/// # Errors
///
/// A [`FormatError`] (I/O failures are reported at line 0).
pub fn parse_file(path: &Path) -> Result<ProgramFile, FormatError> {
    let text = std::fs::read_to_string(path).map_err(|e| FormatError {
        path: path.to_owned(),
        line: 0,
        message: format!("cannot read: {e}"),
    })?;
    parse_str(path, &text)
}

/// Parse every program-mode file in `dir` (files not starting with the
/// marker are skipped).
///
/// # Errors
///
/// A [`FormatError`] from listing or parsing.
pub fn parse_dir(dir: &Path) -> Result<Vec<ProgramFile>, FormatError> {
    let paths = fml_files(dir).map_err(|e| FormatError {
        path: dir.to_owned(),
        line: 0,
        message: format!("cannot list: {e}"),
    })?;
    let mut files = Vec::new();
    for path in &paths {
        let text = std::fs::read_to_string(path).map_err(|e| FormatError {
            path: path.clone(),
            line: 0,
            message: format!("cannot read: {e}"),
        })?;
        if text.lines().next().map(str::trim_end) == Some(MARKER) {
            files.push(parse_str(path, &text)?);
        }
    }
    Ok(files)
}

/// `(case name, program text)` for every case — the corpus the replay
/// load generator drives.
pub fn program_sources(files: &[ProgramFile]) -> Vec<(String, String)> {
    files
        .iter()
        .flat_map(|f| f.cases.iter().map(|c| (c.name.clone(), c.program.clone())))
        .collect()
}

fn render_diff(case: &ProgramCase, path: &Path, detail: &str) -> String {
    let mut s = format!(
        "✗ {} — {}:{}\n",
        case.name,
        path.display(),
        case.header_line
    );
    for line in case.program.lines() {
        s.push_str(&format!("    | {line}\n"));
    }
    s.push_str(detail);
    s
}

/// Check one case through a fresh service with the given engine.
pub fn run_case(case: &ProgramCase, path: &Path, engine: EngineSel) -> CaseOutcome {
    let opts = if case.pure {
        Options::pure_freezeml()
    } else {
        Options::default()
    };
    let mut svc = Service::new(ServiceConfig {
        opts,
        engine,
        workers: 2,
    });
    let fail = |detail: String| CaseOutcome {
        name: case.name.clone(),
        path: path.to_owned(),
        line: case.header_line,
        pass: false,
        diff: Some(render_diff(case, path, &detail)),
    };
    let report = match svc.open(&case.name, &case.program) {
        Ok(r) => r.clone(),
        Err(e) => return fail(format!("  - program does not check: {e}\n")),
    };
    if report.bindings.len() != case.expects.len() {
        return fail(format!(
            "  - expected {} binding expectation(s), program has {} binding(s)\n",
            case.expects.len(),
            report.bindings.len()
        ));
    }
    let mut problems = String::new();
    for (pos, (b, (name, expect))) in report.bindings.iter().zip(&case.expects).enumerate() {
        if &b.name != name {
            problems.push_str(&format!(
                "  - binding #{pos}: expected name `{name}`, found `{}`\n",
                b.name
            ));
            continue;
        }
        let ok = match (expect, &b.outcome) {
            (BindExpect::Type(want), Outcome::Typed { scheme, .. }) => {
                // Schemes are carried as canonical renderings; parse
                // both sides back for an α-comparison.
                match (
                    freezeml_core::parse_type(want),
                    freezeml_core::parse_type(scheme),
                ) {
                    (Ok(w), Ok(s)) => s.alpha_eq(&w),
                    _ => false,
                }
            }
            (BindExpect::ErrorContains(needle), Outcome::Error { message, .. }) => {
                message.contains(needle.as_str())
            }
            (BindExpect::BlockedOn(dep), Outcome::Blocked { on }) => on == dep,
            _ => false,
        };
        if !ok {
            problems.push_str(&format!(
                "  - {name}\n      expected   {}\n      actual     {}\n",
                match expect {
                    BindExpect::Type(t) => t.clone(),
                    BindExpect::ErrorContains(e) => format!("✕ (an error containing `{e}`)"),
                    BindExpect::BlockedOn(d) => format!("blocked on `{d}`"),
                },
                b.outcome.display()
            ));
        }
    }
    if problems.is_empty() {
        CaseOutcome {
            name: case.name.clone(),
            path: path.to_owned(),
            line: case.header_line,
            pass: true,
            diff: None,
        }
    } else {
        fail(problems)
    }
}

/// Run parsed files as one suite with the `ENGINE`-selected engine.
pub fn run_files(files: &[ProgramFile]) -> SuiteOutcome {
    let engine = EngineSel::from_env();
    let mut outcomes = Vec::new();
    for file in files {
        for case in &file.cases {
            outcomes.push(run_case(case, &file.path, engine));
        }
    }
    SuiteOutcome { outcomes }
}

/// Run every program-mode file in `dir`.
///
/// # Errors
///
/// A [`FormatError`] from listing or parsing.
pub fn run_dir(dir: &Path) -> Result<SuiteOutcome, FormatError> {
    Ok(run_files(&parse_dir(dir)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(src: &str) -> SuiteOutcome {
        run_files(&[parse_str("mem.fml", src).unwrap()])
    }

    #[test]
    fn a_passing_program_case() {
        let s = suite(
            "#! program\n\
             ## case two\n\
             > #use prelude\n\
             > let f = fun x -> x;;\n\
             > let p = poly ~f;;\n\
             expect f: forall a. a -> a\n\
             expect p: Int * Bool\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn expectations_are_positional_so_shadowing_works() {
        let s = suite(
            "#! program\n\
             ## case shadow\n\
             > let x = 1;;\n\
             > let x = true;;\n\
             expect x: Int\n\
             expect x: Bool\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn wrong_expectations_fail_with_readable_diffs() {
        let s = suite(
            "#! program\n\
             ## case wrong\n\
             > let x = 1;;\n\
             expect x: Bool\n",
        );
        assert_eq!(s.failed(), 1);
        let report = s.render_failures();
        for needle in [
            "✗ wrong — mem.fml:2",
            "| let x = 1;;",
            "expected   Bool",
            "actual     Int",
        ] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
    }

    #[test]
    fn coverage_must_be_exact() {
        let s = suite("#! program\n## case missing\n> let x = 1;;\n> let y = 2;;\nexpect x: Int\n");
        assert_eq!(s.failed(), 1);
        assert!(s
            .render_failures()
            .contains("expected 1 binding expectation(s)"));
    }

    #[test]
    fn error_and_blocked_expectations() {
        let s = suite(
            "#! program\n\
             ## case recovery\n\
             > #use prelude\n\
             > let bad = plus true 1;;\n\
             > let child = plus bad 1;;\n\
             > let fine = 42;;\n\
             expect-error bad: cannot unify\n\
             expect-blocked child: bad\n\
             expect fine: Int\n",
        );
        assert!(s.all_pass(), "{}", s.render_failures());
    }

    #[test]
    fn pure_mode_is_honoured() {
        // `$(auto' ~x)` generalises an application — pure FreezeML only.
        let src = |mode: &str| {
            format!(
                "#! program\n\
                 ## case gen_app\n\
                 > #use prelude\n\
                 > let f = fun (x : forall a. a -> a) -> $(auto' ~x);;\n\
                 mode: {mode}\n\
                 expect f: (forall a. a -> a) -> forall a. a -> a\n"
            )
        };
        assert!(suite(&src("pure")).all_pass());
        assert_eq!(suite(&src("standard")).failed(), 1);
    }

    #[test]
    fn malformed_files_are_rejected() {
        for (src, needle) in [
            ("## case a\n", "start with"),
            ("#! program\nexpect x: Int\n", "before any"),
            ("#! program\n## case a\nexpect x: Int\n", "no `>` program"),
            ("#! program\n## case a\n> let x = 1;;\n", "no expectations"),
            (
                "#! program\n## case a\n> let x = 1;;\nzorp: 1\n",
                "unknown directive",
            ),
            (
                "#! program\n## case a\n> let x = 1;;\nexpect x: Int\n\
                 ## case a\n> let x = 1;;\nexpect x: Int\n",
                "duplicate",
            ),
        ] {
            let e = parse_str("mem.fml", src).unwrap_err();
            assert!(e.to_string().contains(needle), "`{src}` → {e}");
        }
    }

    #[test]
    fn program_sources_extracts_case_programs() {
        let f = parse_str(
            "mem.fml",
            "#! program\n## case a\n> let x = 1;;\nexpect x: Int\n",
        )
        .unwrap();
        let sources = program_sources(&[f]);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].0, "a");
        assert_eq!(sources[0].1, "let x = 1;;\n");
    }
}
