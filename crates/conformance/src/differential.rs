//! Differential conformance: run the shared corpus subset through the
//! FreezeML, HMF-style, and plain-ML checkers and pin the per-example
//! agreement/disagreement pattern (the qualitative content of the paper's
//! Table 1) in a golden file.
//!
//! The golden file (`differential.fml`) lists, for each of the 32 base
//! examples of Figure 1 sections A–E, whether each system handles it with
//! no annotation budget:
//!
//! ```text
//! ## case A8
//! program: choose id auto'
//! freezeml: fail
//! hmf: fail
//! ml: fail
//! ```
//!
//! * `freezeml` — does any admissible Figure 1 variant typecheck
//!   (`freezeml_corpus::table1::freezeml_handles`, budget `Nothing`)?
//! * `hmf` — does the HMF-style approximation accept the plain form
//!   (`hmf_handles`, budget `Nothing`)?
//! * `ml` — is the plain form in the ML fragment and typed by Algorithm W?
//!
//! `UPDATE_EXPECT=1` regenerates the file wholesale (it is fully derived,
//! so regeneration is canonical rather than line-patching).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::format::FormatError;
use freezeml_corpus::table1::{base_ids, freezeml_handles, hmf_handles, Budget, PLAIN_FORMS};
use freezeml_corpus::{figure2, EXAMPLES};
use freezeml_miniml::{ml_accepts_src, MlOutcome};

/// One base example's verdicts under the three systems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRow {
    /// Base id (`A1` … `E3`).
    pub base: String,
    /// The plain (Serrano et al.) form of the example.
    pub program: String,
    /// FreezeML handles it (some variant, budget `Nothing`).
    pub freezeml: bool,
    /// The HMF-style approximation handles the plain form.
    pub hmf: bool,
    /// Plain ML (Algorithm W) handles the plain form.
    pub ml: bool,
}

/// The plain form of a base example (panics on an unknown base — the base
/// list and `PLAIN_FORMS` are both derived from Figure 1).
fn plain_form(base: &str) -> &'static str {
    PLAIN_FORMS
        .iter()
        .find(|(b, _)| *b == base)
        .map(|(_, src)| *src)
        .unwrap_or_else(|| panic!("no plain form for base {base}"))
}

/// The environment for a base: Figure 2 plus the example's `where` clauses.
fn env_for_base(base: &str) -> freezeml_core::TypeEnv {
    let mut env = figure2();
    if let Some(e) = EXAMPLES.iter().find(|e| e.base == base) {
        for (name, ty) in e.extra_env {
            env.push_str(name, ty).expect("extra signature parses");
        }
    }
    env
}

/// Compute one row with the real checkers.
pub fn computed_row(base: &str) -> DiffRow {
    let program = plain_form(base);
    DiffRow {
        base: base.to_owned(),
        program: program.to_owned(),
        freezeml: freezeml_handles(base, Budget::Nothing),
        hmf: hmf_handles(base, Budget::Nothing),
        ml: matches!(
            ml_accepts_src(&env_for_base(base), program),
            MlOutcome::Typed
        ),
    }
}

/// All 32 rows, in paper order.
pub fn computed_rows() -> Vec<DiffRow> {
    base_ids().into_iter().map(computed_row).collect()
}

/// Render rows in the golden-file syntax.
pub fn render(rows: &[DiffRow]) -> String {
    let mut s = String::from(
        "#! differential\n\
         # Differential conformance (derived — regenerate with UPDATE_EXPECT=1).\n\
         # For each Figure 1 base example: does each checker handle it with no\n\
         # annotation budget? See crates/conformance/src/differential.rs.\n",
    );
    for row in rows {
        let ok = |b: bool| if b { "ok" } else { "fail" };
        let _ = write!(
            s,
            "\n## case {}\nprogram: {}\nfreezeml: {}\nhmf: {}\nml: {}\n",
            row.base,
            row.program,
            ok(row.freezeml),
            ok(row.hmf),
            ok(row.ml)
        );
    }
    s
}

/// Parse the golden-file syntax back into rows.
pub fn parse(path: impl Into<PathBuf>, text: &str) -> Result<Vec<DiffRow>, FormatError> {
    let path = path.into();
    let err = |line: usize, message: String| FormatError {
        path: path.clone(),
        line,
        message,
    };
    let mut rows: Vec<DiffRow> = Vec::new();
    let mut current: Option<DiffRow> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.starts_with("#!") {
            continue; // the file-kind marker `#! differential`
        }
        if line.trim().is_empty() || (line.starts_with('#') && !line.starts_with("##")) {
            continue;
        }
        if let Some(name) = line.strip_prefix("## case ") {
            if let Some(row) = current.take() {
                rows.push(row);
            }
            current = Some(DiffRow {
                base: name.trim().to_owned(),
                program: String::new(),
                freezeml: false,
                hmf: false,
                ml: false,
            });
            continue;
        }
        let Some(row) = current.as_mut() else {
            return Err(err(lineno, format!("directive `{line}` before `## case`")));
        };
        let Some((key, value)) = line.split_once(':') else {
            return Err(err(
                lineno,
                format!("expected `key: value`, found `{line}`"),
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        let flag = |v: &str| match v {
            "ok" => Ok(true),
            "fail" => Ok(false),
            other => Err(format!("expected `ok` or `fail`, found `{other}`")),
        };
        match key {
            "program" => row.program = value.to_owned(),
            "freezeml" => row.freezeml = flag(value).map_err(|m| err(lineno, m))?,
            "hmf" => row.hmf = flag(value).map_err(|m| err(lineno, m))?,
            "ml" => row.ml = flag(value).map_err(|m| err(lineno, m))?,
            other => return Err(err(lineno, format!("unknown directive `{other}:`"))),
        }
    }
    if let Some(row) = current.take() {
        rows.push(row);
    }
    Ok(rows)
}

/// Compare the golden rows against freshly computed ones; returns a
/// readable report of every disagreement (empty = pass).
pub fn diff_against_golden(golden: &[DiffRow]) -> String {
    let computed = computed_rows();
    let mut report = String::new();
    for want in &computed {
        match golden.iter().find(|g| g.base == want.base) {
            None => {
                let _ = writeln!(report, "✗ {}: missing from the golden file", want.base);
            }
            Some(got) if got != want => {
                let show = |r: &DiffRow| {
                    format!(
                        "freezeml={} hmf={} ml={} (program `{}`)",
                        r.freezeml, r.hmf, r.ml, r.program
                    )
                };
                let _ = writeln!(
                    report,
                    "✗ {}:\n  - golden   {}\n  + computed {}",
                    want.base,
                    show(got),
                    show(want)
                );
            }
            Some(_) => {}
        }
    }
    for got in golden {
        if !computed.iter().any(|w| w.base == got.base) {
            let _ = writeln!(report, "✗ {}: not a Figure 1 base example", got.base);
        }
    }
    report
}

/// The qualitative Table 1 pattern the paper reports, asserted over the
/// computed rows. Returns a readable report of violations (empty = pass).
pub fn table1_pattern_report(rows: &[DiffRow]) -> String {
    let mut report = String::new();
    let fails = |f: fn(&DiffRow) -> bool| -> Vec<&str> {
        rows.iter()
            .filter(|r| !f(r))
            .map(|r| r.base.as_str())
            .collect()
    };
    let fz = fails(|r| r.freezeml);
    let hmf = fails(|r| r.hmf);
    let ml = fails(|r| r.ml);

    if fz != ["A8", "B1", "B2", "E1"] {
        let _ = writeln!(
            report,
            "✗ FreezeML must fail exactly {{A8, B1, B2, E1}} at budget Nothing \
             (paper §A), got {fz:?}"
        );
    }
    if !(9..=15).contains(&hmf.len()) {
        let _ = writeln!(
            report,
            "✗ the HMF approximation should fail ≈11 rows (paper Table 1), got {}: {hmf:?}",
            hmf.len()
        );
    }
    if !(fz.len() < hmf.len() && hmf.len() < ml.len()) {
        let _ = writeln!(
            report,
            "✗ expected FreezeML ≪ HMF ≪ plain ML failure counts, got {} / {} / {}",
            fz.len(),
            hmf.len(),
            ml.len()
        );
    }
    // Every example FreezeML cannot handle defeats the heuristic systems
    // too — explicit polymorphism never loses to guessing on this corpus.
    for base in &fz {
        if let Some(r) = rows.iter().find(|r| &r.base == base) {
            if r.hmf || r.ml {
                let _ = writeln!(
                    report,
                    "✗ {base}: FreezeML fails but a baseline succeeds — \
                     disagreement pattern inverted"
                );
            }
        }
    }
    report
}

/// Check (or, under `UPDATE_EXPECT=1`, regenerate) the golden file.
pub fn check_or_bless(path: &Path) -> Result<String, FormatError> {
    if std::env::var("UPDATE_EXPECT").is_ok_and(|v| v == "1") {
        std::fs::write(path, render(&computed_rows())).map_err(|e| FormatError {
            path: path.to_owned(),
            line: 0,
            message: format!("cannot write blessed file: {e}"),
        })?;
        eprintln!("UPDATE_EXPECT: regenerated {}", path.display());
    }
    let text = std::fs::read_to_string(path).map_err(|e| FormatError {
        path: path.to_owned(),
        line: 0,
        message: format!("cannot read (create it with UPDATE_EXPECT=1): {e}"),
    })?;
    let golden = parse(path, &text)?;
    let mut report = diff_against_golden(&golden);
    report.push_str(&table1_pattern_report(&computed_rows()));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_rows_cover_all_32_bases() {
        let rows = computed_rows();
        assert_eq!(rows.len(), 32);
        assert_eq!(rows.first().map(|r| r.base.as_str()), Some("A1"));
        assert_eq!(rows.last().map(|r| r.base.as_str()), Some("E3"));
    }

    #[test]
    fn render_parse_round_trips() {
        let rows = computed_rows();
        let parsed = parse("differential.fml", &render(&rows)).unwrap();
        assert_eq!(rows, parsed);
    }

    #[test]
    fn freshly_computed_rows_agree_with_themselves() {
        let report = diff_against_golden(&computed_rows());
        assert!(report.is_empty(), "{report}");
    }

    #[test]
    fn tampering_is_reported_readably() {
        let mut golden = computed_rows();
        golden[0].freezeml = !golden[0].freezeml;
        golden.remove(5);
        let report = diff_against_golden(&golden);
        assert!(report.contains("✗ A1:"), "{report}");
        assert!(report.contains("- golden"), "{report}");
        assert!(report.contains("missing from the golden file"), "{report}");
    }

    #[test]
    fn the_table1_pattern_holds() {
        let report = table1_pattern_report(&computed_rows());
        assert!(report.is_empty(), "{report}");
    }
}
