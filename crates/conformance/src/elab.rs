//! The `elaborate` differential mode: the third engine-agreement axis.
//!
//! PR 2 held the two engines to the same *verdicts*, PR 4 to the same
//! *schemes*; this module holds them to the same *evidence*. For every
//! case that infers a type, both elaboration pipelines — the
//! paper-literal derivation translation and the union-find engine's
//! native evidence — must produce a System F term that
//!
//! * **typechecks** in `freezeml_systemf` (the machine-checked
//!   soundness oracle) at a type α-equivalent to the inferred scheme
//!   (Theorem 3);
//! * **evaluates** to the same ground value as the other pipeline's
//!   image (the translation is semantics-preserving, so the two images
//!   must be observationally equal on the evaluable subset);
//! * **renders identically** after canonical α-renaming
//!   ([`freezeml_translate::canonicalize_fterm`]), which is what the
//!   `expect-f:` golden directive pins.
//!
//! The per-engine obligation itself lives in
//! [`freezeml_translate::elaborate::check_sound`] (shared with the
//! service's `elaborate` endpoint); this module adds the case plumbing
//! and the cross-engine comparison.
//!
//! Pure-mode cases are excluded by design: pure FreezeML generalises
//! over applications, and its images live in *full* System F, which the
//! CBV implementation here (value restriction on `Λ`, paper Appendix
//! B.1) deliberately rejects.

use crate::format::{Case, Mode};
use crate::runner::Engine;
use freezeml_core::{KindEnv, Options, RefinedEnv, TypeEnv};
use freezeml_translate::elaborate::{images_agree, try_check_sound, CheckedElab};
use freezeml_translate::ElabEngine;

/// The outcome of the elaborate obligation for one case.
pub struct ElabOutcome {
    /// The canonical rendering of the (oracle-side) reduced image — the
    /// text `expect-f:` goldens pin.
    pub rendered: String,
    /// The inferred (grounded) type, for reports.
    pub ty: String,
}

/// Run the elaborate obligation for a term under the given engine
/// selection. Returns `Ok(None)` when the obligation does not apply
/// (pure mode, ill-typed term, or an environment the System F oracle
/// cannot host); `Err` carries a human-readable explanation of a failed
/// obligation — each one a soundness bug.
///
/// # Errors
///
/// A rendered description of the failed obligation.
pub fn check_elaboration(
    env: &TypeEnv,
    src: &str,
    mode: Mode,
    opts: &Options,
    engine: Engine,
) -> Result<Option<ElabOutcome>, String> {
    if mode == Mode::Pure {
        return Ok(None); // full-System-F images; see the module docs
    }
    let Ok(term) = freezeml_core::parse_term(src) else {
        return Ok(None);
    };
    // The F oracle typechecks under an empty ∆; an environment with free
    // type variables (possible through `env:` extras) cannot be hosted.
    if freezeml_core::kinding::check_env(&KindEnv::new(), &RefinedEnv::new(), env).is_err() {
        return Ok(None);
    }
    let selected: &[ElabEngine] = match engine {
        Engine::Core => &[ElabEngine::Core],
        Engine::Uf => &[ElabEngine::Uf],
        Engine::Both => &[ElabEngine::Core, ElabEngine::Uf],
    };
    let mut checked: Vec<CheckedElab> = Vec::with_capacity(selected.len());
    for e in selected {
        // Inference failure (`Ok(None)`) is not this axis's business —
        // the verdict differential owns it. Inference runs once per
        // engine: `try_check_sound` reads the verdict off the
        // elaboration attempt itself.
        match try_check_sound(*e, env, &term, opts)? {
            Some(c) => checked.push(c),
            None => return Ok(None),
        }
    }
    if let [core, uf] = checked.as_slice() {
        images_agree(core, uf)?;
    }
    let first = checked.into_iter().next().expect("at least one engine");
    Ok(Some(ElabOutcome {
        ty: first.image.ty.to_string(),
        rendered: first.rendered,
    }))
}

/// Convenience wrapper running the obligation for a parsed [`Case`]
/// (Figure 2 prelude plus its `env:` extras, its mode's options).
///
/// # Errors
///
/// As [`check_elaboration`].
pub fn check_case(case: &Case, engine: Engine) -> Result<Option<ElabOutcome>, String> {
    let env = crate::runner::case_env(case)?;
    let opts = crate::runner::case_options(case);
    check_elaboration(&env, &case.program, case.mode, &opts, engine)
}
