//! # Golden-file conformance harness for the Figure 1 corpus
//!
//! The paper's evaluation is a 49-program corpus (Figure 1) checked
//! against the 21-signature Figure 2 prelude; the reference Links
//! implementation validates it with data-driven expect tests. This crate
//! is the Rust analogue: a file-driven conformance suite every future
//! change regresses against.
//!
//! * [`format`] — the `.fml` test-file format: source program, checker
//!   mode, extra environment, and an expected principal type
//!   (`expect:`) or expected error substring (`expect-error:`), plus
//!   `differs-from:` obligations for the paper's `•`-variant freeze/thaw
//!   pairs.
//! * [`runner`] — run parsed cases through the real
//!   [`freezeml_core`] checker against the Figure 2 prelude, render
//!   readable `-`/`+` diffs on mismatch, and bless expectations in place
//!   under `UPDATE_EXPECT=1`.
//! * [`differential`] — run the shared corpus subset through the
//!   [`freezeml_hmf`] and [`freezeml_miniml`] baselines as well and pin
//!   the Table 1 agreement/disagreement pattern in a derived golden file.
//! * [`program`] — the `program` golden mode: multi-binding `.fml` files
//!   (marker `#! program`) checked through the incremental service with
//!   per-binding expectations, including error recovery and blocking.
//!
//! The golden files themselves live at `tests/conformance/*.fml` in the
//! repository root (see the README there for the format and the bless
//! workflow); `cargo test -p freezeml_conformance` checks them.
//!
//! ```
//! use freezeml_conformance::{format, runner};
//!
//! let file = format::parse_str(
//!     "demo.fml",
//!     "## case A2•\nprogram: choose ~id\n\
//!      expect: (forall a. a -> a) -> forall a. a -> a\n",
//! )
//! .unwrap();
//! let suite = runner::run_files(&[file]);
//! assert!(suite.all_pass(), "{}", suite.render_failures());
//! ```

pub mod differential;
pub mod elab;
pub mod format;
pub mod program;
pub mod runner;

pub use format::{Case, CaseFile, Expectation, FormatError, Mode};
pub use runner::{
    bless_dir, check_or_bless, run_dir, run_files, CaseOutcome, Engine, SuiteOutcome,
};
