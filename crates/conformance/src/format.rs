//! The `.fml` golden-test file format.
//!
//! A `.fml` file is a line-oriented list of conformance cases, modelled on
//! the data-driven expect tests the Links implementation uses for this
//! corpus (paper §6). Example:
//!
//! ```text
//! # Anything after a single `#` at column zero is a comment.
//!
//! ## case A2•
//! program: choose ~id
//! expect: (forall a. a -> a) -> forall a. a -> a
//! differs-from: A2
//!
//! ## case A8
//! program: choose id auto'
//! expect-error: cannot unify
//! ```
//!
//! Directives (each `key: value` on its own line, after a `## case NAME`
//! header):
//!
//! | directive | meaning |
//! |-----------|---------|
//! | `program:` | the FreezeML source to infer (required) |
//! | `mode:` | `standard` (default) or `pure` (no value restriction) |
//! | `env:` | `name : type` — extra binding beyond the Figure 2 prelude (repeatable) |
//! | `expect:` | the principal type, up to α-equivalence |
//! | `expect-error:` | inference must fail, and the error must contain this substring |
//! | `expect-f:` | the canonical System F image of the case (see [`crate::elab`]); empty value = unblessed |
//! | `differs-from:` | this case and the named one must infer *different* types (freeze/thaw pairs) |
//!
//! A case with neither `expect:` nor `expect-error:` is *unblessed*: it
//! always fails with a diff showing the actual outcome, and
//! `UPDATE_EXPECT=1` fills the expectation in (see [`crate::runner`]).

use std::fmt;
use std::path::{Path, PathBuf};

/// Checker configuration for a case (mirrors `freezeml_corpus::Mode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Value restriction on (the paper's formal system).
    Standard,
    /// "Pure" FreezeML: no value restriction (the paper's † examples).
    Pure,
}

/// What a case expects from the checker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Well typed at this type (α-equivalence).
    Type(String),
    /// Ill typed, with an error whose rendering contains this substring.
    ErrorContains(String),
    /// Not yet blessed: always fails, showing the actual outcome.
    Unblessed,
}

/// One parsed conformance case.
#[derive(Clone, Debug)]
pub struct Case {
    /// Case name (`A2•`, `F10†`, …) — unique within a suite.
    pub name: String,
    /// 1-based line of the `## case` header in its file.
    pub header_line: usize,
    /// Source program in the surface syntax.
    pub program: String,
    /// 1-based line of the `program:` directive.
    pub program_line: usize,
    /// Checker configuration.
    pub mode: Mode,
    /// Extra `name : type` bindings layered over the Figure 2 prelude.
    pub env: Vec<(String, String)>,
    /// The golden expectation.
    pub expectation: Expectation,
    /// 1-based line of the `expect:`/`expect-error:` directive, if any
    /// (bless mode rewrites this line in place).
    pub expectation_line: Option<usize>,
    /// The expected canonical System F image (`expect-f:`), if the case
    /// pins one. An empty value is *unblessed*: the case fails showing
    /// the actual image, and `UPDATE_EXPECT=1` fills it in.
    pub expect_f: Option<String>,
    /// 1-based line of the `expect-f:` directive, if any.
    pub expect_f_line: Option<usize>,
    /// Name of a case this one's inferred type must differ from.
    pub differs_from: Option<String>,
}

/// A parsed `.fml` file, retaining the raw lines so bless mode can rewrite
/// expectations in place without disturbing comments or layout.
#[derive(Clone, Debug)]
pub struct CaseFile {
    /// Where the file lives (as given to [`parse_file`]).
    pub path: PathBuf,
    /// The cases, in file order.
    pub cases: Vec<Case>,
    /// The file's lines, verbatim.
    pub lines: Vec<String>,
}

/// A parse failure, pinned to a file location.
#[derive(Clone, Debug)]
pub struct FormatError {
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path.display(), self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

/// Parse `.fml` source text. `path` is used only for error messages and
/// [`CaseFile::path`].
pub fn parse_str(path: impl Into<PathBuf>, text: &str) -> Result<CaseFile, FormatError> {
    let path = path.into();
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let err = |line: usize, message: String| FormatError {
        path: path.clone(),
        line,
        message,
    };

    let mut cases: Vec<Case> = Vec::new();
    let mut current: Option<Case> = None;

    for (idx, raw) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("## case ") {
            if let Some(case) = current.take() {
                finish_case(&path, case, &mut cases)?;
            }
            let name = name.trim();
            if name.is_empty() {
                return Err(err(lineno, "`## case` needs a name".into()));
            }
            current = Some(Case {
                name: name.to_owned(),
                header_line: lineno,
                program: String::new(),
                program_line: 0,
                mode: Mode::Standard,
                env: Vec::new(),
                expectation: Expectation::Unblessed,
                expectation_line: None,
                expect_f: None,
                expect_f_line: None,
                differs_from: None,
            });
            continue;
        }
        if line.starts_with("##") {
            return Err(err(
                lineno,
                format!("unrecognised header `{line}` (expected `## case NAME`)"),
            ));
        }
        if line.starts_with('#') {
            continue; // comment
        }
        let Some(case) = current.as_mut() else {
            return Err(err(
                lineno,
                format!("directive `{line}` before any `## case` header"),
            ));
        };
        let Some((key, value)) = line.split_once(':') else {
            return Err(err(
                lineno,
                format!("expected `key: value`, found `{line}`"),
            ));
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "program" => {
                if !case.program.is_empty() {
                    return Err(err(
                        lineno,
                        format!("case {}: duplicate `program:`", case.name),
                    ));
                }
                case.program = value.to_owned();
                case.program_line = lineno;
            }
            "mode" => {
                case.mode = match value {
                    "standard" => Mode::Standard,
                    "pure" => Mode::Pure,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown mode `{other}` (expected `standard` or `pure`)"),
                        ))
                    }
                };
            }
            "env" => {
                let Some((name, ty)) = value.split_once(':') else {
                    return Err(err(
                        lineno,
                        format!("`env:` wants `name : type`, found `{value}`"),
                    ));
                };
                case.env
                    .push((name.trim().to_owned(), ty.trim().to_owned()));
            }
            "expect" => {
                set_expectation(case, Expectation::Type(value.to_owned()), lineno)
                    .map_err(|m| err(lineno, m))?;
            }
            "expect-error" => {
                set_expectation(case, Expectation::ErrorContains(value.to_owned()), lineno)
                    .map_err(|m| err(lineno, m))?;
            }
            "expect-f" => {
                if case.expect_f.is_some() {
                    return Err(err(
                        lineno,
                        format!("case {}: duplicate `expect-f:`", case.name),
                    ));
                }
                case.expect_f = Some(value.to_owned());
                case.expect_f_line = Some(lineno);
            }
            "differs-from" => {
                case.differs_from = Some(value.to_owned());
            }
            other => {
                return Err(err(lineno, format!("unknown directive `{other}:`")));
            }
        }
    }
    if let Some(case) = current.take() {
        finish_case(&path, case, &mut cases)?;
    }

    Ok(CaseFile { path, cases, lines })
}

/// Read and parse a `.fml` file from disk.
pub fn parse_file(path: &Path) -> Result<CaseFile, FormatError> {
    let text = std::fs::read_to_string(path).map_err(|e| FormatError {
        path: path.to_owned(),
        line: 0,
        message: format!("cannot read: {e}"),
    })?;
    parse_str(path, &text)
}

fn set_expectation(case: &mut Case, exp: Expectation, lineno: usize) -> Result<(), String> {
    if case.expectation != Expectation::Unblessed {
        return Err(format!(
            "case {}: more than one `expect:`/`expect-error:`",
            case.name
        ));
    }
    case.expectation = exp;
    case.expectation_line = Some(lineno);
    Ok(())
}

fn finish_case(path: &Path, case: Case, cases: &mut Vec<Case>) -> Result<(), FormatError> {
    if case.program.is_empty() {
        return Err(FormatError {
            path: path.to_owned(),
            line: case.header_line,
            message: format!("case {} has no `program:`", case.name),
        });
    }
    if cases.iter().any(|c| c.name == case.name) {
        return Err(FormatError {
            path: path.to_owned(),
            line: case.header_line,
            message: format!("duplicate case name {}", case.name),
        });
    }
    cases.push(case);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_case() {
        let file = parse_str(
            "t.fml",
            "# header comment\n\
             ## case A9⋆\n\
             env: f : forall a. (a -> a) -> List a -> a\n\
             program: f (choose ~id) ids\n\
             expect: forall a. a -> a\n",
        )
        .unwrap();
        assert_eq!(file.cases.len(), 1);
        let c = &file.cases[0];
        assert_eq!(c.name, "A9⋆");
        assert_eq!(c.mode, Mode::Standard);
        assert_eq!(
            c.env,
            vec![(
                "f".to_owned(),
                "forall a. (a -> a) -> List a -> a".to_owned()
            )]
        );
        assert_eq!(c.program, "f (choose ~id) ids");
        assert_eq!(c.expectation, Expectation::Type("forall a. a -> a".into()));
        assert_eq!(c.expectation_line, Some(5));
    }

    #[test]
    fn program_annotations_keep_their_colons() {
        let file = parse_str(
            "t.fml",
            "## case B1⋆\nprogram: fun (f : forall a. a -> a) -> (f 1, f true)\nexpect: X\n",
        )
        .unwrap();
        assert_eq!(
            file.cases[0].program,
            "fun (f : forall a. a -> a) -> (f 1, f true)"
        );
    }

    #[test]
    fn pure_mode_and_error_expectations() {
        let file = parse_str(
            "t.fml",
            "## case F10†\nmode: pure\nprogram: x\nexpect-error: unbound\n",
        )
        .unwrap();
        assert_eq!(file.cases[0].mode, Mode::Pure);
        assert_eq!(
            file.cases[0].expectation,
            Expectation::ErrorContains("unbound".into())
        );
    }

    #[test]
    fn expect_f_directive_is_parsed() {
        let file = parse_str(
            "t.fml",
            "## case E\nprogram: ~id\nexpect: forall a. a -> a\nexpect-f: id\n",
        )
        .unwrap();
        assert_eq!(file.cases[0].expect_f.as_deref(), Some("id"));
        assert_eq!(file.cases[0].expect_f_line, Some(4));
        // Empty value = present but unblessed.
        let file = parse_str("t.fml", "## case E\nprogram: ~id\nexpect-f:\n").unwrap();
        assert_eq!(file.cases[0].expect_f.as_deref(), Some(""));
        // Duplicates are rejected.
        let e = parse_str(
            "t.fml",
            "## case E\nprogram: ~id\nexpect-f: id\nexpect-f: id\n",
        )
        .unwrap_err();
        assert!(e.to_string().contains("duplicate `expect-f:`"), "{e}");
    }

    #[test]
    fn missing_expectation_is_unblessed() {
        let file = parse_str("t.fml", "## case new\nprogram: id\n").unwrap();
        assert_eq!(file.cases[0].expectation, Expectation::Unblessed);
        assert_eq!(file.cases[0].expectation_line, None);
    }

    #[test]
    fn rejects_malformed_input() {
        for (src, needle) in [
            ("program: id\n", "before any `## case`"),
            ("## case a\nexpect: T\n", "no `program:`"),
            (
                "## case a\nprogram: x\n## case a\nprogram: y\n",
                "duplicate case name",
            ),
            (
                "## case a\nprogram: x\nfrobnicate: y\n",
                "unknown directive",
            ),
            ("## case a\nprogram: x\nmode: strict\n", "unknown mode"),
            (
                "## case a\nprogram: x\nexpect: A\nexpect-error: B\n",
                "more than one",
            ),
            ("## kase a\n", "unrecognised header"),
        ] {
            let e = parse_str("t.fml", src).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "`{src}` gave `{e}`, wanted `{needle}`"
            );
        }
    }

    #[test]
    fn error_locations_are_one_based() {
        let e = parse_str("t.fml", "# c\n\nbad line\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().starts_with("t.fml:3:"));
    }
}
