//! The `elaborate` differential over the Figure 1 corpus and generated
//! terms: every program that infers a type must elaborate — on both
//! engines — to a System F term the `freezeml_systemf` oracle accepts at
//! a type α-equivalent to the inferred scheme, with identical canonical
//! images and agreeing evaluation (see `freezeml_conformance::elab`).

use freezeml_conformance::elab::check_elaboration;
use freezeml_conformance::runner::Engine;
use freezeml_conformance::Mode;
use freezeml_core::{Options, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fml_mode(m: freezeml_corpus::Mode) -> Mode {
    match m {
        freezeml_corpus::Mode::Pure => Mode::Pure,
        freezeml_corpus::Mode::Standard => Mode::Standard,
    }
}

#[test]
fn figure1_corpus_elaborates_on_both_engines() {
    let mut checked = 0usize;
    for e in freezeml_corpus::EXAMPLES {
        let env = freezeml_corpus::runner::env_for(e);
        let opts = freezeml_corpus::runner::options_for(e);
        match check_elaboration(&env, e.src, fml_mode(e.mode), &opts, Engine::Both) {
            Ok(Some(_)) => checked += 1,
            Ok(None) => {} // ill-typed row or pure mode — not this axis
            Err(msg) => panic!("{}: {msg}", e.id),
        }
    }
    // Most of the 49 rows are well typed in standard mode; if this
    // number collapses, the obligation silently stopped running.
    assert!(checked >= 25, "only {checked} corpus rows elaborated");
}

// A compact term generator over the Figure 2 prelude (same shape as the
// engine's differential generator) — rendered to source so the check
// runs the full parse → infer → elaborate → oracle pipeline.
fn random_term<R: Rng>(
    rng: &mut R,
    prelude: &[String],
    depth: usize,
    scope: &mut Vec<String>,
    counter: &mut usize,
) -> Term {
    if depth == 0 {
        return leaf(rng, prelude, scope);
    }
    match rng.gen_range(0..16) {
        0..=3 => leaf(rng, prelude, scope),
        4..=6 => {
            *counter += 1;
            let x = format!("x{counter}");
            scope.push(x.clone());
            let body = random_term(rng, prelude, depth - 1, scope, counter);
            scope.pop();
            Term::lam(x.as_str(), body)
        }
        7..=10 => {
            let f = random_term(rng, prelude, depth - 1, scope, counter);
            let a = random_term(rng, prelude, depth - 1, scope, counter);
            Term::app(f, a)
        }
        11..=13 => {
            *counter += 1;
            let x = format!("x{counter}");
            let rhs = random_term(rng, prelude, depth - 1, scope, counter);
            scope.push(x.clone());
            let body = random_term(rng, prelude, depth - 1, scope, counter);
            scope.pop();
            Term::let_(x.as_str(), rhs, body)
        }
        _ => {
            // `$M` spelled with a parseable name (Term::gen would use an
            // unprintable fresh variable): let g = M in ~g.
            *counter += 1;
            let x = format!("g{counter}");
            let rhs = random_term(rng, prelude, depth - 1, scope, counter);
            Term::Let(
                freezeml_core::Var::named(&x),
                Box::new(rhs),
                Box::new(Term::frozen(x.as_str())),
            )
        }
    }
}

fn leaf<R: Rng>(rng: &mut R, prelude: &[String], scope: &[String]) -> Term {
    let total = 2 * (scope.len() + prelude.len()) + 1;
    let i = rng.gen_range(0..total);
    let name_at = |i: usize| -> &str {
        if i < scope.len() {
            scope[i].as_str()
        } else {
            prelude[i - scope.len()].as_str()
        }
    };
    if i < scope.len() + prelude.len() {
        Term::var(name_at(i))
    } else if i < 2 * (scope.len() + prelude.len()) {
        Term::frozen(name_at(i - scope.len() - prelude.len()))
    } else {
        Term::int(rng.gen_range(0..100))
    }
}

#[test]
fn generated_terms_elaborate_on_both_engines() {
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xE1AB);
    let env = freezeml_corpus::figure2();
    let prelude: Vec<String> = env.iter().map(|(v, _)| v.to_string()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut elaborated = 0usize;
    for case in 0..cases {
        let mut scope = Vec::new();
        let mut counter = 0usize;
        let term = random_term(&mut rng, &prelude, 4, &mut scope, &mut counter);
        // `Term::gen` desugars with globally fresh names; render through
        // the pretty-printer only when it round-trips exactly.
        let src = term.to_string();
        let Ok(reparsed) = freezeml_core::parse_term(&src) else {
            continue;
        };
        if reparsed.to_string() != src {
            continue;
        }
        match check_elaboration(
            &env,
            &src,
            Mode::Standard,
            &Options::default(),
            Engine::Both,
        ) {
            Ok(Some(_)) => elaborated += 1,
            Ok(None) => {}
            Err(msg) => panic!("case {case} (seed {seed}) `{src}`: {msg}"),
        }
    }
    assert!(
        elaborated * 10 >= cases,
        "only {elaborated}/{cases} generated terms elaborated"
    );
}
