//! Property: every Figure 1 example's *inferred* type survives a
//! `pretty → parse → pretty` round trip unchanged — the printer and parser
//! are mutually faithful on exactly the types the corpus produces.
//!
//! Checked two ways: exhaustively over all well-typed rows (the corpus is
//! small enough), and as a sampled property over random rows so the
//! statement also holds under the proptest harness conventions.

use freezeml_core::parse_type;
use freezeml_corpus::{runner, Expected, EXAMPLES};
use proptest::prelude::*;

/// The round trip itself; panics with context on any mismatch.
fn check_roundtrip(idx: usize) {
    let example = &EXAMPLES[idx];
    let result = runner::run_example(example);
    let Ok(ty) = &result.inferred else {
        assert!(
            matches!(example.expected, Expected::Ill),
            "{}: unexpectedly ill-typed",
            example.id
        );
        return;
    };

    // pretty → parse: the printed form must parse back to the same
    // α-equivalence class…
    let printed = ty.to_string();
    let reparsed = parse_type(&printed).unwrap_or_else(|e| {
        panic!(
            "{}: printed type `{printed}` does not parse: {e}",
            example.id
        )
    });
    assert!(
        ty.alpha_eq(&reparsed),
        "{}: `{printed}` reparsed into a different type `{reparsed}`",
        example.id
    );

    // …and printing the reparse must be *literally* identical (the printer
    // is deterministic on a parse of its own output).
    assert_eq!(
        printed,
        reparsed.to_string(),
        "{}: second print differs",
        example.id
    );

    // The canonicalized form round-trips the same way (it is what bless
    // mode writes into golden files).
    let canon = ty.canonicalize();
    let canon_printed = canon.to_string();
    let canon_reparsed = parse_type(&canon_printed)
        .unwrap_or_else(|e| panic!("{}: `{canon_printed}` does not parse: {e}", example.id));
    assert!(
        canon.alpha_eq(&canon_reparsed),
        "{}: canonical `{canon_printed}` drifted",
        example.id
    );
}

#[test]
fn every_figure1_inferred_type_round_trips() {
    for idx in 0..EXAMPLES.len() {
        check_roundtrip(idx);
    }
}

proptest! {
    /// The same statement as a sampled property (random corpus rows).
    #[test]
    fn sampled_figure1_types_round_trip(idx in 0..EXAMPLES.len()) {
        check_roundtrip(idx);
    }
}
