//! The headline conformance suite: every `.fml` golden file under
//! `tests/conformance/` (repository root) must pass against the real
//! checker, cover all 49 Figure 1 rows, and agree with the baselines'
//! differential golden.
//!
//! Bless intended changes with `UPDATE_EXPECT=1 cargo test -p
//! freezeml_conformance`.

use std::path::PathBuf;

use freezeml_conformance::{differential, format, program, runner};
use freezeml_corpus::EXAMPLES;

fn conformance_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/conformance")
}

#[test]
fn golden_corpus_passes() {
    let suite = runner::check_or_bless(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        suite.all_pass(),
        "conformance failures:\n{}",
        suite.render_failures()
    );
    assert_eq!(
        suite.failed(),
        0,
        "0 of {} checks may fail",
        suite.outcomes.len()
    );
}

#[test]
fn covers_every_figure1_row() {
    let suite = runner::run_dir(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    let names = suite.case_names();
    assert_eq!(EXAMPLES.len(), 49, "Figure 1 has 49 rows");
    let missing: Vec<&str> = EXAMPLES
        .iter()
        .map(|e| e.id)
        .filter(|id| !names.contains(id))
        .collect();
    assert!(
        missing.is_empty(),
        "Figure 1 rows without a golden case: {missing:?}"
    );
}

#[test]
fn covers_the_freeze_thaw_variant_pairs() {
    let suite = runner::run_dir(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    let obligations: Vec<&str> = suite
        .outcomes
        .iter()
        .filter(|o| o.name.contains('≠'))
        .map(|o| o.name.as_str())
        .collect();
    // Every well-typed (base, •-variant) pair of Figure 1 must carry a
    // distinctness obligation: A1, A2, A4, A6, C4, F8.
    for pair in [
        "A1• ≠ A1",
        "A2• ≠ A2",
        "A4• ≠ A4",
        "A6• ≠ A6",
        "C4• ≠ C4",
        "F8• ≠ F8",
    ] {
        assert!(
            obligations.contains(&pair),
            "missing freeze/thaw obligation {pair}; have {obligations:?}"
        );
    }
}

#[test]
fn program_golden_corpus_passes() {
    let suite = program::run_dir(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    assert!(
        suite.all_pass(),
        "program conformance failures:\n{}",
        suite.render_failures()
    );
    assert!(
        suite.outcomes.len() >= 15,
        "expected the program corpus to hold at least 15 cases, found {}",
        suite.outcomes.len()
    );
}

#[test]
fn program_golden_corpus_covers_the_required_shapes() {
    let files = program::parse_dir(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    assert!(files.len() >= 10, "want ≥ 10 program golden files");
    let names: Vec<String> = files
        .iter()
        .flat_map(|f| f.cases.iter().map(|c| c.name.clone()))
        .collect();
    for required in [
        "diamond_int",
        "shadow_chain",
        "recovery",
        "frozen_reuse",
        "wide",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "missing required program case {required}; have {names:?}"
        );
    }
    // Almost every case is a genuine multi-binding program.
    let multi = files
        .iter()
        .flat_map(|f| &f.cases)
        .filter(|c| c.expects.len() >= 2)
        .count();
    assert!(multi >= 12, "want ≥ 12 multi-binding cases, found {multi}");
}

#[test]
fn differential_golden_matches_and_shows_the_table1_pattern() {
    let path = conformance_dir().join("differential.fml");
    let report = differential::check_or_bless(&path).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.is_empty(), "differential failures:\n{report}");
}

/// The acceptance check for diff readability: edit a golden expectation
/// in memory and confirm the runner rejects it with a diff naming the
/// case, its location, and both sides.
#[test]
fn edited_expectation_fails_with_a_readable_diff() {
    let path = conformance_dir().join("section_a.fml");
    let text = std::fs::read_to_string(&path).expect("section_a.fml exists");
    let sabotage = "expect: (forall a. a -> a) -> forall a. a -> a";
    assert!(text.contains(sabotage), "A2•'s golden line moved?");
    let edited = text.replace(sabotage, "expect: Int -> Bool");
    let file = format::parse_str(&path, &edited).expect("edited file still parses");
    let suite = runner::run_files(&[file]);
    assert!(!suite.all_pass(), "sabotaged expectation must fail");
    let report = suite.render_failures();
    for needle in [
        "✗ A2•",
        "section_a.fml",
        "program    choose ~id",
        "- expected   Int -> Bool",
        "+ actual     (forall a. a -> a) -> forall a. a -> a",
        "UPDATE_EXPECT=1",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
}

/// The generator example and the checked-in corpus must not drift: the
/// checked-in files contain exactly the Figure 1 case set (names and
/// per-section counts).
#[test]
fn sections_have_paper_counts() {
    let files = runner::parse_dir(&conformance_dir()).unwrap_or_else(|e| panic!("{e}"));
    let count = |name: &str| {
        files
            .iter()
            .find(|f| f.path.file_name().is_some_and(|n| n == name))
            .unwrap_or_else(|| panic!("{name} missing"))
            .cases
            .len()
    };
    assert_eq!(count("section_a.fml"), 16);
    assert_eq!(count("section_b.fml"), 2);
    assert_eq!(count("section_c.fml"), 11);
    assert_eq!(count("section_d.fml"), 5);
    assert_eq!(count("section_e.fml"), 4);
    assert_eq!(count("section_f.fml"), 11);
}
