//! Regenerate the `.fml` golden corpus under `tests/conformance/` from the
//! Figure 1 data in `freezeml_corpus`.
//!
//! ```text
//! cargo run -p freezeml_conformance --example gen_corpus
//! ```
//!
//! The `expect:` lines are the *paper's* reported types (Figure 1), not
//! checker output — the golden files encode the paper as ground truth and
//! the suite checks the implementation against them; this generator never
//! lets checker output overwrite them. `expect-error:` lines for the ✕
//! rows are taken from the current checker's message (the paper only
//! records that the row fails), and the generator refuses to produce a
//! corpus if the checker *accepts* a ✕ row. `differs-from:` obligations
//! are added for every `•`-variant whose base row is also well typed. The
//! derived `differential.fml` is regenerated wholesale.

use std::fmt::Write as _;
use std::path::Path;

use freezeml_conformance::differential;
use freezeml_conformance::format::{parse_str, Case, Expectation, Mode};
use freezeml_conformance::runner::{infer_case, Actual};
use freezeml_corpus::{Example, Expected, EXAMPLES};

fn section_blurb(section: char) -> &'static str {
    match section {
        'A' => "polymorphic instantiation",
        'B' => "inference with polymorphic arguments",
        'C' => "functions on polymorphic lists",
        'D' => "application functions",
        'E' => "η-expansion",
        'F' => "FreezeML programs",
        _ => unreachable!("Figure 1 has sections A-F"),
    }
}

/// The `•`-variant distinctness partner: the base row, when it is itself
/// well typed (E3's base is ✕, so E3• has no partner).
fn differs_from(example: &Example) -> Option<&'static str> {
    if !example.id.ends_with('•') {
        return None;
    }
    EXAMPLES
        .iter()
        .find(|e| e.id == example.base && matches!(e.expected, Expected::Type(_)))
        .map(|e| e.id)
}

/// The checker's error message for a ✕ row (never used for well-typed
/// rows, whose golden types come from the paper).
fn checker_error(e: &Example) -> String {
    let case = Case {
        name: e.id.to_owned(),
        header_line: 0,
        program: e.src.to_owned(),
        program_line: 0,
        mode: match e.mode {
            freezeml_corpus::Mode::Pure => Mode::Pure,
            freezeml_corpus::Mode::Standard => Mode::Standard,
        },
        env: e
            .extra_env
            .iter()
            .map(|(n, t)| (n.to_string(), t.to_string()))
            .collect(),
        expectation: Expectation::Unblessed,
        expectation_line: None,
        expect_f: None,
        expect_f_line: None,
        differs_from: None,
    };
    match infer_case(&case) {
        Actual::Error(msg) => msg,
        other => panic!(
            "{}: the paper marks this row ✕ but the checker produced {}",
            e.id,
            other.display()
        ),
    }
}

fn render_section(section: char) -> String {
    let mut s = format!(
        "# Figure 1, section {section}: {blurb}.\n\
         # Golden conformance cases — see README.md for the format and\n\
         # UPDATE_EXPECT=1 for the bless workflow. `expect:` types are the\n\
         # paper's reported types, up to α-equivalence.\n",
        blurb = section_blurb(section),
    );
    for e in EXAMPLES.iter().filter(|e| e.section == section) {
        let _ = write!(s, "\n## case {}\nprogram: {}\n", e.id, e.src);
        if e.mode == freezeml_corpus::Mode::Pure {
            s.push_str("mode: pure\n");
        }
        for (name, ty) in e.extra_env {
            let _ = writeln!(s, "env: {name} : {ty}");
        }
        match e.expected {
            Expected::Type(ty) => {
                let _ = writeln!(s, "expect: {ty}");
            }
            Expected::Ill => {
                let _ = writeln!(s, "expect-error: {}", checker_error(e));
            }
        }
        if let Some(base_id) = differs_from(e) {
            let _ = writeln!(s, "differs-from: {base_id}");
        }
    }
    s
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/conformance");
    std::fs::create_dir_all(&dir).expect("create tests/conformance");

    for section in ['A', 'B', 'C', 'D', 'E', 'F'] {
        let text = render_section(section);
        let name = format!("section_{}.fml", section.to_ascii_lowercase());
        let parsed = parse_str(dir.join(&name), &text).expect("generated file parses");
        std::fs::write(dir.join(&name), &text).expect("write section file");
        println!("wrote {name} ({} cases)", parsed.cases.len());
    }

    let diff_path = dir.join("differential.fml");
    std::fs::write(
        &diff_path,
        differential::render(&differential::computed_rows()),
    )
    .expect("write differential.fml");
    println!("wrote differential.fml (32 rows)");
}
