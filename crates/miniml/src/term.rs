//! mini-ML terms (Figure 20): `M, N ::= x | λx.M | M N | let x = M in N`
//! plus literals, and the value class of the value restriction.

use freezeml_core::{Lit, Term, Var};
use std::fmt;

/// A mini-ML term.
#[derive(Clone, Debug, PartialEq)]
pub enum MlTerm {
    /// A variable.
    Var(Var),
    /// `λx.M` — no annotation; ML never needs one.
    Lam(Var, Box<MlTerm>),
    /// Application.
    App(Box<MlTerm>, Box<MlTerm>),
    /// `let x = M in N` — the only source of polymorphism.
    Let(Var, Box<MlTerm>, Box<MlTerm>),
    /// A literal.
    Lit(Lit),
}

impl MlTerm {
    /// The variable `x`.
    pub fn var(x: impl Into<Var>) -> MlTerm {
        MlTerm::Var(x.into())
    }

    /// `λx.M`.
    pub fn lam(x: impl Into<Var>, body: MlTerm) -> MlTerm {
        MlTerm::Lam(x.into(), Box::new(body))
    }

    /// `M N`.
    pub fn app(f: MlTerm, a: MlTerm) -> MlTerm {
        MlTerm::App(Box::new(f), Box::new(a))
    }

    /// `let x = M in N`.
    pub fn let_(x: impl Into<Var>, rhs: MlTerm, body: MlTerm) -> MlTerm {
        MlTerm::Let(x.into(), Box::new(rhs), Box::new(body))
    }

    /// An integer literal.
    pub fn int(n: i64) -> MlTerm {
        MlTerm::Lit(Lit::Int(n))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> MlTerm {
        MlTerm::Lit(Lit::Bool(b))
    }

    /// Is this a syntactic value (Figure 20: `x | λx.M | let x = V in W`)?
    pub fn is_value(&self) -> bool {
        match self {
            MlTerm::Var(_) | MlTerm::Lam(_, _) | MlTerm::Lit(_) => true,
            MlTerm::Let(_, r, b) => r.is_value() && b.is_value(),
            MlTerm::App(_, _) => false,
        }
    }

    /// The identity embedding into FreezeML (every ML term is a FreezeML
    /// term; Theorem 1).
    pub fn to_freezeml(&self) -> Term {
        match self {
            MlTerm::Var(x) => Term::Var(*x),
            MlTerm::Lam(x, b) => Term::Lam(*x, Box::new(b.to_freezeml())),
            MlTerm::App(f, a) => Term::App(Box::new(f.to_freezeml()), Box::new(a.to_freezeml())),
            MlTerm::Let(x, r, b) => {
                Term::Let(*x, Box::new(r.to_freezeml()), Box::new(b.to_freezeml()))
            }
            MlTerm::Lit(l) => Term::Lit(*l),
        }
    }

    /// Convert a FreezeML term back to ML, if it is in the ML fragment
    /// (no freezing, no annotations).
    pub fn from_freezeml(t: &Term) -> Option<MlTerm> {
        match t {
            Term::Var(x) => Some(MlTerm::Var(*x)),
            Term::Lam(x, b) => Some(MlTerm::Lam(*x, Box::new(Self::from_freezeml(b)?))),
            Term::App(f, a) => Some(MlTerm::App(
                Box::new(Self::from_freezeml(f)?),
                Box::new(Self::from_freezeml(a)?),
            )),
            Term::Let(x, r, b) => Some(MlTerm::Let(
                *x,
                Box::new(Self::from_freezeml(r)?),
                Box::new(Self::from_freezeml(b)?),
            )),
            Term::Lit(l) => Some(MlTerm::Lit(*l)),
            Term::FrozenVar(_)
            | Term::LamAnn(_, _, _)
            | Term::LetAnn(_, _, _, _)
            | Term::TyApp(_, _) => None,
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            MlTerm::Var(_) | MlTerm::Lit(_) => 1,
            MlTerm::Lam(_, b) => 1 + b.size(),
            MlTerm::App(f, a) => 1 + f.size() + a.size(),
            MlTerm::Let(_, r, b) => 1 + r.size() + b.size(),
        }
    }
}

impl fmt::Display for MlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_freezeml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_classification() {
        assert!(MlTerm::var("x").is_value());
        assert!(MlTerm::lam("x", MlTerm::var("x")).is_value());
        assert!(!MlTerm::app(MlTerm::var("f"), MlTerm::var("x")).is_value());
        assert!(MlTerm::let_("x", MlTerm::int(1), MlTerm::var("x")).is_value());
        assert!(!MlTerm::let_(
            "x",
            MlTerm::app(MlTerm::var("f"), MlTerm::int(1)),
            MlTerm::var("x")
        )
        .is_value());
    }

    #[test]
    fn embedding_round_trips() {
        let t = MlTerm::let_(
            "id",
            MlTerm::lam("x", MlTerm::var("x")),
            MlTerm::app(MlTerm::var("id"), MlTerm::int(1)),
        );
        let f = t.to_freezeml();
        assert_eq!(MlTerm::from_freezeml(&f), Some(t));
    }

    #[test]
    fn non_ml_terms_do_not_embed_back() {
        assert_eq!(MlTerm::from_freezeml(&Term::frozen("x")), None);
        let ann = freezeml_core::parse_term("fun (x : Int) -> x").unwrap();
        assert_eq!(MlTerm::from_freezeml(&ann), None);
    }

    #[test]
    fn display_uses_surface_syntax() {
        let t = MlTerm::lam("x", MlTerm::app(MlTerm::var("f"), MlTerm::var("x")));
        assert_eq!(t.to_string(), "fun x -> f x");
    }
}
