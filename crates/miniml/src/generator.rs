//! Random well-scoped ML term generation.
//!
//! Used by the conservativity tests (Theorem 1: FreezeML agrees with
//! Algorithm W on every ML program) and by the scaling benchmarks. The
//! generator produces closed terms over a configurable prelude; terms are
//! well-scoped by construction but not necessarily well-typed — callers
//! filter with [`crate::w_infer`], and the typed fraction is large enough
//! to be useful (lambdas and lets dominate).

use crate::term::MlTerm;
use freezeml_core::Var;
use rand::Rng;

/// Configuration for the term generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum depth of the generated tree.
    pub max_depth: usize,
    /// Names of prelude constants the generator may reference.
    pub prelude: Vec<String>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 6,
            prelude: ["id", "inc", "plus", "single", "choose"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

/// Generate a random closed ML term.
pub fn random_term<R: Rng>(rng: &mut R, config: &GenConfig) -> MlTerm {
    let mut scope: Vec<Var> = Vec::new();
    let mut counter = 0usize;
    gen(rng, config, config.max_depth, &mut scope, &mut counter)
}

fn fresh_name(counter: &mut usize) -> Var {
    let v = Var::named(format!("x{counter}"));
    *counter += 1;
    v
}

fn gen<R: Rng>(
    rng: &mut R,
    config: &GenConfig,
    depth: usize,
    scope: &mut Vec<Var>,
    counter: &mut usize,
) -> MlTerm {
    if depth == 0 {
        return leaf(rng, config, scope);
    }
    match rng.gen_range(0..10) {
        0 | 1 => leaf(rng, config, scope),
        2..=4 => {
            let x = fresh_name(counter);
            scope.push(x);
            let body = gen(rng, config, depth - 1, scope, counter);
            scope.pop();
            MlTerm::lam(x, body)
        }
        5..=7 => {
            let f = gen(rng, config, depth - 1, scope, counter);
            let a = gen(rng, config, depth - 1, scope, counter);
            MlTerm::app(f, a)
        }
        _ => {
            let x = fresh_name(counter);
            let rhs = gen(rng, config, depth - 1, scope, counter);
            scope.push(x);
            let body = gen(rng, config, depth - 1, scope, counter);
            scope.pop();
            MlTerm::let_(x, rhs, body)
        }
    }
}

fn leaf<R: Rng>(rng: &mut R, config: &GenConfig, scope: &[Var]) -> MlTerm {
    let n_scope = scope.len();
    let n_prelude = config.prelude.len();
    let total = n_scope + n_prelude + 2;
    let i = rng.gen_range(0..total);
    if i < n_scope {
        MlTerm::Var(scope[i])
    } else if i < n_scope + n_prelude {
        MlTerm::var(config.prelude[i - n_scope].as_str())
    } else if i == n_scope + n_prelude {
        MlTerm::int(rng.gen_range(0..100))
    } else {
        MlTerm::bool(rng.gen_bool(0.5))
    }
}

/// Deterministic worst-case ML program: the classic exponential-type
/// let-chain `let x₁ = (x₀, x₀) in … let xₙ = (xₙ₋₁, xₙ₋₁) in xₙ`,
/// used by the scaling benchmarks.
pub fn pair_chain(n: usize) -> MlTerm {
    let mut body = MlTerm::var(format!("p{n}").as_str());
    for i in (0..n).rev() {
        let prev = if i == 0 {
            MlTerm::int(0)
        } else {
            MlTerm::var(format!("p{i}").as_str())
        };
        body = MlTerm::let_(
            format!("p{}", i + 1).as_str(),
            MlTerm::app(MlTerm::app(MlTerm::var("pair"), prev.clone()), prev),
            body,
        );
    }
    body
}

/// A right-nested chain of `n` `let`-bound identity compositions — the
/// friendly (linear) counterpart to [`pair_chain`].
pub fn let_chain(n: usize) -> MlTerm {
    let mut body = MlTerm::app(MlTerm::var(format!("f{n}").as_str()), MlTerm::int(1));
    for i in (1..=n).rev() {
        let prev = if i == 1 {
            MlTerm::lam("x", MlTerm::var("x"))
        } else {
            MlTerm::lam(
                "x",
                MlTerm::app(
                    MlTerm::var(format!("f{}", i - 1).as_str()),
                    MlTerm::var("x"),
                ),
            )
        };
        body = MlTerm::let_(format!("f{i}").as_str(), prev, body);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::TypeEnv;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn prelude() -> TypeEnv {
        let mut g = TypeEnv::new();
        g.push_str("id", "forall a. a -> a").unwrap();
        g.push_str("inc", "Int -> Int").unwrap();
        g.push_str("plus", "Int -> Int -> Int").unwrap();
        g.push_str("single", "forall a. a -> List a").unwrap();
        g.push_str("choose", "forall a. a -> a -> a").unwrap();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        g
    }

    #[test]
    fn generated_terms_are_closed() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = GenConfig::default();
        for _ in 0..200 {
            let t = random_term(&mut rng, &cfg);
            // Closed over the prelude: inference may fail, but never with
            // an unbound-variable error.
            if let Err(freezeml_core::TypeError::UnboundVar(x)) = crate::w_infer(&prelude(), &t) {
                panic!("generator produced unbound variable {x} in {t}");
            }
        }
    }

    #[test]
    fn a_decent_fraction_typechecks() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GenConfig::default();
        let mut ok = 0;
        for _ in 0..500 {
            if crate::w_infer(&prelude(), &random_term(&mut rng, &cfg)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 50, "only {ok}/500 generated terms typed");
    }

    #[test]
    fn pair_chain_types_exponentially() {
        let t = pair_chain(6);
        let (_, ty) = crate::w_infer(&prelude(), &t).unwrap();
        // Type size is exponential in the chain length.
        assert!(ty.size() > 2usize.pow(6));
    }

    #[test]
    fn let_chain_types_linearly() {
        let t = let_chain(30);
        let (_, ty) = crate::w_infer(&prelude(), &t).unwrap();
        assert_eq!(ty.canonicalize().to_string(), "Int");
    }
}
