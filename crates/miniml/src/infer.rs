//! Algorithm W with the value restriction (Figure 21).
//!
//! The classic Damas–Milner algorithm over monotypes and type schemes.
//! Every type variable in play is a unification variable; schemes arise
//! only by `gen` at `let` (and only for syntactic values — Wright's value
//! restriction, which the paper builds in).

use crate::term::MlTerm;
use freezeml_core::{Subst, Term, TyVar, Type, TypeEnv, TypeError};

/// First-order unification on monotypes.
///
/// # Errors
///
/// [`TypeError::Mismatch`] on constructor clashes, [`TypeError::Occurs`] on
/// the occurs check, and [`TypeError::PolyNotAllowed`] if a quantified type
/// leaks in (which would indicate a caller bug — ML types are monotypes).
pub fn unify_mono(a: &Type, b: &Type) -> Result<Subst, TypeError> {
    match (a, b) {
        (Type::Var(x), Type::Var(y)) if x == y => Ok(Subst::identity()),
        (Type::Var(x), t) | (t, Type::Var(x)) => {
            if t.occurs_free(x) {
                Err(TypeError::Occurs {
                    var: *x,
                    ty: t.clone(),
                })
            } else if !t.is_monotype() {
                Err(TypeError::PolyNotAllowed { ty: t.clone() })
            } else {
                Ok(Subst::singleton(*x, t.clone()))
            }
        }
        (Type::Con(c, xs), Type::Con(d, ys)) => {
            if c != d || xs.len() != ys.len() {
                return Err(TypeError::Mismatch {
                    left: a.clone(),
                    right: b.clone(),
                });
            }
            let mut s = Subst::identity();
            for (x, y) in xs.iter().zip(ys) {
                let s2 = unify_mono(&s.apply(x), &s.apply(y))?;
                s = s2.compose(&s);
            }
            Ok(s)
        }
        _ => Err(TypeError::PolyNotAllowed { ty: a.clone() }),
    }
}

/// `gen(∆, S, M)` (Figure 21): quantify the free variables of `S` not free
/// in `Γ`, in order of first appearance — but only for syntactic values.
pub fn generalize(gamma: &TypeEnv, ty: &Type, term: &MlTerm) -> Type {
    if !term.is_value() {
        return ty.clone();
    }
    let env_ftv = gamma.ftv();
    let vars: Vec<TyVar> = ty
        .ftv()
        .into_iter()
        .filter(|v| !env_ftv.contains(v))
        .collect();
    Type::foralls(vars, ty.clone())
}

/// Instantiate a type scheme's quantifiers with fresh variables
/// (rule ML-Var), returning the instantiation pairs for elaboration.
pub fn instantiate(scheme: &Type) -> (Vec<(TyVar, Type)>, Type) {
    let (vars, body) = scheme.split_foralls();
    let pairs: Vec<(TyVar, Type)> = vars
        .into_iter()
        .map(|a| (a, Type::Var(TyVar::fresh())))
        .collect();
    let ty = Subst::from_pairs(pairs.clone()).apply(body);
    (pairs, ty)
}

/// Algorithm W: infer the monotype of an ML term.
///
/// # Errors
///
/// [`TypeError::UnboundVar`] and unification failures.
pub fn w_infer(gamma: &TypeEnv, term: &MlTerm) -> Result<(Subst, Type), TypeError> {
    match term {
        MlTerm::Var(x) => {
            let scheme = gamma.lookup(x).cloned().ok_or(TypeError::UnboundVar(*x))?;
            let (_, ty) = instantiate(&scheme);
            Ok((Subst::identity(), ty))
        }
        MlTerm::Lit(l) => Ok((Subst::identity(), l.ty())),
        MlTerm::Lam(x, body) => {
            let a = TyVar::fresh();
            let g2 = gamma.extended(*x, Type::Var(a));
            let (s1, t1) = w_infer(&g2, body)?;
            let param = s1.apply(&Type::Var(a));
            Ok((s1, Type::arrow(param, t1)))
        }
        MlTerm::App(f, arg) => {
            let (s1, t1) = w_infer(gamma, f)?;
            let (s2, t2) = w_infer(&s1.apply_env(gamma), arg)?;
            let b = TyVar::fresh();
            let s3 = unify_mono(&s2.apply(&t1), &Type::arrow(t2, Type::Var(b)))?;
            let ty = s3.apply(&Type::Var(b));
            Ok((s3.compose(&s2).compose(&s1), ty))
        }
        MlTerm::Let(x, rhs, body) => {
            let (s1, t1) = w_infer(gamma, rhs)?;
            let g1 = s1.apply_env(gamma);
            let scheme = generalize(&g1, &t1, rhs);
            let g2 = g1.extended(*x, scheme);
            let (s2, t2) = w_infer(&g2, body)?;
            Ok((s2.compose(&s1), t2))
        }
    }
}

/// Convenience: infer against a prelude given as a FreezeML [`Term`]-free
/// environment, returning the canonicalised type.
///
/// # Errors
///
/// Same as [`w_infer`].
pub fn w_infer_type(gamma: &TypeEnv, term: &MlTerm) -> Result<Type, TypeError> {
    let (_, ty) = w_infer(gamma, term)?;
    Ok(ty.canonicalize())
}

/// Check whether a FreezeML term lies in the ML fragment and types under W.
/// Used by the Table 1 harness's plain-ML baseline.
pub fn ml_accepts(gamma: &TypeEnv, term: &Term) -> bool {
    match MlTerm::from_freezeml(term) {
        Some(ml) => w_infer(gamma, &ml).is_ok(),
        None => false,
    }
}

/// The outcome of running a surface-syntax program through plain ML.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MlOutcome {
    /// In the ML fragment and well-typed under Algorithm W.
    Typed,
    /// In the ML fragment but ill-typed.
    IllTyped,
    /// Uses FreezeML-only constructs (freeze or annotations) — not an ML
    /// program at all.
    NotMl,
}

/// Parse a surface program and classify it under plain ML (the Table 1
/// baseline). Freeze/`$`/`@` forms make a program [`MlOutcome::NotMl`]
/// because their desugarings use frozen variables.
pub fn ml_accepts_src(gamma: &TypeEnv, src: &str) -> MlOutcome {
    let term = match freezeml_core::parse_term(src) {
        Ok(t) => t,
        Err(_) => return MlOutcome::NotMl,
    };
    match MlTerm::from_freezeml(&term) {
        Some(ml) => {
            if w_infer(gamma, &ml).is_ok() {
                MlOutcome::Typed
            } else {
                MlOutcome::IllTyped
            }
        }
        None => MlOutcome::NotMl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infer_str(gamma: &TypeEnv, src: &str) -> Result<String, TypeError> {
        let t = freezeml_core::parse_term(src).unwrap();
        let ml = MlTerm::from_freezeml(&t).expect("test term must be in the ML fragment");
        w_infer_type(gamma, &ml).map(|t| t.to_string())
    }

    fn prelude() -> TypeEnv {
        let mut g = TypeEnv::new();
        g.push_str("inc", "Int -> Int").unwrap();
        g.push_str("plus", "Int -> Int -> Int").unwrap();
        g.push_str("single", "forall a. a -> List a").unwrap();
        g.push_str("choose", "forall a. a -> a -> a").unwrap();
        g.push_str("id", "forall a. a -> a").unwrap();
        g
    }

    #[test]
    fn basic_inference() {
        let g = prelude();
        assert_eq!(infer_str(&g, "fun x -> x").unwrap(), "a -> a");
        assert_eq!(infer_str(&g, "inc 1").unwrap(), "Int");
        assert_eq!(
            infer_str(&g, "fun f x -> f (f x)").unwrap(),
            "(a -> a) -> a -> a"
        );
    }

    #[test]
    fn let_poly_with_pair() {
        let mut g = prelude();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        assert_eq!(
            infer_str(&g, "let i = fun x -> x in (i 1, i true)").unwrap(),
            "Int * Bool"
        );
    }

    #[test]
    fn lambda_bound_vars_are_monomorphic() {
        let mut g = prelude();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        assert!(infer_str(&g, "fun i -> (i 1, i true)").is_err());
    }

    #[test]
    fn occurs_check() {
        let g = prelude();
        // λx. x x — classic occurs failure.
        assert!(matches!(
            infer_str(&g, "fun x -> x x"),
            Err(TypeError::Occurs { .. })
        ));
    }

    #[test]
    fn value_restriction_blocks_generalising_applications() {
        let mut g = prelude();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        // let i = choose id id (a non-value) in (i 1, i true) — must fail.
        assert!(infer_str(&g, "let i = choose id id in (i 1, i true)").is_err());
        // The value version is fine.
        assert!(infer_str(&g, "let i = id in (i 1, i true)").is_ok());
    }

    #[test]
    fn single_choose_is_the_ml_classic() {
        // single choose : List (a → a → a) — §1's motivating example.
        let g = prelude();
        assert_eq!(
            infer_str(&g, "single choose").unwrap(),
            "List (a -> a -> a)"
        );
    }

    #[test]
    fn unify_mono_rejects_polytypes() {
        let poly = freezeml_core::parse_type("forall a. a -> a").unwrap();
        let v = Type::Var(TyVar::fresh());
        assert!(matches!(
            unify_mono(&v, &poly),
            Err(TypeError::PolyNotAllowed { .. })
        ));
    }

    #[test]
    fn unify_mono_solves_systems() {
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        let l = Type::arrow(Type::Var(a), Type::Var(b));
        let r = Type::arrow(Type::list(Type::Var(b)), Type::list(Type::int()));
        let s = unify_mono(&l, &r).unwrap();
        assert_eq!(s.apply(&Type::Var(a)), Type::list(Type::list(Type::int())));
        assert_eq!(s.apply(&Type::Var(b)), Type::list(Type::int()));
    }

    #[test]
    fn generalize_respects_env_and_values() {
        let g = TypeEnv::new().extended("y", Type::Var(TyVar::named("a")));
        let ty = Type::arrow(Type::var("a"), Type::var("b"));
        let v = MlTerm::lam("x", MlTerm::var("x"));
        let gen = generalize(&g, &ty, &v);
        // Only b is generalised; a is free in Γ.
        assert_eq!(gen.to_string(), "forall b. a -> b");
        let nv = MlTerm::app(MlTerm::var("f"), MlTerm::var("x"));
        assert_eq!(generalize(&g, &ty, &nv), ty);
    }
}
