//! ML → System F elaboration (Figure 22, Theorem 8).
//!
//! The translation is defined on typing derivations; operationally we run
//! Algorithm W and record, at each node, the data the translation needs —
//! instantiations at variables and generalised variables at `let` — then
//! resolve all recorded types with the final composed substitution (which
//! maps every variable to its fully resolved image).
//!
//! `C⟦x⟧ = x δ(∆′)`, `C⟦λx.M⟧ = λx^S.C⟦M⟧`, `C⟦M N⟧` homomorphic, and
//! `C⟦let x = M in N⟧ = let x^∀∆′.S = Λ∆′.C⟦M⟧ in C⟦N⟧`.

use crate::infer::{generalize, instantiate, unify_mono};
use crate::term::MlTerm;
use freezeml_core::{Subst, TyVar, Type, TypeEnv, TypeError};
use freezeml_systemf::FTerm;

/// Elaborate an ML term into System F, returning the System F term and its
/// type. Residual unification variables (e.g. the `a` in `λx.x : a → a`)
/// are grounded to `Int` so the result typechecks in a closed context.
///
/// # Errors
///
/// Same as [`crate::w_infer`].
pub fn elaborate(gamma: &TypeEnv, term: &MlTerm) -> Result<(FTerm, Type), TypeError> {
    let (s, ty, f) = go(gamma, term)?;
    let f = apply_scoped(&f, &s);
    let ty = s.apply(&ty);
    // Ground residual flexibles.
    let residuals: Vec<TyVar> = collect_flexibles(&f, &ty);
    let ground = Subst::from_pairs(residuals.into_iter().map(|v| (v, Type::int())));
    Ok((apply_scoped(&f, &ground), ground.apply(&ty)))
}

/// Apply a substitution to every annotation, respecting term-level `Λ`
/// binders: a variable bound by an enclosing `TyLam` is rigid inside it.
fn apply_scoped(f: &FTerm, s: &Subst) -> FTerm {
    match f {
        FTerm::Var(_) | FTerm::Lit(_) => f.clone(),
        FTerm::Lam(x, t, b) => FTerm::Lam(*x, s.apply(t), Box::new(apply_scoped(b, s))),
        FTerm::App(m, n) => FTerm::App(Box::new(apply_scoped(m, s)), Box::new(apply_scoped(n, s))),
        FTerm::TyLam(a, b) => {
            let inner = s.without(a);
            FTerm::TyLam(*a, Box::new(apply_scoped(b, &inner)))
        }
        FTerm::TyApp(m, t) => FTerm::TyApp(Box::new(apply_scoped(m, s)), s.apply(t)),
    }
}

/// Free flexible variables of all types in the term, respecting `Λ` binders.
fn collect_flexibles(f: &FTerm, ty: &Type) -> Vec<TyVar> {
    fn push(t: &Type, bound: &[TyVar], out: &mut Vec<TyVar>) {
        for v in t.ftv() {
            if v.is_fresh() && !bound.contains(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }
    fn walk(f: &FTerm, bound: &mut Vec<TyVar>, out: &mut Vec<TyVar>) {
        match f {
            FTerm::Var(_) | FTerm::Lit(_) => {}
            FTerm::Lam(_, t, b) => {
                push(t, bound, out);
                walk(b, bound, out);
            }
            FTerm::App(m, n) => {
                walk(m, bound, out);
                walk(n, bound, out);
            }
            FTerm::TyLam(a, b) => {
                bound.push(*a);
                walk(b, bound, out);
                bound.pop();
            }
            FTerm::TyApp(m, t) => {
                walk(m, bound, out);
                push(t, bound, out);
            }
        }
    }
    let mut out = Vec::new();
    push(ty, &[], &mut out);
    let mut bound = Vec::new();
    walk(f, &mut bound, &mut out);
    out
}

fn go(gamma: &TypeEnv, term: &MlTerm) -> Result<(Subst, Type, FTerm), TypeError> {
    match term {
        MlTerm::Var(x) => {
            let scheme = gamma.lookup(x).cloned().ok_or(TypeError::UnboundVar(*x))?;
            let (pairs, ty) = instantiate(&scheme);
            let f = FTerm::tyapps(FTerm::var(*x), pairs.into_iter().map(|(_, t)| t));
            Ok((Subst::identity(), ty, f))
        }
        MlTerm::Lit(l) => Ok((Subst::identity(), l.ty(), FTerm::Lit(*l))),
        MlTerm::Lam(x, body) => {
            let a = TyVar::fresh();
            let g2 = gamma.extended(*x, Type::Var(a));
            let (s1, t1, fb) = go(&g2, body)?;
            let param = s1.apply(&Type::Var(a));
            let f = FTerm::lam(*x, param.clone(), fb);
            Ok((s1, Type::arrow(param, t1), f))
        }
        MlTerm::App(m, n) => {
            let (s1, t1, fm) = go(gamma, m)?;
            let (s2, t2, fn_) = go(&s1.apply_env(gamma), n)?;
            let b = TyVar::fresh();
            let s3 = unify_mono(&s2.apply(&t1), &Type::arrow(t2, Type::Var(b)))?;
            let ty = s3.apply(&Type::Var(b));
            Ok((s3.compose(&s2).compose(&s1), ty, FTerm::app(fm, fn_)))
        }
        MlTerm::Let(x, rhs, body) => {
            let (s1, t1, fr) = go(gamma, rhs)?;
            let g1 = s1.apply_env(gamma);
            let scheme = generalize(&g1, &t1, rhs);
            let (gen_vars, _) = scheme.split_foralls();
            let g2 = g1.extended(*x, scheme.clone());
            let (s2, t2, fb) = go(&g2, body)?;
            let f = FTerm::let_(*x, scheme, FTerm::tylams(gen_vars, fr), fb);
            Ok((s2.compose(&s1), t2, f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::KindEnv;
    use freezeml_systemf::typecheck;

    fn prelude() -> TypeEnv {
        let mut g = TypeEnv::new();
        g.push_str("inc", "Int -> Int").unwrap();
        g.push_str("single", "forall a. a -> List a").unwrap();
        g.push_str("choose", "forall a. a -> a -> a").unwrap();
        g.push_str("pair", "forall a b. a -> b -> a * b").unwrap();
        g
    }

    fn elaborates_and_preserves(src: &str) {
        let g = prelude();
        let term = MlTerm::from_freezeml(&freezeml_core::parse_term(src).unwrap()).unwrap();
        let (f, ty) = elaborate(&g, &term).unwrap();
        let fty = typecheck(&KindEnv::new(), &g, &f)
            .unwrap_or_else(|e| panic!("elaboration of `{src}` ill-typed: {e}\n  {f}"));
        assert!(
            fty.alpha_eq(&ty),
            "type preservation failed for `{src}`: {fty} vs {ty}"
        );
    }

    #[test]
    fn theorem8_on_basic_programs() {
        for src in [
            "fun x -> x",
            "inc 1",
            "let i = fun x -> x in i 1",
            "let i = fun x -> x in (i 1, i true)",
            "single choose",
            "let s = fun x -> single x in s 3",
            "fun f x -> f (f x)",
            "let k = fun x y -> x in (k 1 true, k true 1)",
        ] {
            elaborates_and_preserves(src);
        }
    }

    #[test]
    fn let_elaborates_to_type_abstraction() {
        let g = prelude();
        let term =
            MlTerm::from_freezeml(&freezeml_core::parse_term("let i = fun x -> x in i 1").unwrap())
                .unwrap();
        let (f, ty) = elaborate(&g, &term).unwrap();
        assert_eq!(ty, Type::int());
        // Shape: (λi^∀a.a→a. i [Int] 1) (Λa. λx^a. x)
        let printed = f.to_string();
        assert!(printed.contains("tyfun"), "expected a Λ in {printed}");
        assert!(
            printed.contains("[Int]"),
            "expected a type application in {printed}"
        );
    }

    #[test]
    fn non_value_let_has_no_type_abstraction() {
        let g = prelude();
        let term = MlTerm::from_freezeml(&freezeml_core::parse_term("let y = inc 1 in y").unwrap())
            .unwrap();
        let (f, ty) = elaborate(&g, &term).unwrap();
        assert_eq!(ty, Type::int());
        assert!(!f.to_string().contains("tyfun"));
    }

    #[test]
    fn elaborated_programs_evaluate() {
        use freezeml_systemf::{eval, prelude::runtime_env, Value};
        let g = prelude();
        let term = MlTerm::from_freezeml(
            &freezeml_core::parse_term("let i = fun x -> x in (i 1, i true)").unwrap(),
        )
        .unwrap();
        let (f, _) = elaborate(&g, &term).unwrap();
        let v = eval(&runtime_env(), &f).unwrap();
        assert_eq!(
            v,
            Value::Pair(Box::new(Value::Int(1)), Box::new(Value::Bool(true)))
        );
    }
}
