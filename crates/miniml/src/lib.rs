//! # mini-ML (paper Appendix B.2)
//!
//! The ML core language FreezeML extends: unannotated lambda calculus with
//! `let`, Damas–Milner typing split into monotypes and type schemes, and
//! the value restriction (Figures 20–21). This crate provides:
//!
//! * [`MlTerm`] — the term syntax, embeddable into FreezeML
//!   ([`MlTerm::to_freezeml`]) since every ML term *is* a FreezeML term;
//! * [`w_infer`] — classic Algorithm W with the value restriction, the
//!   baseline FreezeML's inference is compared against (Theorem 1:
//!   agreement on all ML programs);
//! * [`elaborate`] — the type-directed translation into System F
//!   (Figure 22, Theorem 8);
//! * [`generator`] — a random well-scoped term generator used by the
//!   conservativity property tests and the benchmarks.
//!
//! ```
//! use freezeml_miniml::{w_infer, MlTerm};
//! use freezeml_core::TypeEnv;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // let id = λx.x in id id
//! let term = MlTerm::let_(
//!     "id",
//!     MlTerm::lam("x", MlTerm::var("x")),
//!     MlTerm::app(MlTerm::var("id"), MlTerm::var("id")),
//! );
//! let (_, ty) = w_infer(&TypeEnv::new(), &term)?;
//! assert_eq!(ty.canonicalize().to_string(), "a -> a");
//! # Ok(())
//! # }
//! ```

pub mod elab;
pub mod generator;
pub mod infer;
pub mod term;

pub use elab::elaborate;
pub use infer::{ml_accepts, ml_accepts_src, unify_mono, w_infer, MlOutcome};
pub use term::MlTerm;
