//! Property tests for the Algorithm W baseline (Appendix B.2): mono
//! unification laws and generalisation/instantiation round trips.

use freezeml_core::{Subst, TyVar, Type, TypeEnv};
use freezeml_miniml::{unify_mono, w_infer, MlTerm};
use proptest::prelude::*;

fn flex_pool() -> Vec<TyVar> {
    ["f0", "f1", "f2"].iter().map(TyVar::named).collect()
}

/// Monotypes over the flexible pool.
fn arb_mono() -> impl Strategy<Value = Type> {
    let mut leaves = vec![Just(Type::int()).boxed(), Just(Type::bool()).boxed()];
    for v in flex_pool() {
        leaves.push(Just(Type::Var(v)).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::prod(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

/// Ground (closed) monotypes.
fn arb_ground_mono() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![Just(Type::int()), Just(Type::bool())];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Type::arrow(a, b)),
            inner.prop_map(Type::list),
        ]
    })
}

fn arb_ground_subst() -> impl Strategy<Value = Subst> {
    proptest::collection::vec(arb_ground_mono(), 3)
        .prop_map(|tys| Subst::from_pairs(flex_pool().into_iter().zip(tys)))
}

proptest! {
    /// A successful mono-unifier equalises the two sides.
    #[test]
    fn unify_mono_equalises(a in arb_mono(), b in arb_mono()) {
        if let Ok(s) = unify_mono(&a, &b) {
            prop_assert_eq!(s.apply(&a), s.apply(&b));
        }
    }

    /// Mono unification succeeds on substitution instances.
    #[test]
    fn unify_mono_complete_on_instances(a in arb_mono(), s in arb_ground_subst()) {
        let b = s.apply(&a);
        prop_assert!(unify_mono(&a, &b).is_ok(), "{} vs {}", a, b);
    }

    /// Mono unification is symmetric in success.
    #[test]
    fn unify_mono_symmetric(a in arb_mono(), b in arb_mono()) {
        prop_assert_eq!(unify_mono(&a, &b).is_ok(), unify_mono(&b, &a).is_ok());
    }

    /// Unifying a type with itself is the identity (no bindings needed).
    #[test]
    fn unify_mono_reflexive(a in arb_mono()) {
        let s = unify_mono(&a, &a).unwrap();
        prop_assert_eq!(s.apply(&a), a);
    }
}

#[test]
fn w_is_deterministic_up_to_alpha() {
    let mut g = TypeEnv::new();
    g.push_str("single", "forall a. a -> List a").unwrap();
    let t = MlTerm::let_(
        "s",
        MlTerm::lam("x", MlTerm::app(MlTerm::var("single"), MlTerm::var("x"))),
        MlTerm::app(MlTerm::var("s"), MlTerm::int(1)),
    );
    let (_, t1) = w_infer(&g, &t).unwrap();
    let (_, t2) = w_infer(&g, &t).unwrap();
    assert!(t1.canonicalize().alpha_eq(&t2.canonicalize()));
}

#[test]
fn w_types_are_always_monotypes() {
    // W never produces a quantified result type (schemes live in Γ only).
    let mut g = TypeEnv::new();
    g.push_str("id", "forall a. a -> a").unwrap();
    g.push_str("single", "forall a. a -> List a").unwrap();
    for src in [
        "fun x -> x",
        "let i = fun x -> x in i",
        "single id",
        "let s = single in s",
    ] {
        let term = freezeml_core::parse_term(src).unwrap();
        let ml = MlTerm::from_freezeml(&term).unwrap();
        let (_, ty) = w_infer(&g, &ml).unwrap();
        assert!(ty.is_monotype(), "{src} gave {ty}");
    }
}
