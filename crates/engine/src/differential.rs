//! Differential testing: the paper-literal `core` engine as oracle for
//! the union-find engine.
//!
//! `core` is a line-by-line transcription of Figures 15–16 and is kept as
//! the ground truth for soundness and principality; this module runs the
//! same programs (the 49-row Figure 1 corpus, and property-generated
//! terms and type pairs from the test suite) through both engines and
//! demands agreement:
//!
//! * success/failure must coincide;
//! * on success, the principal types must be α-equivalent;
//! * on failure, the error *class* must coincide (payload types may be
//!   rendered under different fresh names, so messages are not compared).

use crate::store::Store;
use freezeml_core::infer::ProgramError;
use freezeml_core::{KindEnv, Options, RefinedEnv, TyVar, Type, TypeEnv, TypeError};
use fxhash::FxHashMap;
use std::fmt;

/// The class of a type error — the paper's failure modes, stripped of
/// payloads so that two engines reporting under different fresh names
/// still compare equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ErrorClass {
    /// `TypeError::UnboundVar`.
    UnboundVar,
    /// `TypeError::UnboundTyVar`.
    UnboundTyVar,
    /// `TypeError::ConArity`.
    ConArity,
    /// `TypeError::Mismatch`.
    Mismatch,
    /// `TypeError::Occurs`.
    Occurs,
    /// `TypeError::PolyNotAllowed`.
    PolyNotAllowed,
    /// `TypeError::SkolemEscape`.
    SkolemEscape,
    /// `TypeError::AnnotationEscape`.
    AnnotationEscape,
    /// `TypeError::PolyVarInEnv`.
    PolyVarInEnv,
    /// `TypeError::ShadowedTyVar`.
    ShadowedTyVar,
    /// `TypeError::CannotTypeApply`.
    CannotTypeApply,
    /// A parse error (only reachable through `*_program` entry points;
    /// both engines share the parser, so it always agrees).
    Parse,
}

/// Classify a type error.
pub fn class_of(e: &TypeError) -> ErrorClass {
    match e {
        TypeError::UnboundVar(_) => ErrorClass::UnboundVar,
        TypeError::UnboundTyVar(_) => ErrorClass::UnboundTyVar,
        TypeError::ConArity { .. } => ErrorClass::ConArity,
        TypeError::Mismatch { .. } => ErrorClass::Mismatch,
        TypeError::Occurs { .. } => ErrorClass::Occurs,
        TypeError::PolyNotAllowed { .. } => ErrorClass::PolyNotAllowed,
        TypeError::SkolemEscape { .. } => ErrorClass::SkolemEscape,
        TypeError::AnnotationEscape { .. } => ErrorClass::AnnotationEscape,
        TypeError::PolyVarInEnv { .. } => ErrorClass::PolyVarInEnv,
        TypeError::ShadowedTyVar { .. } => ErrorClass::ShadowedTyVar,
        TypeError::CannotTypeApply { .. } => ErrorClass::CannotTypeApply,
    }
}

/// Classify a program error.
pub fn class_of_program(e: &ProgramError) -> ErrorClass {
    match e {
        ProgramError::Parse(_) => ErrorClass::Parse,
        ProgramError::Type(t) => class_of(t),
    }
}

/// A recorded disagreement between the two engines.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// What was run (source text or a description of the unify problem).
    pub input: String,
    /// The oracle's verdict, rendered.
    pub core: String,
    /// The union-find engine's verdict, rendered.
    pub uf: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "engines disagree on `{}`:\n  core: {}\n  uf:   {}",
            self.input, self.core, self.uf
        )
    }
}

fn render(r: &Result<Type, ProgramError>) -> String {
    match r {
        Ok(t) => t.to_string(),
        Err(e) => format!("✕ {:?} ({e})", class_of_program(e)),
    }
}

/// α-equivalence up to a bijective renaming of *invented* free variables
/// (leftover flexibles, printed `%n`). The two engines draw fresh
/// variables from the same global counter but at different moments, so
/// their residual flexibles never carry the same `%n`; the principal
/// types are nevertheless the same, because the identity of a residual
/// flexible is arbitrary. Source-named free variables must still match
/// exactly, and bound variables follow ordinary α-equivalence.
pub fn types_equivalent(a: &Type, b: &Type) -> bool {
    fn go(
        a: &Type,
        b: &Type,
        env: &mut Vec<(TyVar, TyVar)>,
        flex: &mut Vec<(TyVar, TyVar)>,
    ) -> bool {
        match (a, b) {
            (Type::Var(x), Type::Var(y)) => {
                for (l, r) in env.iter().rev() {
                    if l == x || r == y {
                        return l == x && r == y;
                    }
                }
                if x.is_named() || y.is_named() {
                    return x == y;
                }
                // Both invented and free: bijection.
                for (l, r) in flex.iter() {
                    if l == x || r == y {
                        return l == x && r == y;
                    }
                }
                flex.push((*x, *y));
                true
            }
            (Type::Con(c, xs), Type::Con(d, ys)) => {
                c == d
                    && xs.len() == ys.len()
                    && xs.iter().zip(ys).all(|(x, y)| go(x, y, env, flex))
            }
            (Type::Forall(x, bx), Type::Forall(y, by)) => {
                env.push((*x, *y));
                let r = go(bx, by, env, flex);
                env.pop();
                r
            }
            _ => false,
        }
    }
    go(a, b, &mut Vec::new(), &mut Vec::new())
}

/// Do the two verdicts agree (equivalent types, or same error class)?
/// Types are compared with [`types_equivalent`], so pass *uncanonicalised*
/// outputs — canonicalisation bakes arbitrary letter choices into named
/// variables, which this comparison deliberately ignores for invented
/// variables only.
pub fn verdicts_agree(core: &Result<Type, ProgramError>, uf: &Result<Type, ProgramError>) -> bool {
    match (core, uf) {
        (Ok(a), Ok(b)) => types_equivalent(a, b),
        (Err(ea), Err(eb)) => class_of_program(ea) == class_of_program(eb),
        _ => false,
    }
}

/// Run one program through both engines and compare. On agreement,
/// returns the oracle's canonicalised outcome (the one expectations are
/// checked against).
pub fn compare_program(
    gamma: &TypeEnv,
    src: &str,
    opts: &Options,
) -> Result<Result<Type, ProgramError>, Disagreement> {
    let term = match freezeml_core::parse_term(src) {
        Ok(t) => t,
        // Shared parser: a parse failure is the same failure for both.
        Err(e) => return Ok(Err(ProgramError::Parse(e))),
    };
    compare_term(gamma, &term, opts).map_err(|d| Disagreement {
        input: src.to_string(),
        ..d
    })
}

/// Run one already-parsed term through both engines and compare
/// (end-to-end: well-scopedness, environment formation, inference).
/// Raw outputs are compared with [`types_equivalent`]; on agreement the
/// oracle's canonicalised outcome is returned.
pub fn compare_term(
    gamma: &TypeEnv,
    term: &freezeml_core::Term,
    opts: &Options,
) -> Result<Result<Type, ProgramError>, Disagreement> {
    let core = freezeml_core::infer_term(gamma, term, opts)
        .map(|o| o.ty)
        .map_err(ProgramError::Type);
    let uf = crate::infer::infer_term(gamma, term, opts)
        .map(|o| o.ty)
        .map_err(ProgramError::Type);
    if verdicts_agree(&core, &uf) {
        Ok(core.map(|t| t.canonicalize()))
    } else {
        let canon = |r: &Result<Type, ProgramError>| match r {
            Ok(t) => Ok(t.canonicalize()),
            Err(e) => Err(e.clone()),
        };
        Err(Disagreement {
            input: term.to_string(),
            core: render(&canon(&core)),
            uf: render(&canon(&uf)),
        })
    }
}

/// Run the whole 49-row Figure 1 corpus through both engines; returns
/// every disagreement (empty = the engines agree on the paper's entire
/// evaluation, including which rows fail and with what error class).
pub fn compare_corpus() -> Vec<Disagreement> {
    let mut out = Vec::new();
    for e in freezeml_corpus::EXAMPLES {
        let env = freezeml_corpus::runner::env_for(e);
        let opts = freezeml_corpus::runner::options_for(e);
        if let Err(d) = compare_program(&env, e.src, &opts) {
            out.push(Disagreement {
                input: format!("{} · {}", e.id, d.input),
                ..d
            });
        }
    }
    out
}

/// A unification problem over an explicit flexible environment, for
/// property-based differential testing: `theta` gives each flexible
/// variable its kind; every other free variable of the two types is
/// rigid.
pub fn compare_unify(theta: &RefinedEnv, a: &Type, b: &Type) -> Result<(), Disagreement> {
    let describe = || format!("{a}  ≟  {b}   [Θ = {theta}]");
    // Every free variable outside Θ is rigid.
    let delta: KindEnv = a
        .ftv()
        .into_iter()
        .chain(b.ftv())
        .filter(|v| !theta.contains(v))
        .collect();
    // Oracle.
    let core = freezeml_core::unify(&delta, theta, a, b);
    // Union-find engine: route the Θ variables to fresh cells.
    let mut store = Store::new();
    let mut map = FxHashMap::default();
    let mut cells = Vec::new();
    for (v, k) in theta.iter() {
        let (cell, node) = store.fresh_var(k);
        map.insert(*v, node);
        cells.push((*v, cell));
    }
    let aid = store.intern_type_with(a, &map);
    let bid = store.intern_type_with(b, &map);
    let uf = crate::unify::unify(&mut store, aid, bid);
    match (&core, &uf) {
        (Err(ce), Err(ue)) => {
            if class_of(ce) == class_of(ue) {
                Ok(())
            } else {
                Err(Disagreement {
                    input: describe(),
                    core: format!("✕ {:?}", class_of(ce)),
                    uf: format!("✕ {:?}", class_of(ue)),
                })
            }
        }
        (Ok((th1, s)), Ok(())) => {
            // The unified types must land in the same α-class. `core`'s
            // unifier never invents variables (residual vars are Θ vars
            // already); the union-find side zonks to cell names, which
            // are mapped back to their Θ names for comparison.
            let core_a = s.apply(a);
            let uf_a = store.zonk(aid);
            let uf_b = store.zonk(bid);
            let (uf_a, uf_b) = (
                rename_uf_solution(&uf_a, &mut store, &cells),
                rename_uf_solution(&uf_b, &mut store, &cells),
            );
            if !(core_a.alpha_eq(&uf_a) && uf_a.alpha_eq(&uf_b)) {
                return Err(Disagreement {
                    input: describe(),
                    core: core_a.to_string(),
                    uf: format!("{uf_a} / {uf_b}"),
                });
            }
            // …and the residual flexible environments must agree on which
            // variables were solved and the kinds of the survivors.
            for (v, cell) in &cells {
                let solved_core = !th1.contains(v);
                let solved_uf = store.is_solved(*cell);
                if solved_core != solved_uf {
                    // `core` removes a solved variable from Θ even when it
                    // is solved *by* another variable; in the union-find
                    // store the orientation of a var-var link is an
                    // implementation detail. Only flag a disagreement if
                    // the variable is solved to a non-variable.
                    let vid = store.flex(*cell);
                    let z = store.zonk(vid);
                    if !matches!(z, Type::Var(_)) {
                        return Err(Disagreement {
                            input: describe(),
                            core: format!("{v} solved: {solved_core}"),
                            uf: format!("{v} solved: {solved_uf}"),
                        });
                    }
                } else if !solved_core {
                    let (ck, uk) = (th1.kind_of(v), Some(store.kind_of(*cell)));
                    if ck != uk {
                        return Err(Disagreement {
                            input: describe(),
                            core: format!("{v} : {ck:?}"),
                            uf: format!("{v} : {uk:?}"),
                        });
                    }
                }
            }
            Ok(())
        }
        (ok, err) => Err(Disagreement {
            input: describe(),
            core: match ok {
                Ok(_) => "unified".to_string(),
                Err(e) => format!("✕ {:?}", class_of(e)),
            },
            uf: match err {
                Ok(()) => "unified".to_string(),
                Err(e) => format!("✕ {:?}", class_of(e)),
            },
        }),
    }
}

/// Replace a zonked cell name by its Θ name.
fn rename_uf_solution(t: &Type, store: &mut Store, cells: &[(TyVar, crate::store::VarId)]) -> Type {
    let mut out = t.clone();
    for (v, cell) in cells {
        if !store.is_solved(*cell) {
            let name = store.name_of(*cell);
            out = out.rename_free(&name, &Type::Var(*v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::{parse_type, Kind};

    #[test]
    fn corpus_agrees() {
        let ds = compare_corpus();
        assert!(
            ds.is_empty(),
            "{} corpus disagreements:\n{}",
            ds.len(),
            ds.iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn unify_comparison_catches_nothing_on_simple_cases() {
        let a = TyVar::fresh();
        let theta: RefinedEnv = [(a, Kind::Poly)].into_iter().collect();
        let l = Type::Var(a);
        let r = parse_type("Int -> Bool").unwrap();
        compare_unify(&theta, &l, &r).unwrap();
        compare_unify(&theta, &r, &l).unwrap();
        // Failure parity too.
        compare_unify(
            &RefinedEnv::new(),
            &parse_type("Int").unwrap(),
            &parse_type("Bool").unwrap(),
        )
        .unwrap();
    }

    #[test]
    fn demotion_parity_is_checked() {
        // a : • against List b with b : ⋆ demotes b in both engines.
        let a = TyVar::fresh();
        let b = TyVar::fresh();
        let theta: RefinedEnv = [(a, Kind::Mono), (b, Kind::Poly)].into_iter().collect();
        let l = Type::Var(a);
        let r = Type::list(Type::Var(b));
        compare_unify(&theta, &l, &r).unwrap();
    }
}
