//! Synchronization alias: every lock/atomic in this crate goes through
//! here instead of importing `std::sync` directly (enforced by
//! `freezeml lint`). In normal builds these are *literal* re-exports of
//! the standard library — identical types, identical codegen. Under
//! `RUSTFLAGS='--cfg interleave'` they resolve to the model checker's
//! instrumented primitives, so `tests/model/` can explore thread
//! interleavings of this crate's real production code (notably the
//! sharded scheme bank's racing interns).

pub use interleave::sync::atomic;
pub use interleave::sync::{Arc, PoisonError};

// The full alias surface, kept available so call sites never need a
// reason to fall back to a bare `std::sync` import.
#[allow(unused_imports)]
pub use interleave::sync::{
    mpsc, Condvar, LockResult, Mutex, MutexGuard, Once, OnceLock, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};
