//! The persistent scheme store: inference results exported as
//! [`SchemeId`]s — sharing-preserving, α-canonical, and **zonk-free**.
//!
//! [`Store::zonk`] re-expands a DAG-shared type into a `core::Type`
//! tree. For the pair chain that expansion is exponential: the type is
//! O(n) in the store and 2ⁿ as a tree, so a scheme crossing the
//! engine→service boundary used to undo everything hash-consing bought.
//! This module keeps schemes in DAG form across that boundary:
//!
//! * a [`SchemeStore`] is a hash-consed arena of **ground scheme nodes**
//!   with **de Bruijn binders** — no flexible variables, no mutable
//!   cells, binders nameless. Hash-consing over de Bruijn nodes makes a
//!   `SchemeId` an **α-equivalence class**: two α-equivalent schemes
//!   with the same free variables intern to the same id, so the
//!   service's Merkle cache can key on the id directly and "same scheme"
//!   is an integer comparison;
//! * [`SchemeStore::export`] copies the reachable, resolved part of a
//!   session [`Store`] into the scheme store in O(DAG) — cells are read
//!   through, never expanded;
//! * [`SchemeStore::intern_into`] is the inverse: layering a cached
//!   scheme back into a session store (a dependency's scheme entering
//!   `Γ`) is again O(DAG), with no `core::Type` tree in between;
//! * [`SchemeStore::to_type`] and [`SchemeStore::pretty`] materialise a
//!   tree / a string **on demand** — the protocol boundary (`type-of`,
//!   goldens) is the only place that pays, and `pretty` memoises per
//!   node so shared subterms are rendered once (O(DAG) structural work
//!   plus the unavoidable O(output) bytes; the old path built the full
//!   exponential tree first and then walked it again to print).
//!
//! A `SchemeId` is shared by *every* α-equivalent scheme, so its
//! rendering must be a function of the α-class: binders are lettered
//! canonically (`forall a. a -> a`), never taken from any one
//! exporter's source names — restoring those would leak one binding's
//! annotation names into another's output. Binder *name hints* are
//! still recorded (outside the hash) and guide
//! [`SchemeStore::intern_into`], where the use is per-occurrence and no
//! cross-binding leak is possible.

use crate::store::{reprobe, Shape, Store, TypeId};
use crate::sync::Arc;
use freezeml_core::{Symbol, TyCon, TyVar, Type};
use fxhash::{FxHashMap, FxHashSet};
use std::hash::{Hash, Hasher};

/// An exported scheme: an index into a [`SchemeStore`]. Within one
/// store, id equality is α-equivalence (for schemes with the same free
/// variables).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SchemeId(u32);

impl SchemeId {
    /// The raw arena index (stable for the life of the store) — what the
    /// service mixes into observability output. For ids minted by a
    /// [`SchemeBank`](crate::bank::SchemeBank) this is the bank's global
    /// encoding (shard in the low bits), still stable and unique.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Build an id from a raw index — the [`crate::bank`] shard encoding
    /// mints ids that are not dense arena indices, so construction stays
    /// crate-internal.
    pub(crate) const fn from_raw(raw: u32) -> SchemeId {
        SchemeId(raw)
    }
}

/// A contiguous child range in the scheme store's slab.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct SRange {
    start: u32,
    len: u32,
}

/// One scheme node. Ground (no flexible variables) and nameless at
/// binders (de Bruijn indices), so structural identity is α-identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum SNode {
    /// A binder occurrence: de Bruijn index, 0 = innermost `∀`.
    Bound(u32),
    /// A free variable (a source-named rigid, or — for open schemes —
    /// a residual variable's stable name).
    Free(TyVar),
    /// A fully applied constructor.
    Con(TyCon, SRange),
    /// A quantifier over the body. Nameless; the display hint lives in
    /// `SchemeStore::hints`, outside the hash.
    Forall(SchemeId),
}

/// The hash-consed scheme arena. See the module docs.
///
/// The fingerprint/probe/slab interning machinery deliberately mirrors
/// [`Store`](crate::store::Store)'s (same probe protocol — [`reprobe`]
/// is shared — same child-slab layout): the node types differ enough
/// (de Bruijn + hints here, cells + binder freshening there) that a
/// shared generic arena wasn't worth the indirection, but **a fix to
/// either interner's probe or slab logic almost certainly applies to
/// both** — keep them in lockstep.
#[derive(Default)]
pub struct SchemeStore {
    nodes: Vec<SNode>,
    children: Vec<SchemeId>,
    intern: FxHashMap<u64, SchemeId>,
    /// Per-node binder name hint (only meaningful for `Forall` nodes).
    /// First exporter wins — hints never affect identity.
    hints: Vec<Option<TyVar>>,
    /// Memoised renderings of *closed* nodes (see [`SchemeStore::pretty`]).
    rendered: FxHashMap<SchemeId, Arc<str>>,
    /// Tree/string materialisations performed (cold `pretty`/`to_type`
    /// work) — the counter the service asserts its memoisation against.
    renders: u64,
    /// `pretty` calls served from the memo.
    render_hits: u64,
}

impl SchemeStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned scheme nodes (observability).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cold materialisations (tree or string) performed so far.
    pub fn renders(&self) -> u64 {
        self.renders
    }

    /// `pretty` calls served straight from the per-node memo.
    pub fn render_hits(&self) -> u64 {
        self.render_hits
    }

    fn children_of(&self, r: SRange) -> &[SchemeId] {
        &self.children[r.start as usize..(r.start + r.len) as usize]
    }

    fn fingerprint(node: &SNode, args: &[SchemeId]) -> u64 {
        let mut h = fxhash::FxHasher::default();
        match node {
            SNode::Bound(i) => {
                h.write_u8(0);
                h.write_u32(*i);
            }
            SNode::Free(v) => {
                h.write_u8(1);
                v.hash(&mut h);
            }
            SNode::Con(c, _) => {
                h.write_u8(2);
                c.hash(&mut h);
                h.write_u32(args.len() as u32);
                for a in args {
                    h.write_u32(a.0);
                }
            }
            SNode::Forall(b) => {
                h.write_u8(3);
                h.write_u32(b.0);
            }
        }
        h.finish()
    }

    fn node_eq(&self, id: SchemeId, node: &SNode, args: &[SchemeId]) -> bool {
        match (&self.nodes[id.0 as usize], node) {
            (SNode::Bound(a), SNode::Bound(b)) => a == b,
            (SNode::Free(a), SNode::Free(b)) => a == b,
            (SNode::Con(c, r), SNode::Con(d, _)) => c == d && self.children_of(*r) == args,
            (SNode::Forall(a), SNode::Forall(b)) => a == b,
            _ => false,
        }
    }

    fn intern_node(&mut self, node: SNode, args: &[SchemeId], hint: Option<TyVar>) -> SchemeId {
        let mut h = Self::fingerprint(&node, args);
        loop {
            match self.intern.get(&h) {
                Some(&id) if self.node_eq(id, &node, args) => return id,
                Some(_) => h = reprobe(h),
                None => break,
            }
        }
        let id = SchemeId(self.nodes.len() as u32);
        let node = match node {
            SNode::Con(c, _) => {
                let start = self.children.len() as u32;
                self.children.extend_from_slice(args);
                SNode::Con(
                    c,
                    SRange {
                        start,
                        len: args.len() as u32,
                    },
                )
            }
            other => other,
        };
        self.nodes.push(node);
        self.hints.push(hint);
        self.intern.insert(h, id);
        id
    }

    // ---------------------------------------------------------- export

    /// Export a resolved session type into the scheme store, preserving
    /// sharing: O(DAG) in the store representation. Cells are read
    /// through ([`Store::resolve`]); unsolved flexible variables export
    /// under their stable fresh names (open schemes — the service
    /// grounds them before exporting, so its schemes are closed).
    pub fn export(&mut self, store: &mut Store, t: TypeId) -> SchemeId {
        let mut binders: Vec<TyVar> = Vec::new();
        // Memo for *scope-closed* subtrees (no reference to a binder
        // outside the subtree) — their de Bruijn encoding is
        // position-independent, so they are safe to share across scopes
        // and depths. Keyed by *resolved* TypeId.
        let mut memo: FxHashMap<TypeId, SchemeId> = FxHashMap::default();
        self.export_go(store, t, &mut binders, &mut memo).0
    }

    /// Returns `(id, lowest_ref)`: `lowest_ref` is the smallest binder-
    /// stack index the subtree references, `None` if it references no
    /// binder in scope. Only scope-closed conversions are memoised — a
    /// subtree referencing an enclosing binder re-indexes under a
    /// different depth, but a *self-contained* quantified subtree (the
    /// shared-`∀` case that used to degenerate to the full tree) is
    /// closed and memoises fine.
    fn export_go(
        &mut self,
        store: &mut Store,
        t: TypeId,
        binders: &mut Vec<TyVar>,
        memo: &mut FxHashMap<TypeId, SchemeId>,
    ) -> (SchemeId, Option<usize>) {
        let t = store.resolve(t);
        if let Some(&id) = memo.get(&t) {
            return (id, None);
        }
        match store.shape(t) {
            Shape::Rigid(v) => {
                if let Some(pos) = binders.iter().rposition(|b| *b == v) {
                    let idx = (binders.len() - 1 - pos) as u32;
                    (self.intern_node(SNode::Bound(idx), &[], None), Some(pos))
                } else {
                    let id = self.intern_node(SNode::Free(v), &[], None);
                    memo.insert(t, id);
                    (id, None)
                }
            }
            Shape::Flex(v) => {
                let name = store.name_of(v);
                let id = self.intern_node(SNode::Free(name), &[], None);
                memo.insert(t, id);
                (id, None)
            }
            Shape::Con(c, n) => {
                let mut lowest: Option<usize> = None;
                let ids: Vec<SchemeId> = (0..n)
                    .map(|i| {
                        let child = store.con_child(t, i);
                        let (id, low) = self.export_go(store, child, binders, memo);
                        lowest = match (lowest, low) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        id
                    })
                    .collect();
                let id = self.intern_node(SNode::Con(c, SRange { start: 0, len: 0 }), &ids, None);
                if lowest.is_none() {
                    memo.insert(t, id);
                }
                (id, lowest)
            }
            Shape::Forall(v, body) => {
                // The new binder sits at index `depth`; a body reference
                // below it is a reference to an *outer* binder.
                let depth = binders.len();
                binders.push(v);
                let (b, low) = self.export_go(store, body, binders, memo);
                binders.pop();
                let hint = store.binder_source(&v);
                let id = self.intern_node(SNode::Forall(b), &[], hint);
                let escaping = low.filter(|&p| p < depth);
                if escaping.is_none() {
                    memo.insert(t, id);
                }
                (id, escaping)
            }
        }
    }

    /// Import a `core` type directly (used when the oracle engine's
    /// verdict must live in the same scheme space). α-canonical like
    /// [`SchemeStore::export`], so a core-inferred and a uf-inferred
    /// scheme that are α-equivalent intern to the same id.
    pub fn intern_type(&mut self, ty: &Type) -> SchemeId {
        let mut binders: Vec<TyVar> = Vec::new();
        self.intern_type_go(ty, &mut binders)
    }

    fn intern_type_go(&mut self, ty: &Type, binders: &mut Vec<TyVar>) -> SchemeId {
        match ty {
            Type::Var(v) => {
                if let Some(pos) = binders.iter().rposition(|b| b == v) {
                    let idx = (binders.len() - 1 - pos) as u32;
                    self.intern_node(SNode::Bound(idx), &[], None)
                } else {
                    self.intern_node(SNode::Free(*v), &[], None)
                }
            }
            Type::Con(c, args) => {
                let ids: Vec<SchemeId> = args
                    .iter()
                    .map(|a| self.intern_type_go(a, binders))
                    .collect();
                self.intern_node(SNode::Con(*c, SRange { start: 0, len: 0 }), &ids, None)
            }
            Type::Forall(v, body) => {
                binders.push(*v);
                let b = self.intern_type_go(body, binders);
                binders.pop();
                let hint = if v.is_named() { Some(*v) } else { None };
                self.intern_node(SNode::Forall(b), &[], hint)
            }
        }
    }

    // ---------------------------------------------------------- import

    /// Layer a scheme back into a session [`Store`] — a dependency's
    /// cached scheme entering the environment — in O(DAG), with no
    /// `core::Type` tree in between. Binders are freshened (the store's
    /// global-uniqueness invariant) and their hints recorded so a later
    /// zonk restores source names.
    pub fn intern_into(&self, store: &mut Store, id: SchemeId) -> TypeId {
        let mut binders: Vec<TypeId> = Vec::new();
        let mut memo: FxHashMap<SchemeId, TypeId> = FxHashMap::default();
        self.intern_into_go(store, id, &mut binders, &mut memo).0
    }

    /// Returns `(t, deepest)`: `deepest` is the largest de Bruijn index
    /// the subtree references *relative to its own position*, `None` if
    /// it references no enclosing binder. Scope-closed subtrees —
    /// including self-contained quantified nodes — are memoised, so a
    /// shared `∀` in the scheme DAG becomes one shared (one-binder)
    /// node in the store instead of a freshened copy per occurrence.
    fn intern_into_go(
        &self,
        store: &mut Store,
        id: SchemeId,
        binders: &mut Vec<TypeId>,
        memo: &mut FxHashMap<SchemeId, TypeId>,
    ) -> (TypeId, Option<u32>) {
        if let Some(&t) = memo.get(&id) {
            return (t, None);
        }
        match self.nodes[id.0 as usize] {
            SNode::Bound(i) => {
                let t = binders[binders.len() - 1 - i as usize];
                (t, Some(i))
            }
            SNode::Free(v) => {
                let t = store.rigid(v);
                memo.insert(id, t);
                (t, None)
            }
            SNode::Con(c, r) => {
                let mut deepest: Option<u32> = None;
                let mut ids: Vec<TypeId> = Vec::with_capacity(r.len as usize);
                for i in 0..r.len as usize {
                    let ch = self.children[r.start as usize + i];
                    let (t, d) = self.intern_into_go(store, ch, binders, memo);
                    deepest = match (deepest, d) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    ids.push(t);
                }
                let t = store.con(c, &ids);
                if deepest.is_none() {
                    memo.insert(id, t);
                }
                (t, deepest)
            }
            SNode::Forall(body) => {
                let fresh = store.fresh_binder(self.hints[id.0 as usize]);
                let fresh_id = store.rigid(fresh);
                binders.push(fresh_id);
                let (b, d) = self.intern_into_go(store, body, binders, memo);
                binders.pop();
                let t = store.forall(fresh, b);
                // Index 0 is this node's own binder; anything deeper
                // still escapes (shifted by one).
                let escaping = d.and_then(|m| m.checked_sub(1));
                if escaping.is_none() {
                    memo.insert(id, t);
                }
                (t, escaping)
            }
        }
    }

    // ------------------------------------------------- materialisation

    /// Materialise the scheme as a `core::Type` tree — the on-demand
    /// zonk. Worst case exponential in the DAG (the tree *is* that big);
    /// only the protocol boundary calls this.
    ///
    /// Binders come out as fresh invented variables, which the printer
    /// letters canonically — the rendering is a function of the α-class,
    /// **deliberately ignoring binder-name hints**: a `SchemeId` is
    /// shared by every α-equivalent scheme, so restoring one exporter's
    /// source names would leak them into other bindings' output (the
    /// hints do still guide [`SchemeStore::intern_into`], where they are
    /// per-use, not per-class).
    pub fn to_type(&mut self, id: SchemeId) -> Type {
        self.renders += 1;
        let mut stack: Vec<TyVar> = Vec::new();
        self.to_type_go(id, &mut stack)
    }

    fn to_type_go(&self, id: SchemeId, stack: &mut Vec<TyVar>) -> Type {
        match self.nodes[id.0 as usize] {
            SNode::Bound(i) => Type::Var(stack[stack.len() - 1 - i as usize]),
            SNode::Free(v) => Type::Var(v),
            SNode::Con(c, r) => {
                let args = self
                    .children_of(r)
                    .iter()
                    .map(|&ch| self.to_type_go(ch, stack))
                    .collect();
                Type::Con(c, args)
            }
            SNode::Forall(body) => {
                let placeholder = TyVar::fresh();
                stack.push(placeholder);
                let body_ty = self.to_type_go(body, stack);
                stack.pop();
                Type::Forall(placeholder, Box::new(body_ty))
            }
        }
    }

    /// The canonical rendering of the scheme, memoised per id.
    ///
    /// The rendering is a function of the α-class: binders are lettered
    /// `a, b, c, …` in traversal order (skipping the scheme's free named
    /// variables), never taken from exporter hints — so every binding
    /// that shares an id displays identically, and no binding's source
    /// names can leak into another's output. Closed-but-for-named-free
    /// schemes (everything the service stores: grounded) are rendered by
    /// a direct DAG walk with no intermediate `Type` tree; schemes with
    /// invented free variables fall back to `to_type` + the lettering
    /// printer (they need whole-type naming), still memoised at the
    /// root. Both paths produce byte-identical text.
    pub fn pretty(&mut self, id: SchemeId) -> Arc<str> {
        if let Some(s) = self.rendered.get(&id) {
            self.render_hits += 1;
            return Arc::clone(s);
        }
        self.renders += 1;
        let s: Arc<str> = if self.directly_renderable(id) {
            let mut taken = FxHashSet::default();
            for v in self.free_vars(id) {
                if let Some(sym) = v.symbol() {
                    taken.insert(sym);
                }
            }
            let mut supply = freezeml_core::types::letter_supply(taken);
            let mut out = String::new();
            self.render_go(id, 1, &mut Vec::new(), &mut supply, &mut out);
            Arc::from(out)
        } else {
            Arc::from(self.to_type_tree(id).to_string())
        };
        self.rendered.insert(id, Arc::clone(&s));
        s
    }

    /// `to_type` without bumping the counter twice (internal fallback).
    fn to_type_tree(&self, id: SchemeId) -> Type {
        let mut stack = Vec::new();
        self.to_type_go(id, &mut stack)
    }

    /// Can the node be rendered without the fallback? True when every
    /// free variable is source-named — binders are always lettered, so
    /// only invented *free* names (open schemes) need the whole-type
    /// printer.
    fn directly_renderable(&self, id: SchemeId) -> bool {
        let mut seen = FxHashSet::default();
        self.renderable_go(id, &mut seen)
    }

    fn renderable_go(&self, id: SchemeId, seen: &mut FxHashSet<SchemeId>) -> bool {
        if !seen.insert(id) {
            return true;
        }
        match self.nodes[id.0 as usize] {
            SNode::Bound(_) => true,
            SNode::Free(v) => v.is_named(),
            SNode::Con(_, r) => self
                .children_of(r)
                .iter()
                .all(|&ch| self.renderable_go(ch, seen)),
            SNode::Forall(body) => self.renderable_go(body, seen),
        }
    }

    /// Direct renderer. Precedence levels match `core::pretty`:
    /// 1 = forall/arrow position, 2 = product operand, 3 = constructor
    /// argument (atoms only).
    fn render_go(
        &self,
        id: SchemeId,
        prec: u8,
        stack: &mut Vec<Symbol>,
        supply: &mut impl Iterator<Item = Symbol>,
        out: &mut String,
    ) {
        match self.nodes[id.0 as usize] {
            SNode::Bound(i) => {
                let sym = stack[stack.len() - 1 - i as usize];
                out.push_str(sym.as_str());
            }
            SNode::Free(v) => out.push_str(v.name().unwrap_or("?")),
            SNode::Forall(_) => {
                if prec > 1 {
                    out.push('(');
                }
                out.push_str("forall");
                let mut cur = id;
                let mut pushed = 0usize;
                while let SNode::Forall(body) = self.nodes[cur.0 as usize] {
                    // Canonical letters in traversal order — the same
                    // assignment the tree printer makes for to_type's
                    // invented binders, so both paths print identically.
                    let sym = supply.next().expect("infinite supply");
                    out.push(' ');
                    out.push_str(sym.as_str());
                    stack.push(sym);
                    pushed += 1;
                    cur = body;
                }
                out.push_str(". ");
                self.render_go(cur, 1, stack, supply, out);
                stack.truncate(stack.len() - pushed);
                if prec > 1 {
                    out.push(')');
                }
            }
            SNode::Con(c, r) => {
                let args = self.children_of(r);
                match (c, args.len()) {
                    (TyCon::Arrow, 2) => {
                        if prec > 1 {
                            out.push('(');
                        }
                        self.render_go(args[0], 2, stack, supply, out);
                        out.push_str(" -> ");
                        self.render_go(args[1], 1, stack, supply, out);
                        if prec > 1 {
                            out.push(')');
                        }
                    }
                    (TyCon::Prod, 2) => {
                        if prec > 2 {
                            out.push('(');
                        }
                        self.render_go(args[0], 3, stack, supply, out);
                        out.push_str(" * ");
                        self.render_go(args[1], 3, stack, supply, out);
                        if prec > 2 {
                            out.push(')');
                        }
                    }
                    (_, 0) => out.push_str(c.name()),
                    _ => {
                        if prec > 3 {
                            out.push('(');
                        }
                        out.push_str(c.name());
                        for a in args {
                            out.push(' ');
                            self.render_go(*a, 4, stack, supply, out);
                        }
                        if prec > 3 {
                            out.push(')');
                        }
                    }
                }
            }
        }
    }

    /// Collision-free display names for `count` residual variables that
    /// were grounded out of the scheme `id` (value-restriction
    /// defaulting): consecutive letters from the canonical supply,
    /// *after* the letters the scheme's rendering assigns to its binders
    /// and excluding its free named variables. Every engine route to a
    /// verdict (`core`, `uf`, differential `both`) names residuals
    /// through this one function, so the reports are identical by
    /// construction and can never collide with a name the rendered
    /// scheme itself displays.
    pub fn defaulted_names(&self, id: SchemeId, count: usize) -> Vec<String> {
        if count == 0 {
            return Vec::new();
        }
        let mut taken = FxHashSet::default();
        for v in self.free_vars(id) {
            if let Some(sym) = v.symbol() {
                taken.insert(sym);
            }
        }
        let mut supply = freezeml_core::types::letter_supply(taken);
        self.skip_binder_letters(id, &mut supply);
        (0..count)
            .map(|_| supply.next().expect("infinite supply").as_str().to_string())
            .collect()
    }

    /// Discard the letters the canonical rendering assigns to binders —
    /// the same tree traversal as [`SchemeStore::pretty`]'s direct
    /// renderer, so the skip is exact.
    fn skip_binder_letters(&self, id: SchemeId, supply: &mut impl Iterator<Item = Symbol>) {
        match self.nodes[id.0 as usize] {
            SNode::Bound(_) | SNode::Free(_) => {}
            SNode::Con(_, r) => {
                for &ch in self.children_of(r) {
                    self.skip_binder_letters(ch, supply);
                }
            }
            SNode::Forall(body) => {
                supply.next();
                self.skip_binder_letters(body, supply);
            }
        }
    }

    /// The free (non-binder) variables of the scheme, in order of first
    /// appearance — residual names for open schemes.
    pub fn free_vars(&self, id: SchemeId) -> Vec<TyVar> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        self.free_vars_go(id, &mut seen, &mut out);
        out
    }

    fn free_vars_go(&self, id: SchemeId, seen: &mut FxHashSet<SchemeId>, out: &mut Vec<TyVar>) {
        if !seen.insert(id) {
            return;
        }
        match self.nodes[id.0 as usize] {
            SNode::Bound(_) => {}
            SNode::Free(v) => {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            SNode::Con(_, r) => {
                for &ch in self.children_of(r) {
                    self.free_vars_go(ch, seen, out);
                }
            }
            SNode::Forall(body) => self.free_vars_go(body, seen, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::parse_type;

    fn roundtrip(src: &str) -> (SchemeStore, SchemeId) {
        let mut store = Store::new();
        let t = parse_type(src).unwrap();
        let tid = store.intern_type(&t);
        let mut bank = SchemeStore::new();
        let sid = bank.export(&mut store, tid);
        (bank, sid)
    }

    #[test]
    fn export_to_type_round_trips() {
        for src in [
            "Int",
            "forall a. a -> a",
            "forall a b. a -> b -> a * b",
            "(forall a. a -> a) -> Int * Bool",
            "forall s. ST s Int",
            "List (forall a. a -> a)",
        ] {
            let (mut bank, sid) = roundtrip(src);
            let back = bank.to_type(sid);
            assert!(back.alpha_eq(&parse_type(src).unwrap()), "{src}");
        }
    }

    #[test]
    fn alpha_equivalent_schemes_share_an_id() {
        let mut store = Store::new();
        let a = parse_type("forall a. a -> a").unwrap();
        let b = parse_type("forall b. b -> b").unwrap();
        let (ta, tb) = (store.intern_type(&a), store.intern_type(&b));
        let mut bank = SchemeStore::new();
        let (sa, sb) = (bank.export(&mut store, ta), bank.export(&mut store, tb));
        assert_eq!(sa, sb, "de Bruijn hash-consing is α-canonical");
        // Quantifier order still matters (§2 Ordered Quantifiers).
        let c = parse_type("forall a b. a -> b").unwrap();
        let d = parse_type("forall b a. a -> b").unwrap();
        let (tc, td) = (store.intern_type(&c), store.intern_type(&d));
        assert_ne!(bank.export(&mut store, tc), bank.export(&mut store, td));
    }

    #[test]
    fn core_interning_matches_export() {
        let mut store = Store::new();
        let ty = parse_type("forall a. (forall b. b -> a) -> List a").unwrap();
        let tid = store.intern_type(&ty);
        let mut bank = SchemeStore::new();
        let exported = bank.export(&mut store, tid);
        let imported = bank.intern_type(&ty);
        assert_eq!(exported, imported);
    }

    #[test]
    fn intern_into_round_trips_through_a_store() {
        let (bank, sid) = roundtrip("forall a. (a -> Int) -> List a");
        let mut fresh = Store::new();
        let tid = bank.intern_into(&mut fresh, sid);
        let z = fresh.zonk(tid);
        assert!(z.alpha_eq(&parse_type("forall a. (a -> Int) -> List a").unwrap()));
    }

    #[test]
    fn pretty_matches_display_and_memoises() {
        for src in [
            "forall a. a -> a",
            "forall s. ST s Int",
            "(forall a. a -> a) -> Int * Bool",
            "forall a b. (a -> b) -> List a -> List b",
            "Int * Bool * Int",
            "List (forall a. a -> a)",
        ] {
            let (mut bank, sid) = roundtrip(src);
            let direct = bank.pretty(sid);
            let via_tree = bank.to_type(sid).to_string();
            assert_eq!(&*direct, via_tree, "{src}");
            let renders_before = bank.renders();
            let again = bank.pretty(sid);
            assert_eq!(direct, again);
            assert_eq!(bank.renders(), renders_before, "second pretty is a hit");
            assert!(bank.render_hits() > 0);
        }
    }

    #[test]
    fn pair_chain_exports_in_dag_size() {
        // The exponential pair chain: O(n) store nodes in, O(n) scheme
        // nodes out — no tree is built by export.
        let mut store = Store::new();
        let mut t = store.int();
        for _ in 0..12 {
            t = store.con(TyCon::Prod, &[t, t]);
        }
        let mut bank = SchemeStore::new();
        let sid = bank.export(&mut store, t);
        assert_eq!(bank.len(), 13, "13 distinct nodes for n=12");
        // …and the on-demand tree still agrees with eager zonking.
        let eager = store.zonk(t);
        assert!(bank.to_type(sid).alpha_eq(&eager));
        // The memoised pretty renders it without building the tree.
        let s = bank.pretty(sid);
        assert_eq!(s.len(), eager.to_string().len());
    }

    #[test]
    fn shared_forall_subterms_stay_dag_sized_both_ways() {
        // Regression: a quantified subterm shared across a pair chain is
        // scope-closed, so export and re-import must memoise it — the
        // old "never memoise ∀" rule degenerated both directions to the
        // full 2ⁿ tree (and import freshened a binder per visit).
        let mut store = Store::new();
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let mut t = store.intern_type(&id_ty);
        for _ in 0..20 {
            t = store.con(TyCon::Prod, &[t, t]);
        }
        let mut bank = SchemeStore::new();
        let sid = bank.export(&mut store, t);
        assert!(bank.len() <= 32, "export blew up: {} nodes", bank.len());
        // Round trip into a fresh store. Before the fix this line alone
        // was the regression: import freshened a binder per ∀ visit and
        // allocated ~2²⁰ store nodes (seconds, then memory); with
        // scope-closed memoisation it is instant and DAG-sized.
        let mut fresh = Store::new();
        let back = bank.intern_into(&mut fresh, sid);
        assert_eq!(fresh.children(back).len(), 2);
        let mut small = Store::new();
        let mut st = small.intern_type(&id_ty);
        for _ in 0..3 {
            st = small.con(TyCon::Prod, &[st, st]);
        }
        let ssid = bank.export(&mut small, st);
        let mut small_fresh = Store::new();
        let sback = bank.intern_into(&mut small_fresh, ssid);
        let z = small_fresh.zonk(sback);
        assert!(z.alpha_eq(&small.zonk(st)));
    }

    #[test]
    fn free_vars_in_order() {
        let (bank, sid) = roundtrip("b -> a -> b");
        let names: Vec<String> = bank.free_vars(sid).iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["b", "a"]);
    }
}
