//! # FreezeML union-find inference engine
//!
//! A second implementation of the paper's inference algorithm (Figures
//! 15–16), built the way production ML compilers build theirs — and held
//! to the paper-literal [`freezeml_core`] implementation by a
//! differential test layer.
//!
//! The `core` crate transcribes the paper: every unification step clones
//! the refined environment `Θ`, builds a substitution, and composes it.
//! That is the right artefact for *faithfulness*, and it stays — as the
//! soundness-and-principality oracle. This crate is the *hot path*:
//!
//! * [`store`] — hash-consed arena of type nodes ([`TypeId`]), union-find
//!   cells for flexible variables carrying the paper's `•`/`⋆` kind,
//!   Rémy-style generalisation levels, path-compressed resolution, and a
//!   trail journalling every cell write;
//! * [`unify`] — Figure 15 with demotion as an O(α) cell update and the
//!   skolem-escape assertion checked against the trail;
//! * [`infer`] — Figure 16 for the full surface language (freeze `~x`,
//!   generalise `$M`, instantiate `M@`, `let`, ascriptions) with
//!   level-based generalisation, plus a zonk pass back to [`Type`] so
//!   pretty-printing, the conformance harness, and the downstream crates
//!   consume the result unchanged;
//! * [`differential`] — the oracle harness: both engines must agree on
//!   the 49-row Figure 1 corpus and on property-generated terms and
//!   unification problems (success/failure, error class, and principal
//!   type up to α-equivalence).
//!
//! ## Quickstart
//!
//! ```
//! use freezeml_core::{Options, TypeEnv};
//! use freezeml_engine::infer_program;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut env = TypeEnv::new();
//! env.push_str("poly", "(forall a. a -> a) -> Int * Bool")?;
//! let ty = infer_program(&env, "poly $(fun x -> x)", &Options::default())?;
//! assert_eq!(ty.to_string(), "Int * Bool");
//! # Ok(())
//! # }
//! ```
//!
//! [`Type`]: freezeml_core::Type

pub mod bank;
pub mod differential;
pub mod elab;
pub mod infer;
pub mod scheme;
pub mod snapshot;
pub mod store;
pub mod sync;
pub mod unify;

pub use bank::SchemeBank;
pub use differential::{class_of, class_of_program, compare_program, Disagreement, ErrorClass};
pub use elab::Elab;
pub use infer::{
    check_typing, elaborate_term, infer_program, infer_term, InferOutput, SchemeOutput, Session,
};
pub use scheme::{SchemeId, SchemeStore};
pub use snapshot::{AbsorbedSnapshot, PortableCon, PortableNode, SnapshotError};
pub use store::{Node, Shape, Store, TypeId, VarId};
pub use unify::unify;
