//! The mutable type store: a hash-consed arena of type nodes plus a
//! union-find bank of flexible-variable cells.
//!
//! This is the data layer the union-find engine runs on, replacing the
//! paper-literal representation (`core::Type` trees, `Subst` composition,
//! `RefinedEnv` rebuilding) with the machinery every production ML
//! implementation uses:
//!
//! * **Arena interning** — types are [`TypeId`]s into a node arena;
//!   structurally identical subtrees share one node, so equality of
//!   interned ids implies structural identity and deep types built by
//!   repeated application (e.g. the exponential pair chain) collapse to
//!   DAGs. A [`Node`] is `Copy`: `Con` children live in a **flat child
//!   slab** addressed by [`ChildRange`], so a node never owns a heap
//!   allocation and interning never hashes an owned vector — the intern
//!   table maps a structural 64-bit fingerprint straight to a `TypeId`
//!   (collisions fall back to linear re-probing; a genuine 64-bit
//!   collision merely costs one extra probe, never a wrong answer).
//! * **Union-find cells** — a flexible variable is a [`VarId`] into a cell
//!   bank. Solving a variable writes its cell once; *demotion* (the
//!   paper's `demote(•, Θ, ∆′)`, Figure 15) is a kind-field update on the
//!   cell — O(α) per variable instead of rebuilding `Θ`.
//! * **Path compression** — [`Store::resolve`] shortens link chains as it
//!   follows them, so repeated resolution of a solved chain is amortised
//!   constant.
//! * **Levels** — every cell records the generalisation level at which it
//!   was created (Rémy-style). Binding propagates the minimum level into
//!   the bound type, so "is this variable reachable from the environment
//!   that existed before this `let` right-hand side?" — the paper's
//!   `∆′ = ftv(θ₁)` side condition — is a single integer comparison.
//! * **Trail** — every cell mutation (solution, kind, level, compression)
//!   is journalled. The trail serves three masters: the quantifier rule's
//!   skolem-escape check and the annotated-`let` escape check scan the
//!   bindings made inside a scope (exactly the paper's `c ∉ ftv(θ′)` and
//!   `ftv(θ₂) # ∆′` assertions, restricted to the delta of state they
//!   could have changed), and benchmarks roll the store back to a mark to
//!   re-run workloads on identical state.
//!
//! **Binder freshening.** [`Store::intern_type`] α-renames every `∀`
//! binder to a globally fresh [`TyVar`] while interning. Binder names are
//! therefore unique across the store, which makes substitution
//! ([`Store::subst_rigid`]) and zonking ([`Store::zonk`]) trivially
//! capture-avoiding — no occurrence of a binder can ever be confused with
//! a like-named rigid variable flowing in through a solved cell. Pretty
//! printing and α-equivalence are unaffected (the printer letters
//! invented binders).

use freezeml_core::{Kind, TyCon, TyVar, Type};
use fxhash::{FxHashMap, FxHashSet};
use std::hash::{Hash, Hasher};

/// An interned type: an index into the store's node arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TypeId(u32);

/// A flexible (unification) variable: an index into the store's cell bank.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// The cell ordinal. Cells are numbered in creation order, so
    /// comparing against a [`Store::var_count`] watermark asks "did this
    /// variable exist before the scope opened?".
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A `Con` node's children: a contiguous range in the store's child slab.
/// `Copy`, two words — the node itself owns nothing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChildRange {
    start: u32,
    len: u32,
}

impl ChildRange {
    /// Number of children.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Is the range empty (a nullary constructor)?
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One arena node. `Copy`: `Con` children sit in the store's flat child
/// slab ([`ChildRange`]), `Forall` bodies are [`TypeId`]s — a node never
/// owns a subtree or a heap allocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A rigid variable: source-named, annotation-bound, a freshened `∀`
    /// binder, or a unification skolem.
    Rigid(TyVar),
    /// A flexible variable — resolution must consult its cell.
    Flex(VarId),
    /// A fully applied constructor; children via [`Store::children`].
    Con(TyCon, ChildRange),
    /// A quantified type. The binder name is globally unique (freshened
    /// at interning / generalisation time).
    Forall(TyVar, TypeId),
}

/// An allocation-free projection of a [`Node`] for traversal — see
/// [`Store::shape`]. `Copy`; with interned names the projection is a
/// couple of machine words.
#[derive(Clone, Copy, Debug)]
pub enum Shape {
    /// A rigid variable.
    Rigid(TyVar),
    /// A flexible variable.
    Flex(VarId),
    /// A constructor head and its argument count.
    Con(TyCon, usize),
    /// A quantifier and its body.
    Forall(TyVar, TypeId),
}

/// The mutable state of one flexible variable.
#[derive(Clone, Debug)]
struct Cell {
    /// `Some(t)` once solved; resolution follows these links.
    solution: Option<TypeId>,
    /// The paper's refined kind `•`/`⋆` (Figure 12); demotion rewrites it
    /// in place.
    kind: Kind,
    /// Generalisation level at creation, min-propagated on binding.
    level: u32,
    /// Stable fresh name used when the variable survives to zonking.
    name: TyVar,
}

/// A saved cell snapshot; [`Store::undo_to`] restores them in reverse.
struct TrailEntry {
    var: VarId,
    solution: Option<TypeId>,
    kind: Kind,
    level: u32,
}

/// An opaque trail mark (see [`Store::mark`]). Carries the store's reset
/// epoch so a mark that predates a [`Store::reset_to`] cannot silently
/// roll back the wrong journal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mark {
    trail: usize,
    epoch: u32,
}

/// The arena + union-find store. See the module documentation.
#[derive(Default)]
pub struct Store {
    nodes: Vec<Node>,
    /// Flat slab of `Con` children; nodes address it by [`ChildRange`].
    children: Vec<TypeId>,
    /// Structural fingerprint → id. On a (vanishingly rare) fingerprint
    /// collision the insert re-probes with [`reprobe`]; lookups verify
    /// structural equality before trusting an entry, so collisions cost
    /// probes, never correctness.
    intern: FxHashMap<u64, TypeId>,
    cells: Vec<Cell>,
    trail: Vec<TrailEntry>,
    /// Current generalisation level (incremented inside `let` right-hand
    /// sides).
    level: u32,
    /// Bumped by [`Store::reset_to`]; invalidates outstanding [`Mark`]s.
    epoch: u32,
    /// Source name of each freshened `∀` binder, so zonking can restore
    /// the programmer's names when no collision forbids it.
    binder_src: FxHashMap<TyVar, TyVar>,
    /// Freshened binders in creation order, so [`Store::reset_to`] can
    /// evict their `binder_src` entries.
    binder_log: Vec<TyVar>,
}

/// A store-extent snapshot (see [`Store::checkpoint`]).
#[derive(Clone, Copy, Debug)]
pub struct StoreMark {
    nodes: usize,
    children: usize,
    cells: usize,
    binders: usize,
}

/// Next probe position after a fingerprint collision (deterministic, so
/// [`Store::reset_to`] can retrace an entry's probe chain). Shared with
/// the scheme store's interner — one probe protocol, one constant.
pub(crate) fn reprobe(h: u64) -> u64 {
    h.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15
}

fn fingerprint(node: &Node, children: &[TypeId]) -> u64 {
    let mut h = fxhash::FxHasher::default();
    match node {
        Node::Rigid(v) => {
            h.write_u8(0);
            v.hash(&mut h);
        }
        Node::Flex(v) => {
            h.write_u8(1);
            h.write_u32(v.0);
        }
        Node::Con(c, _) => {
            h.write_u8(2);
            c.hash(&mut h);
            h.write_u32(children.len() as u32);
            for &t in children {
                h.write_u32(t.0);
            }
        }
        Node::Forall(v, b) => {
            h.write_u8(3);
            v.hash(&mut h);
            h.write_u32(b.0);
        }
    }
    h.finish()
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The children of a `Con` node (empty for every other node kind).
    pub fn children(&self, t: TypeId) -> &[TypeId] {
        match self.nodes[t.0 as usize] {
            Node::Con(_, r) => &self.children[r.start as usize..(r.start + r.len) as usize],
            _ => &[],
        }
    }

    /// Is the interned node `t` structurally identical to `node` (whose
    /// prospective children are `args`)?
    fn node_eq(&self, t: TypeId, node: &Node, args: &[TypeId]) -> bool {
        match (&self.nodes[t.0 as usize], node) {
            (Node::Rigid(a), Node::Rigid(b)) => a == b,
            (Node::Flex(a), Node::Flex(b)) => a == b,
            (Node::Con(c, _), Node::Con(d, _)) => c == d && self.children(t) == args,
            (Node::Forall(a, x), Node::Forall(b, y)) => a == b && x == y,
            _ => false,
        }
    }

    /// Intern a node whose `Con` children (if any) are given by `args`
    /// and not yet in the slab. Returns the existing id for structurally
    /// identical nodes; otherwise copies `args` into the slab and
    /// allocates.
    fn intern_node(&mut self, node: Node, args: &[TypeId]) -> TypeId {
        let mut h = fingerprint(&node, args);
        loop {
            match self.intern.get(&h) {
                Some(&id) if self.node_eq(id, &node, args) => return id,
                Some(_) => h = reprobe(h), // fingerprint collision
                None => break,
            }
        }
        let id = TypeId(self.nodes.len() as u32);
        let node = match node {
            Node::Con(c, _) => {
                let start = self.children.len() as u32;
                self.children.extend_from_slice(args);
                Node::Con(
                    c,
                    ChildRange {
                        start,
                        len: args.len() as u32,
                    },
                )
            }
            other => other,
        };
        self.nodes.push(node);
        self.intern.insert(h, id);
        id
    }

    /// The node behind an id (not resolved — `Flex` nodes stay `Flex`).
    pub fn node(&self, t: TypeId) -> &Node {
        &self.nodes[t.0 as usize]
    }

    /// An allocation-free projection of a node for traversal: `Con`
    /// carries only its head and arity (children are fetched by index
    /// with [`Store::con_child`]). Everything is `Copy` — interned names
    /// make this a register-width move, no `Arc` bumps.
    pub fn shape(&self, t: TypeId) -> Shape {
        match self.nodes[t.0 as usize] {
            Node::Rigid(v) => Shape::Rigid(v),
            Node::Flex(v) => Shape::Flex(v),
            Node::Con(c, r) => Shape::Con(c, r.len()),
            Node::Forall(v, b) => Shape::Forall(v, b),
        }
    }

    /// The `i`th argument of a `Con` node.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a `Con` or `i` is out of range.
    pub fn con_child(&self, t: TypeId, i: usize) -> TypeId {
        match self.nodes[t.0 as usize] {
            Node::Con(_, r) => {
                assert!(i < r.len(), "con_child index {i} out of range");
                self.children[r.start as usize + i]
            }
            other => panic!("con_child on non-Con node {other:?}"),
        }
    }

    /// A rigid variable node.
    pub fn rigid(&mut self, v: TyVar) -> TypeId {
        self.intern_node(Node::Rigid(v), &[])
    }

    /// The node for an existing flexible variable.
    pub fn flex(&mut self, v: VarId) -> TypeId {
        self.intern_node(Node::Flex(v), &[])
    }

    /// A constructor application.
    pub fn con(&mut self, c: TyCon, args: &[TypeId]) -> TypeId {
        self.intern_node(Node::Con(c, ChildRange { start: 0, len: 0 }), args)
    }

    /// The function type `a -> b`.
    pub fn arrow(&mut self, a: TypeId, b: TypeId) -> TypeId {
        self.con(TyCon::Arrow, &[a, b])
    }

    /// `Int`.
    pub fn int(&mut self) -> TypeId {
        self.con(TyCon::Int, &[])
    }

    /// `Bool`.
    pub fn bool(&mut self) -> TypeId {
        self.con(TyCon::Bool, &[])
    }

    /// A quantified type (the binder must be globally fresh — callers
    /// either freshen at interning time or use a cell's unique name).
    pub fn forall(&mut self, v: TyVar, body: TypeId) -> TypeId {
        self.intern_node(Node::Forall(v, body), &[])
    }

    /// A globally fresh `∀` binder, optionally recording the source name
    /// it stands for so zonking restores it (used when layering cached
    /// schemes back into the store — see
    /// [`SchemeStore::intern_into`](crate::scheme::SchemeStore::intern_into)).
    pub fn fresh_binder(&mut self, src: Option<TyVar>) -> TyVar {
        let fresh = TyVar::fresh();
        if let Some(src) = src {
            self.binder_src.insert(fresh, src);
            self.binder_log.push(fresh);
        }
        fresh
    }

    /// A snapshot of the store's extent, for [`Store::reset_to`].
    pub fn checkpoint(&self) -> StoreMark {
        StoreMark {
            nodes: self.nodes.len(),
            children: self.children.len(),
            cells: self.cells.len(),
            binders: self.binder_log.len(),
        }
    }

    /// Shrink the store back to a checkpoint: drop every node, child-slab
    /// entry, cell, freshened-binder record, and trail entry created
    /// since. Sound only when (a) nothing outside the store references
    /// post-checkpoint ids and (b) no pre-checkpoint cell was mutated
    /// after it (nodes only ever reference older nodes, so pre-checkpoint
    /// state is closed). Outstanding [`Mark`]s are invalidated (their
    /// epoch no longer matches). [`Session`](crate::Session) uses this to
    /// reclaim per-term state.
    pub fn reset_to(&mut self, mark: &StoreMark) {
        self.epoch += 1;
        debug_assert!(self
            .cells
            .iter()
            .take(mark.cells)
            .all(|c| c.solution.is_none_or(|t| (t.0 as usize) < mark.nodes)));
        // Evict dropped nodes from the intern table by retracing each
        // one's probe chain.
        for idx in (mark.nodes..self.nodes.len()).rev() {
            let id = TypeId(idx as u32);
            let node = self.nodes[idx];
            let mut h = fingerprint(&node, self.children(id));
            loop {
                match self.intern.get(&h) {
                    Some(&found) if found == id => {
                        self.intern.remove(&h);
                        break;
                    }
                    Some(_) => h = reprobe(h),
                    // Possible only if the node was a duplicate that lost
                    // an interleaved probe race with a collision partner;
                    // nothing to evict.
                    None => break,
                }
            }
        }
        self.nodes.truncate(mark.nodes);
        self.children.truncate(mark.children);
        self.cells.truncate(mark.cells);
        for b in self.binder_log.drain(mark.binders..) {
            self.binder_src.remove(&b);
        }
        self.trail.clear();
    }

    /// A fresh flexible variable of the given kind at the current level.
    /// Returns its cell id and its node.
    pub fn fresh_var(&mut self, kind: Kind) -> (VarId, TypeId) {
        let v = VarId(self.cells.len() as u32);
        self.cells.push(Cell {
            solution: None,
            kind,
            level: self.level,
            name: TyVar::fresh(),
        });
        let id = self.flex(v);
        (v, id)
    }

    /// Number of cells ever created (used as a scope watermark: cells with
    /// ids `< var_count()` existed before the scope opened).
    pub fn var_count(&self) -> usize {
        self.cells.len()
    }

    /// The kind currently recorded for a variable.
    pub fn kind_of(&self, v: VarId) -> Kind {
        self.cells[v.0 as usize].kind
    }

    /// The level currently recorded for a variable.
    pub fn level_of(&self, v: VarId) -> u32 {
        self.cells[v.0 as usize].level
    }

    /// Is the variable solved?
    pub fn is_solved(&self, v: VarId) -> bool {
        self.cells[v.0 as usize].solution.is_some()
    }

    /// The stable zonk name of a variable.
    pub fn name_of(&self, v: VarId) -> TyVar {
        self.cells[v.0 as usize].name
    }

    /// Enter a `let` right-hand side (one generalisation level deeper).
    pub fn enter_level(&mut self) {
        self.level += 1;
    }

    /// Leave a `let` right-hand side.
    pub fn leave_level(&mut self) {
        self.level -= 1;
    }

    /// The current generalisation level.
    pub fn current_level(&self) -> u32 {
        self.level
    }

    // ------------------------------------------------------------ trail

    /// A mark for [`Store::undo_to`] / [`Store::bound_since`].
    pub fn mark(&self) -> Mark {
        Mark {
            trail: self.trail.len(),
            epoch: self.epoch,
        }
    }

    /// Save a cell's state before mutating it.
    fn save(&mut self, v: VarId) {
        let c = &self.cells[v.0 as usize];
        self.trail.push(TrailEntry {
            var: v,
            solution: c.solution,
            kind: c.kind,
            level: c.level,
        });
    }

    /// Roll every cell mutation since `mark` back (benchmark replay; never
    /// used by inference itself, which only scans the trail).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on a mark from before a [`Store::reset_to`]
    /// — the journal it indexed no longer exists.
    pub fn undo_to(&mut self, mark: Mark) {
        debug_assert_eq!(mark.epoch, self.epoch, "mark predates a reset_to");
        while self.trail.len() > mark.trail {
            let e = self.trail.pop().expect("trail len checked");
            let c = &mut self.cells[e.var.0 as usize];
            c.solution = e.solution;
            c.kind = e.kind;
            c.level = e.level;
        }
    }

    /// The variables that went from unsolved to solved since `mark`, in
    /// binding order (deduplicated; compression entries are skipped).
    pub fn bound_since(&self, mark: Mark) -> Vec<VarId> {
        debug_assert_eq!(mark.epoch, self.epoch, "mark predates a reset_to");
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for e in &self.trail[mark.trail..] {
            if e.solution.is_none() && self.is_solved(e.var) && seen.insert(e.var) {
                out.push(e.var);
            }
        }
        out
    }

    /// Demote a variable to kind `•` (trail-recorded).
    pub fn demote(&mut self, v: VarId) {
        if self.cells[v.0 as usize].kind != Kind::Mono {
            self.save(v);
            self.cells[v.0 as usize].kind = Kind::Mono;
        }
    }

    /// Lower a variable's level to at most `level` (trail-recorded).
    fn lower_level(&mut self, v: VarId, level: u32) {
        if self.cells[v.0 as usize].level > level {
            self.save(v);
            self.cells[v.0 as usize].level = level;
        }
    }

    /// Solve a variable (trail-recorded). The caller is responsible for
    /// the occurs check and kind discipline (see `unify::bind`).
    pub fn solve(&mut self, v: VarId, t: TypeId) {
        debug_assert!(self.cells[v.0 as usize].solution.is_none());
        self.save(v);
        self.cells[v.0 as usize].solution = Some(t);
    }

    // ------------------------------------------------------- resolution

    /// Follow solved-variable links to the representative, compressing the
    /// path (trail-recorded so benchmarks can roll back).
    pub fn resolve(&mut self, t: TypeId) -> TypeId {
        let mut cur = t;
        while let Node::Flex(v) = self.node(cur) {
            match self.cells[v.0 as usize].solution {
                Some(next) => cur = next,
                None => break,
            }
        }
        // Path compression: repoint every link on the chain at the root.
        let mut walk = t;
        while walk != cur {
            let Node::Flex(v) = *self.node(walk) else {
                break;
            };
            let next = self.cells[v.0 as usize].solution.expect("on solved chain");
            if next != cur {
                self.save(v);
                self.cells[v.0 as usize].solution = Some(cur);
            }
            walk = next;
        }
        cur
    }

    // -------------------------------------------------------- interning

    /// Intern a `core` type, freshening every `∀` binder. Free named
    /// variables become [`Node::Rigid`] under their own names.
    pub fn intern_type(&mut self, ty: &Type) -> TypeId {
        self.intern_type_with(ty, &FxHashMap::default())
    }

    /// Intern a `core` type, mapping the given free variables to existing
    /// nodes (used to route a test environment's flexible `TyVar`s to
    /// their cells). Bound occurrences always win over the map.
    pub fn intern_type_with(&mut self, ty: &Type, free: &FxHashMap<TyVar, TypeId>) -> TypeId {
        let mut bound = Vec::new();
        self.intern_go(ty, free, &mut bound)
    }

    fn intern_go(
        &mut self,
        ty: &Type,
        free: &FxHashMap<TyVar, TypeId>,
        bound: &mut Vec<(TyVar, TypeId)>,
    ) -> TypeId {
        match ty {
            Type::Var(a) => {
                if let Some((_, id)) = bound.iter().rev().find(|(b, _)| b == a) {
                    *id
                } else if let Some(&id) = free.get(a) {
                    id
                } else {
                    self.rigid(*a)
                }
            }
            Type::Con(c, args) => {
                let ids: Vec<TypeId> = args
                    .iter()
                    .map(|t| self.intern_go(t, free, bound))
                    .collect();
                self.con(*c, &ids)
            }
            Type::Forall(a, body) => {
                let fresh = TyVar::fresh();
                self.binder_src.insert(fresh, *a);
                self.binder_log.push(fresh);
                let fresh_id = self.rigid(fresh);
                bound.push((*a, fresh_id));
                let b = self.intern_go(body, free, bound);
                bound.pop();
                self.forall(fresh, b)
            }
        }
    }

    // ----------------------------------------------------------- zonking

    /// Read an interned type back as a `core` type, resolving every solved
    /// variable. Unsolved variables appear under their stable fresh names,
    /// which `core`'s printer letters exactly like its own flexibles.
    /// Freshened binders get their source names back whenever the name is
    /// not free in the body (so the output names match what the
    /// paper-literal engine would print; `rename_free` keeps the
    /// restoration capture-avoiding in the shadowed-binder corner).
    ///
    /// This re-expands a DAG-shared type into a tree — worst case
    /// exponential in the store representation (the pair chain). It is
    /// the *protocol boundary* operation: inference itself never calls
    /// it, and the scheme pipeline ([`crate::scheme`]) exports results
    /// without it.
    pub fn zonk(&mut self, t: TypeId) -> Type {
        let t = self.resolve(t);
        match self.shape(t) {
            Shape::Rigid(v) => Type::Var(v),
            Shape::Flex(v) => Type::Var(self.name_of(v)),
            Shape::Con(c, n) => {
                let args = (0..n)
                    .map(|i| {
                        let child = self.con_child(t, i);
                        self.zonk(child)
                    })
                    .collect();
                Type::Con(c, args)
            }
            Shape::Forall(v, body) => {
                let body = self.zonk(body);
                if let Some(src) = self.binder_src.get(&v).copied() {
                    if !body.occurs_free(&src) {
                        let body = body.rename_free(&v, &Type::Var(src));
                        return Type::Forall(src, Box::new(body));
                    }
                }
                Type::Forall(v, Box::new(body))
            }
        }
    }

    /// The source name recorded for a freshened binder, if any.
    pub(crate) fn binder_source(&self, v: &TyVar) -> Option<TyVar> {
        self.binder_src.get(v).copied()
    }

    // ------------------------------------------------------ substitution

    /// Replace free occurrences of the rigid variable `from` by `to`,
    /// resolving solved cells on the way (so occurrences reachable through
    /// a generalised cell are rewritten too). Binder uniqueness makes this
    /// capture-free; a memo keeps it linear in the (DAG) size and returns
    /// the original id for untouched subtrees.
    pub fn subst_rigid(&mut self, t: TypeId, from: &TyVar, to: TypeId) -> TypeId {
        let mut memo = FxHashMap::default();
        self.subst_go(t, from, to, &mut memo)
    }

    fn subst_go(
        &mut self,
        t: TypeId,
        from: &TyVar,
        to: TypeId,
        memo: &mut FxHashMap<TypeId, TypeId>,
    ) -> TypeId {
        let t = self.resolve(t);
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let r = match self.shape(t) {
            Shape::Rigid(v) => {
                if v == *from {
                    to
                } else {
                    t
                }
            }
            Shape::Flex(_) => t, // unsolved: cannot contain a rigid
            Shape::Con(c, n) => {
                let mut changed = false;
                let ids: Vec<TypeId> = (0..n)
                    .map(|i| {
                        let child = self.con_child(t, i);
                        let sub = self.subst_go(child, from, to, memo);
                        changed |= sub != child;
                        sub
                    })
                    .collect();
                if changed {
                    self.con(c, &ids)
                } else {
                    t
                }
            }
            Shape::Forall(v, body) => {
                // Binders are globally unique, so `v != from` always and
                // no capture is possible.
                debug_assert_ne!(&v, from, "duplicate binder in store");
                let b = self.subst_go(body, from, to, memo);
                if b == body {
                    t
                } else {
                    self.forall(v, b)
                }
            }
        };
        memo.insert(t, r);
        r
    }

    // ----------------------------------------------------------- queries

    /// Does the rigid variable `v` occur in the resolved type? (Skolem and
    /// annotation-variable escape checks.)
    pub fn occurs_rigid(&mut self, t: TypeId, v: &TyVar) -> bool {
        let mut seen = FxHashSet::default();
        self.occurs_rigid_go(t, v, &mut seen)
    }

    fn occurs_rigid_go(&mut self, t: TypeId, v: &TyVar, seen: &mut FxHashSet<TypeId>) -> bool {
        let t = self.resolve(t);
        if !seen.insert(t) {
            return false;
        }
        match self.shape(t) {
            Shape::Rigid(w) => w == *v,
            Shape::Flex(_) => false,
            Shape::Con(_, n) => (0..n).any(|i| {
                let child = self.con_child(t, i);
                self.occurs_rigid_go(child, v, seen)
            }),
            Shape::Forall(_, body) => self.occurs_rigid_go(body, v, seen),
        }
    }

    /// The distinct unsolved flexible variables free in the resolved type,
    /// in order of first appearance (the paper's ordered `ftv`).
    pub fn free_flex(&mut self, t: TypeId) -> Vec<VarId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        self.free_flex_go(t, &mut seen, &mut out);
        out
    }

    fn free_flex_go(&mut self, t: TypeId, seen: &mut FxHashSet<TypeId>, out: &mut Vec<VarId>) {
        let t = self.resolve(t);
        if !seen.insert(t) {
            return;
        }
        match self.shape(t) {
            Shape::Rigid(_) => {}
            Shape::Flex(v) => out.push(v),
            Shape::Con(_, n) => {
                for i in 0..n {
                    let child = self.con_child(t, i);
                    self.free_flex_go(child, seen, out);
                }
            }
            Shape::Forall(_, body) => self.free_flex_go(body, seen, out),
        }
    }

    /// What `unify::bind` needs to know about a candidate solution, in one
    /// memoized walk over the resolved type: does the variable being
    /// solved occur (the occurs check), does a quantifier occur anywhere
    /// (the kind check), and which unsolved variables are free in it (for
    /// demotion and level propagation).
    pub fn analyze(&mut self, t: TypeId, x: VarId) -> Analysis {
        let mut a = Analysis::default();
        let mut seen = FxHashSet::default();
        self.analyze_go(t, x, &mut seen, &mut a);
        a
    }

    fn analyze_go(&mut self, t: TypeId, x: VarId, seen: &mut FxHashSet<TypeId>, a: &mut Analysis) {
        let t = self.resolve(t);
        if !seen.insert(t) {
            return;
        }
        match self.shape(t) {
            Shape::Rigid(_) => {}
            Shape::Flex(v) => {
                if v == x {
                    a.occurs = true;
                } else {
                    a.flex.push(v);
                }
            }
            Shape::Con(_, n) => {
                for i in 0..n {
                    let child = self.con_child(t, i);
                    self.analyze_go(child, x, seen, a);
                }
            }
            Shape::Forall(_, body) => {
                a.has_forall = true;
                self.analyze_go(body, x, seen, a);
            }
        }
    }

    /// Propagate a binding's level and (for `•`-kinded bindings, Figure
    /// 15's `demote`) kind into the free variables of the solution.
    pub fn absorb(&mut self, vars: &[VarId], level: u32, demote: bool) {
        for &v in vars {
            self.lower_level(v, level);
            if demote {
                self.demote(v);
            }
        }
    }
}

/// Result of [`Store::analyze`].
#[derive(Default, Debug)]
pub struct Analysis {
    /// The solved-for variable occurs in the candidate type.
    pub occurs: bool,
    /// A `∀` occurs somewhere in the candidate type.
    pub has_forall: bool,
    /// Distinct unsolved variables free in the candidate, in order.
    pub flex: Vec<VarId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::parse_type;

    #[test]
    fn interning_shares_nodes() {
        let mut s = Store::new();
        let a = s.int();
        let b = s.int();
        assert_eq!(a, b);
        let f1 = s.arrow(a, b);
        let f2 = s.arrow(a, b);
        assert_eq!(f1, f2);
    }

    #[test]
    fn nodes_are_copy_and_slab_backed() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Node>();
        assert_copy::<Shape>();
        let mut s = Store::new();
        let i = s.int();
        let b = s.bool();
        let p = s.con(TyCon::Prod, &[i, b]);
        assert_eq!(s.children(p), &[i, b]);
        assert_eq!(s.con_child(p, 0), i);
        assert_eq!(s.con_child(p, 1), b);
        assert!(s.children(i).is_empty());
    }

    #[test]
    fn reset_evicts_interned_nodes_and_children() {
        let mut s = Store::new();
        let i = s.int();
        let mark = s.checkpoint();
        let b = s.bool();
        let p = s.con(TyCon::Prod, &[i, b]);
        let slab_len = s.children.len();
        assert!(slab_len >= 2);
        s.reset_to(&mark);
        // Dropped nodes are gone from arena, slab, and intern table…
        assert_eq!(s.nodes.len(), 1);
        assert!(s.children.len() < slab_len);
        // …and re-creating them re-interns fresh ids at the same slots.
        let b2 = s.bool();
        let p2 = s.con(TyCon::Prod, &[i, b2]);
        assert_eq!(b2, b, "slot reuse after reset");
        assert_eq!(p2, p);
        // Pre-mark nodes still deduplicate.
        assert_eq!(s.int(), i);
    }

    #[test]
    fn binders_are_freshened() {
        let mut s = Store::new();
        let t = parse_type("forall a. a -> a").unwrap();
        let id1 = s.intern_type(&t);
        let id2 = s.intern_type(&t);
        // Fresh binders each time: different interned identities…
        assert_ne!(id1, id2);
        // …but both zonk back to the same α-class.
        assert!(s.zonk(id1).alpha_eq(&t));
        assert!(s.zonk(id2).alpha_eq(&t));
    }

    #[test]
    fn free_vars_keep_their_names() {
        let mut s = Store::new();
        let t = parse_type("a -> forall b. b -> a").unwrap();
        let id = s.intern_type(&t);
        let z = s.zonk(id);
        assert!(z.alpha_eq(&t));
        assert_eq!(z.ftv(), t.ftv());
    }

    #[test]
    fn resolve_follows_and_compresses() {
        let mut s = Store::new();
        let (x, xid) = s.fresh_var(Kind::Poly);
        let (y, yid) = s.fresh_var(Kind::Poly);
        let i = s.int();
        s.solve(x, yid);
        s.solve(y, i);
        assert_eq!(s.resolve(xid), i);
        // Compressed: x now links straight to Int.
        assert_eq!(s.cells[x.0 as usize].solution, Some(i));
    }

    #[test]
    fn undo_restores_solutions_kinds_and_levels() {
        let mut s = Store::new();
        let (x, xid) = s.fresh_var(Kind::Poly);
        let m = s.mark();
        let i = s.int();
        s.solve(x, i);
        s.demote(x);
        assert_eq!(s.resolve(xid), i);
        s.undo_to(m);
        assert_eq!(s.resolve(xid), xid);
        assert_eq!(s.kind_of(x), Kind::Poly);
    }

    #[test]
    fn bound_since_reports_bindings_not_compressions() {
        let mut s = Store::new();
        let (x, _) = s.fresh_var(Kind::Poly);
        let (y, yid) = s.fresh_var(Kind::Poly);
        let m = s.mark();
        s.solve(x, yid);
        let i = s.int();
        s.solve(y, i);
        let xid = s.flex(x);
        let _ = s.resolve(xid); // compresses x
        assert_eq!(s.bound_since(m), vec![x, y]);
    }

    #[test]
    fn subst_rigid_rewrites_through_solutions() {
        let mut s = Store::new();
        let (x, xid) = s.fresh_var(Kind::Poly);
        let a = TyVar::named("a");
        let aid = s.rigid(a);
        s.solve(x, aid);
        let arr = s.arrow(xid, aid);
        let i = s.int();
        let r = s.subst_rigid(arr, &a, i);
        assert_eq!(s.zonk(r), parse_type("Int -> Int").unwrap());
    }

    #[test]
    fn analyze_finds_occurs_foralls_and_flexibles() {
        let mut s = Store::new();
        let (x, xid) = s.fresh_var(Kind::Poly);
        let (y, yid) = s.fresh_var(Kind::Poly);
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let idt = s.intern_type(&id_ty);
        let t = s.con(TyCon::Prod, &[yid, idt]);
        let a = s.analyze(t, x);
        assert!(!a.occurs && a.has_forall);
        assert_eq!(a.flex, vec![y]);
        let t2 = s.arrow(xid, yid);
        let a2 = s.analyze(t2, x);
        assert!(a2.occurs);
        assert!(!a2.has_forall);
    }

    #[test]
    fn zonk_is_dag_safe() {
        // pair-chain-shaped sharing: (t, t) nested; interning collapses it.
        let mut s = Store::new();
        let mut t = s.int();
        for _ in 0..4 {
            t = s.con(TyCon::Prod, &[t, t]);
        }
        let z = s.zonk(t);
        assert_eq!(z.size(), 31); // full tree re-expanded
    }

    #[test]
    fn pair_chain_is_linear_in_the_store() {
        // The n=12 exponential pair chain: 2^12 tree nodes, O(n) arena
        // nodes — the representation invariant the scheme pipeline
        // preserves across the engine boundary.
        let mut s = Store::new();
        let before = s.nodes.len();
        let mut t = s.int();
        for _ in 0..12 {
            t = s.con(TyCon::Prod, &[t, t]);
        }
        assert_eq!(s.nodes.len() - before, 13);
    }
}
