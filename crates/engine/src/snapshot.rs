//! Portable scheme snapshots: the process-independent form of a
//! [`SchemeBank`](crate::SchemeBank) DAG.
//!
//! A [`SchemeId`](crate::SchemeId) is only meaningful inside the bank
//! that interned it — ids encode shard/slot positions, and named
//! variables carry [`Symbol`](freezeml_core::Symbol)s that index a
//! process-local table. To persist warm state across restarts
//! (`freezeml --cache-dir`), the bank's reachable subgraph is flattened
//! into [`PortableNode`]s: children become indices into the flattened
//! vector (strictly topological — a child index is always smaller than
//! its parent's), and every name travels as a string.
//!
//! Two deliberate lossy edges keep the format sound:
//!
//! * **Invented variables don't travel.** Fresh (`%n`) and skolem
//!   (`!n`) variables are meaningless in another process — exporting a
//!   node that reaches one returns `None` and the caller skips the
//!   cache entry rooted there. Persisted schemes are exactly the
//!   *presentable* ones: named or closed.
//! * **Absorb is total.** [`SchemeBank::absorb_snapshot`] re-interns
//!   structurally, so loaded ids are bank-native α-classes; it
//!   validates the topological child order and tracks each node's open
//!   de-Bruijn depth, and [`AbsorbedSnapshot::closed`] only hands out
//!   roots that are well-scoped. Arbitrarily corrupted input produces
//!   an error or a rejected root — never a panic.

use std::fmt;

/// A type constructor by name — the portable image of
/// [`TyCon`](freezeml_core::TyCon). Builtins keep their own tags so a
/// user constructor literally named `Int` cannot collapse into the
/// builtin on reload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableCon {
    /// `Int`.
    Int,
    /// `Bool`.
    Bool,
    /// `List`.
    List,
    /// `->`.
    Arrow,
    /// `*`.
    Prod,
    /// `ST`.
    St,
    /// A user-defined constructor.
    Other {
        /// The constructor's surface name.
        name: String,
        /// Its arity (checked against the child count on absorb).
        arity: u32,
    },
}

/// One flattened scheme node. Child references are indices into the
/// snapshot's node vector and always point *backwards* (child < parent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableNode {
    /// A de-Bruijn bound variable.
    Bound(u32),
    /// A free *named* variable, carried by name.
    Free(String),
    /// A constructor application.
    Con(PortableCon, Vec<u32>),
    /// A quantifier over `body`, with the binder's source-name hint.
    Forall {
        /// Index of the body node.
        body: u32,
        /// Source binder name, if the exporting bank had one.
        hint: Option<String>,
    },
}

/// Why a snapshot could not be absorbed. The message is diagnostic
/// only — callers treat any error as "fall back to cold".
#[derive(Debug)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid scheme snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// The result of absorbing a snapshot: per-node bank ids plus each
/// node's open de-Bruijn depth (0 ⇔ well-scoped as a root).
pub struct AbsorbedSnapshot {
    pub(crate) ids: Vec<crate::SchemeId>,
    pub(crate) open: Vec<u32>,
}

impl AbsorbedSnapshot {
    /// The bank-native id for snapshot node `idx`, provided the node is
    /// closed (no dangling `Bound` reference). Open nodes are interned —
    /// they may be legitimate sub-terms — but must never be used as
    /// roots, where `to_type`/`pretty` would index past the binder
    /// stack.
    pub fn closed(&self, idx: u32) -> Option<crate::SchemeId> {
        let i = idx as usize;
        match (self.ids.get(i), self.open.get(i)) {
            (Some(&id), Some(0)) => Some(id),
            _ => None,
        }
    }

    /// Number of nodes absorbed.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}
