//! The concurrent scheme bank: a sharded, fingerprint-partitioned
//! [`SchemeStore`](crate::SchemeStore) that many worker threads intern
//! into and read from **without a global lock**.
//!
//! PR 3's executor wrapped one `SchemeStore` in a `Mutex`, so every
//! worker serialised on scheme import/export — and a panicking worker
//! poisoned the store for the rest of the session. This module keeps
//! the store's semantics (hash-consed ground de Bruijn nodes, so a
//! [`SchemeId`] is an α-equivalence class and id equality is scheme
//! equality) while spreading the arena over `SHARDS` independently
//! locked shards:
//!
//! * a node's **home shard** is chosen by its structural fingerprint
//!   (`fp & (SHARDS-1)`), so α-identical nodes interned from any thread
//!   race to the *same* shard and the hash-consing invariant — one id
//!   per α-class per bank — holds bank-wide, not per shard;
//! * a [`SchemeId`] encodes `(slot << SHARD_BITS) | shard`: ids stay
//!   stable for the life of the bank, and decoding never needs a lock;
//! * every method takes `&self`; interior shard locks are held for one
//!   node read or one probe+insert, **never across recursion**, so the
//!   lock graph is flat and deadlock-free by construction;
//! * locks recover from poisoning (`PoisonError::into_inner`) — shard
//!   state is only written under invariant-preserving single-node
//!   operations, so a panicked writer leaves the shard valid and a
//!   poisoned lock is safe to re-enter. One crashed binding can no
//!   longer take the session's scheme space down with it.
//!
//! The traversal algorithms (export, intern-into, rendering, canonical
//! lettering) are the store's, re-expressed over [`SchemeBank::view`]
//! snapshots; the differential test in `tests/bank_differential.rs`
//! holds the two implementations to the same α-class partition and
//! byte-identical renderings. As with `Store`/`SchemeStore`, a fix to
//! either interner's probe or slab logic almost certainly applies to
//! both — keep them in lockstep.

use crate::snapshot::{AbsorbedSnapshot, PortableCon, PortableNode, SnapshotError};
use crate::store::{reprobe, Shape, Store, TypeId};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, PoisonError};
use crate::SchemeId;
use freezeml_core::{Symbol, TyCon, TyVar, Type};
use freezeml_obs::lockrank;
use fxhash::{FxHashMap, FxHashSet};
use std::hash::{Hash, Hasher};

/// log₂ of the shard count. 16 shards keeps the id encoding roomy
/// (2²⁸ nodes per shard) while giving a worker pool an order of
/// magnitude more lock granularity than it has threads.
const SHARD_BITS: u32 = 4;

/// Number of shards in a bank.
pub const SHARDS: usize = 1 << SHARD_BITS;

const SHARD_MASK: u32 = (SHARDS as u32) - 1;

/// A contiguous child range in one shard's slab.
#[derive(Clone, Copy)]
struct SRange {
    start: u32,
    len: u32,
}

/// One scheme node, as stored. Child ids are *global* (bank-encoded)
/// [`SchemeId`]s; the `SRange` indexes the owning shard's slab.
#[derive(Clone, Copy)]
enum SNode {
    Bound(u32),
    Free(TyVar),
    Con(TyCon, SRange),
    Forall(SchemeId),
}

/// A copied-out snapshot of one node: what traversals recurse over
/// after the shard lock is dropped.
enum View {
    Bound(u32),
    Free(TyVar),
    Con(TyCon, Vec<SchemeId>),
    Forall(SchemeId),
}

/// One lock's worth of the bank: a miniature `SchemeStore` arena.
#[derive(Default)]
struct Shard {
    nodes: Vec<SNode>,
    children: Vec<SchemeId>,
    /// Per-node binder name hint (only meaningful for `Forall` nodes).
    /// First exporter wins — hints never affect identity.
    hints: Vec<Option<TyVar>>,
    intern: FxHashMap<u64, SchemeId>,
    /// Memoised renderings of nodes homed here.
    rendered: FxHashMap<SchemeId, Arc<str>>,
}

impl Shard {
    fn children_of(&self, r: SRange) -> &[SchemeId] {
        &self.children[r.start as usize..(r.start + r.len) as usize]
    }

    fn node_eq(&self, id: SchemeId, node: &SNode, args: &[SchemeId]) -> bool {
        match (&self.nodes[slot_of(id)], node) {
            (SNode::Bound(a), SNode::Bound(b)) => a == b,
            (SNode::Free(a), SNode::Free(b)) => a == b,
            (SNode::Con(c, r), SNode::Con(d, _)) => c == d && self.children_of(*r) == args,
            (SNode::Forall(a), SNode::Forall(b)) => a == b,
            _ => false,
        }
    }
}

/// Which shard an id lives in.
fn shard_of(id: SchemeId) -> usize {
    (id.index() & SHARD_MASK) as usize
}

/// The id's slot within its shard's arenas.
fn slot_of(id: SchemeId) -> usize {
    (id.index() >> SHARD_BITS) as usize
}

fn assemble(slot: usize, shard: usize) -> SchemeId {
    let raw = ((slot as u32) << SHARD_BITS) | shard as u32;
    assert!(
        slot_of(SchemeId::from_raw(raw)) == slot,
        "scheme bank shard overflow"
    );
    SchemeId::from_raw(raw)
}

/// The sharded concurrent scheme arena. See the module docs.
pub struct SchemeBank {
    /// Rank-witnessed shard locks (`lockrank::BANK_SHARD` is the
    /// highest rank in the table: a shard lock is a leaf — nothing is
    /// ever acquired while holding one, and the debug-build witness
    /// enforces exactly that).
    shards: [lockrank::RwLock<Shard>; SHARDS],
    /// Tree/string materialisations performed (cold `pretty`/`to_type`
    /// work) — the counter the service asserts its memoisation against.
    renders: AtomicU64,
    /// `pretty` calls served from the memo.
    render_hits: AtomicU64,
}

impl Default for SchemeBank {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemeBank {
    /// An empty bank.
    pub fn new() -> Self {
        SchemeBank {
            shards: std::array::from_fn(|_| {
                lockrank::RwLock::new(lockrank::BANK_SHARD, "engine.bank.shard", Shard::default())
            }),
            // ord: Relaxed everywhere below — renders/render_hits are
            // monotonic statistics; no reader derives control flow or
            // publication from them.
            renders: AtomicU64::new(0),
            render_hits: AtomicU64::new(0),
        }
    }

    /// Shard read lock, recovering from poison: shard invariants are
    /// maintained per single-node operation, so state behind a
    /// poisoned lock is still valid.
    fn read(&self, s: usize) -> lockrank::RwLockReadGuard<'_, Shard> {
        self.shards[s]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self, s: usize) -> lockrank::RwLockWriteGuard<'_, Shard> {
        self.shards[s]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Copy one node out of its shard. The only way traversals touch
    /// shard state — the lock is released before any recursion.
    fn view(&self, id: SchemeId) -> View {
        let g = self.read(shard_of(id));
        match g.nodes[slot_of(id)] {
            SNode::Bound(i) => View::Bound(i),
            SNode::Free(v) => View::Free(v),
            SNode::Con(c, r) => View::Con(c, g.children_of(r).to_vec()),
            SNode::Forall(b) => View::Forall(b),
        }
    }

    fn hint(&self, id: SchemeId) -> Option<TyVar> {
        self.read(shard_of(id)).hints[slot_of(id)]
    }

    /// Number of interned scheme nodes, bank-wide (observability).
    pub fn len(&self) -> usize {
        (0..SHARDS).map(|s| self.read(s).nodes.len()).sum()
    }

    /// Is the bank empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cold materialisations (tree or string) performed so far.
    pub fn renders(&self) -> u64 {
        // ord: Relaxed — monotonic statistic; no acquire pairing needed.
        self.renders.load(Ordering::Relaxed)
    }

    /// `pretty` calls served straight from the per-node memo.
    pub fn render_hits(&self) -> u64 {
        // ord: Relaxed — monotonic statistic; no acquire pairing needed.
        self.render_hits.load(Ordering::Relaxed)
    }

    fn fingerprint(node: &SNode, args: &[SchemeId]) -> u64 {
        let mut h = fxhash::FxHasher::default();
        match node {
            SNode::Bound(i) => {
                h.write_u8(0);
                h.write_u32(*i);
            }
            SNode::Free(v) => {
                h.write_u8(1);
                v.hash(&mut h);
            }
            SNode::Con(c, _) => {
                h.write_u8(2);
                c.hash(&mut h);
                h.write_u32(args.len() as u32);
                for a in args {
                    h.write_u32(a.index());
                }
            }
            SNode::Forall(b) => {
                h.write_u8(3);
                h.write_u32(b.index());
            }
        }
        h.finish()
    }

    /// Hash-consing intern. The home shard is a pure function of the
    /// initial fingerprint, so concurrent interns of α-identical nodes
    /// contend on one lock and are deduplicated there; the probe chain
    /// (`reprobe` on fingerprint collision) stays within the shard.
    fn intern_node(&self, node: SNode, args: &[SchemeId], hint: Option<TyVar>) -> SchemeId {
        let fp = Self::fingerprint(&node, args);
        let s = (fp as u32 & SHARD_MASK) as usize;
        let mut shard = self.write(s);
        let mut h = fp;
        loop {
            match shard.intern.get(&h) {
                Some(&id) if shard.node_eq(id, &node, args) => return id,
                Some(_) => h = reprobe(h),
                None => break,
            }
        }
        let id = assemble(shard.nodes.len(), s);
        let node = match node {
            SNode::Con(c, _) => {
                let start = shard.children.len() as u32;
                shard.children.extend_from_slice(args);
                SNode::Con(
                    c,
                    SRange {
                        start,
                        len: args.len() as u32,
                    },
                )
            }
            other => other,
        };
        shard.nodes.push(node);
        shard.hints.push(hint);
        shard.intern.insert(h, id);
        id
    }

    // ---------------------------------------------------------- export

    /// Export a resolved session type into the bank, preserving sharing:
    /// O(DAG) in the store representation. Semantics identical to
    /// [`SchemeStore::export`](crate::SchemeStore::export).
    pub fn export(&self, store: &mut Store, t: TypeId) -> SchemeId {
        let mut binders: Vec<TyVar> = Vec::new();
        let mut memo: FxHashMap<TypeId, SchemeId> = FxHashMap::default();
        self.export_go(store, t, &mut binders, &mut memo).0
    }

    /// Returns `(id, lowest_ref)` — see `SchemeStore::export_go`; the
    /// scope-closed memoisation rule is identical.
    fn export_go(
        &self,
        store: &mut Store,
        t: TypeId,
        binders: &mut Vec<TyVar>,
        memo: &mut FxHashMap<TypeId, SchemeId>,
    ) -> (SchemeId, Option<usize>) {
        let t = store.resolve(t);
        if let Some(&id) = memo.get(&t) {
            return (id, None);
        }
        match store.shape(t) {
            Shape::Rigid(v) => {
                if let Some(pos) = binders.iter().rposition(|b| *b == v) {
                    let idx = (binders.len() - 1 - pos) as u32;
                    (self.intern_node(SNode::Bound(idx), &[], None), Some(pos))
                } else {
                    let id = self.intern_node(SNode::Free(v), &[], None);
                    memo.insert(t, id);
                    (id, None)
                }
            }
            Shape::Flex(v) => {
                let name = store.name_of(v);
                let id = self.intern_node(SNode::Free(name), &[], None);
                memo.insert(t, id);
                (id, None)
            }
            Shape::Con(c, n) => {
                let mut lowest: Option<usize> = None;
                let ids: Vec<SchemeId> = (0..n)
                    .map(|i| {
                        let child = store.con_child(t, i);
                        let (id, low) = self.export_go(store, child, binders, memo);
                        lowest = match (lowest, low) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        id
                    })
                    .collect();
                let id = self.intern_node(SNode::Con(c, SRange { start: 0, len: 0 }), &ids, None);
                if lowest.is_none() {
                    memo.insert(t, id);
                }
                (id, lowest)
            }
            Shape::Forall(v, body) => {
                let depth = binders.len();
                binders.push(v);
                let (b, low) = self.export_go(store, body, binders, memo);
                binders.pop();
                let hint = store.binder_source(&v);
                let id = self.intern_node(SNode::Forall(b), &[], hint);
                let escaping = low.filter(|&p| p < depth);
                if escaping.is_none() {
                    memo.insert(t, id);
                }
                (id, escaping)
            }
        }
    }

    /// Import a `core` type directly — α-canonical like export, so a
    /// core-inferred and a uf-inferred α-equivalent scheme intern to
    /// the same id.
    pub fn intern_type(&self, ty: &Type) -> SchemeId {
        let mut binders: Vec<TyVar> = Vec::new();
        self.intern_type_go(ty, &mut binders)
    }

    fn intern_type_go(&self, ty: &Type, binders: &mut Vec<TyVar>) -> SchemeId {
        match ty {
            Type::Var(v) => {
                if let Some(pos) = binders.iter().rposition(|b| b == v) {
                    let idx = (binders.len() - 1 - pos) as u32;
                    self.intern_node(SNode::Bound(idx), &[], None)
                } else {
                    self.intern_node(SNode::Free(*v), &[], None)
                }
            }
            Type::Con(c, args) => {
                let ids: Vec<SchemeId> = args
                    .iter()
                    .map(|a| self.intern_type_go(a, binders))
                    .collect();
                self.intern_node(SNode::Con(*c, SRange { start: 0, len: 0 }), &ids, None)
            }
            Type::Forall(v, body) => {
                binders.push(*v);
                let b = self.intern_type_go(body, binders);
                binders.pop();
                let hint = if v.is_named() { Some(*v) } else { None };
                self.intern_node(SNode::Forall(b), &[], hint)
            }
        }
    }

    // ---------------------------------------------------------- import

    /// Layer a scheme back into a session [`Store`] in O(DAG) — a
    /// dependency's cached scheme entering `Γ`. Binders are freshened
    /// and their hints recorded, exactly as
    /// [`SchemeStore::intern_into`](crate::SchemeStore::intern_into).
    pub fn intern_into(&self, store: &mut Store, id: SchemeId) -> TypeId {
        let mut binders: Vec<TypeId> = Vec::new();
        let mut memo: FxHashMap<SchemeId, TypeId> = FxHashMap::default();
        self.intern_into_go(store, id, &mut binders, &mut memo).0
    }

    fn intern_into_go(
        &self,
        store: &mut Store,
        id: SchemeId,
        binders: &mut Vec<TypeId>,
        memo: &mut FxHashMap<SchemeId, TypeId>,
    ) -> (TypeId, Option<u32>) {
        if let Some(&t) = memo.get(&id) {
            return (t, None);
        }
        match self.view(id) {
            View::Bound(i) => {
                let t = binders[binders.len() - 1 - i as usize];
                (t, Some(i))
            }
            View::Free(v) => {
                let t = store.rigid(v);
                memo.insert(id, t);
                (t, None)
            }
            View::Con(c, children) => {
                let mut deepest: Option<u32> = None;
                let mut ids: Vec<TypeId> = Vec::with_capacity(children.len());
                for ch in children {
                    let (t, d) = self.intern_into_go(store, ch, binders, memo);
                    deepest = match (deepest, d) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    ids.push(t);
                }
                let t = store.con(c, &ids);
                if deepest.is_none() {
                    memo.insert(id, t);
                }
                (t, deepest)
            }
            View::Forall(body) => {
                let fresh = store.fresh_binder(self.hint(id));
                let fresh_id = store.rigid(fresh);
                binders.push(fresh_id);
                let (b, d) = self.intern_into_go(store, body, binders, memo);
                binders.pop();
                let t = store.forall(fresh, b);
                let escaping = d.and_then(|m| m.checked_sub(1));
                if escaping.is_none() {
                    memo.insert(id, t);
                }
                (t, escaping)
            }
        }
    }

    // ------------------------------------------------- materialisation

    /// Materialise the scheme as a `core::Type` tree — the on-demand
    /// zonk, exponential in the worst case (the tree *is* that big).
    pub fn to_type(&self, id: SchemeId) -> Type {
        // ord: Relaxed — statistic bump; RMW atomicity is all we need.
        self.renders.fetch_add(1, Ordering::Relaxed);
        let mut stack: Vec<TyVar> = Vec::new();
        self.to_type_go(id, &mut stack)
    }

    fn to_type_go(&self, id: SchemeId, stack: &mut Vec<TyVar>) -> Type {
        match self.view(id) {
            View::Bound(i) => Type::Var(stack[stack.len() - 1 - i as usize]),
            View::Free(v) => Type::Var(v),
            View::Con(c, children) => {
                let args = children
                    .into_iter()
                    .map(|ch| self.to_type_go(ch, stack))
                    .collect();
                Type::Con(c, args)
            }
            View::Forall(body) => {
                let placeholder = TyVar::fresh();
                stack.push(placeholder);
                let body_ty = self.to_type_go(body, stack);
                stack.pop();
                Type::Forall(placeholder, Box::new(body_ty))
            }
        }
    }

    /// The canonical rendering of the scheme, memoised per id — byte
    /// identical to [`SchemeStore::pretty`](crate::SchemeStore::pretty)
    /// (binders lettered canonically in traversal order; hints never
    /// consulted). Two threads racing on a cold id both compute the
    /// same deterministic string; last insert wins harmlessly.
    pub fn pretty(&self, id: SchemeId) -> Arc<str> {
        let s_idx = shard_of(id);
        if let Some(s) = self.read(s_idx).rendered.get(&id) {
            // ord: Relaxed — statistic bump; RMW atomicity is all we need.
            self.render_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(s);
        }
        // ord: Relaxed — statistic bump; RMW atomicity is all we need.
        self.renders.fetch_add(1, Ordering::Relaxed);
        let s: Arc<str> = if self.directly_renderable(id) {
            let mut taken = FxHashSet::default();
            for v in self.free_vars(id) {
                if let Some(sym) = v.symbol() {
                    taken.insert(sym);
                }
            }
            let mut supply = freezeml_core::types::letter_supply(taken);
            let mut out = String::new();
            self.render_go(id, 1, &mut Vec::new(), &mut supply, &mut out);
            Arc::from(out)
        } else {
            Arc::from(self.to_type_tree(id).to_string())
        };
        self.write(s_idx).rendered.insert(id, Arc::clone(&s));
        s
    }

    /// `to_type` without bumping the counter twice (internal fallback).
    fn to_type_tree(&self, id: SchemeId) -> Type {
        let mut stack = Vec::new();
        self.to_type_go(id, &mut stack)
    }

    fn directly_renderable(&self, id: SchemeId) -> bool {
        let mut seen = FxHashSet::default();
        self.renderable_go(id, &mut seen)
    }

    fn renderable_go(&self, id: SchemeId, seen: &mut FxHashSet<SchemeId>) -> bool {
        if !seen.insert(id) {
            return true;
        }
        match self.view(id) {
            View::Bound(_) => true,
            View::Free(v) => v.is_named(),
            View::Con(_, children) => children.into_iter().all(|ch| self.renderable_go(ch, seen)),
            View::Forall(body) => self.renderable_go(body, seen),
        }
    }

    /// Direct renderer; precedence levels match `core::pretty`.
    fn render_go(
        &self,
        id: SchemeId,
        prec: u8,
        stack: &mut Vec<Symbol>,
        supply: &mut impl Iterator<Item = Symbol>,
        out: &mut String,
    ) {
        match self.view(id) {
            View::Bound(i) => {
                let sym = stack[stack.len() - 1 - i as usize];
                out.push_str(sym.as_str());
            }
            View::Free(v) => out.push_str(v.name().unwrap_or("?")),
            View::Forall(_) => {
                if prec > 1 {
                    out.push('(');
                }
                out.push_str("forall");
                let mut cur = id;
                let mut pushed = 0usize;
                while let View::Forall(body) = self.view(cur) {
                    let sym = supply.next().expect("infinite supply");
                    out.push(' ');
                    out.push_str(sym.as_str());
                    stack.push(sym);
                    pushed += 1;
                    cur = body;
                }
                out.push_str(". ");
                self.render_go(cur, 1, stack, supply, out);
                stack.truncate(stack.len() - pushed);
                if prec > 1 {
                    out.push(')');
                }
            }
            View::Con(c, args) => match (c, args.len()) {
                (TyCon::Arrow, 2) => {
                    if prec > 1 {
                        out.push('(');
                    }
                    self.render_go(args[0], 2, stack, supply, out);
                    out.push_str(" -> ");
                    self.render_go(args[1], 1, stack, supply, out);
                    if prec > 1 {
                        out.push(')');
                    }
                }
                (TyCon::Prod, 2) => {
                    if prec > 2 {
                        out.push('(');
                    }
                    self.render_go(args[0], 3, stack, supply, out);
                    out.push_str(" * ");
                    self.render_go(args[1], 3, stack, supply, out);
                    if prec > 2 {
                        out.push(')');
                    }
                }
                (_, 0) => out.push_str(c.name()),
                _ => {
                    if prec > 3 {
                        out.push('(');
                    }
                    out.push_str(c.name());
                    for a in args {
                        out.push(' ');
                        self.render_go(a, 4, stack, supply, out);
                    }
                    if prec > 3 {
                        out.push(')');
                    }
                }
            },
        }
    }

    // ------------------------------------------------------- snapshots

    /// Flatten the subgraphs reachable from `roots` into portable form
    /// (see [`crate::snapshot`]). Returns the flattened node vector and,
    /// per root, its index therein — `None` where the root reaches an
    /// invented (fresh/skolem) variable, which cannot travel between
    /// processes. Children always precede parents in the output, the
    /// invariant [`Self::absorb_snapshot`] validates on the way back in.
    pub fn export_snapshot(&self, roots: &[SchemeId]) -> (Vec<PortableNode>, Vec<Option<u32>>) {
        let mut nodes: Vec<PortableNode> = Vec::new();
        let mut memo: FxHashMap<SchemeId, Option<u32>> = FxHashMap::default();
        let idxs = roots
            .iter()
            .map(|&r| self.export_portable(r, &mut nodes, &mut memo))
            .collect();
        (nodes, idxs)
    }

    fn export_portable(
        &self,
        id: SchemeId,
        nodes: &mut Vec<PortableNode>,
        memo: &mut FxHashMap<SchemeId, Option<u32>>,
    ) -> Option<u32> {
        if let Some(&idx) = memo.get(&id) {
            return idx;
        }
        let node = match self.view(id) {
            View::Bound(i) => Some(PortableNode::Bound(i)),
            View::Free(v) => v.name().map(|n| PortableNode::Free(n.to_string())),
            View::Con(c, children) => {
                let mut idxs = Vec::with_capacity(children.len());
                let mut ok = true;
                for ch in children {
                    match self.export_portable(ch, nodes, memo) {
                        Some(i) => idxs.push(i),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    let pc = match c {
                        TyCon::Int => PortableCon::Int,
                        TyCon::Bool => PortableCon::Bool,
                        TyCon::List => PortableCon::List,
                        TyCon::Arrow => PortableCon::Arrow,
                        TyCon::Prod => PortableCon::Prod,
                        TyCon::St => PortableCon::St,
                        TyCon::Other(s, n) => PortableCon::Other {
                            name: s.as_str().to_string(),
                            arity: n as u32,
                        },
                    };
                    Some(PortableNode::Con(pc, idxs))
                } else {
                    None
                }
            }
            View::Forall(body) => self.export_portable(body, nodes, memo).map(|b| {
                let hint = self.hint(id).and_then(|v| v.name().map(|n| n.to_string()));
                PortableNode::Forall { body: b, hint }
            }),
        };
        let idx = node.map(|n| {
            let i = nodes.len() as u32;
            nodes.push(n);
            i
        });
        memo.insert(id, idx);
        idx
    }

    /// Re-intern a flattened snapshot, remapping its indices to this
    /// bank's ids. Total over arbitrary input: child references must
    /// point strictly backwards and constructor arities must match, or
    /// the whole snapshot is rejected; each node's open de-Bruijn depth
    /// is tracked so [`AbsorbedSnapshot::closed`] can refuse ill-scoped
    /// roots. α-identical schemes re-intern to the ids the bank would
    /// have produced natively — loading a snapshot can only deduplicate,
    /// never fork, the α-class space.
    pub fn absorb_snapshot(
        &self,
        nodes: &[PortableNode],
    ) -> Result<AbsorbedSnapshot, SnapshotError> {
        if nodes.len() > (u32::MAX as usize) {
            return Err(SnapshotError("snapshot too large".into()));
        }
        let mut ids: Vec<SchemeId> = Vec::with_capacity(nodes.len());
        let mut open: Vec<u32> = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let child = |c: u32| -> Result<usize, SnapshotError> {
                if (c as usize) < i {
                    Ok(c as usize)
                } else {
                    Err(SnapshotError(format!(
                        "node {i} references child {c} (not topological)"
                    )))
                }
            };
            let (id, o) = match node {
                PortableNode::Bound(k) => (
                    self.intern_node(SNode::Bound(*k), &[], None),
                    k.saturating_add(1),
                ),
                PortableNode::Free(name) => (
                    self.intern_node(SNode::Free(TyVar::named(name)), &[], None),
                    0,
                ),
                PortableNode::Con(pc, children) => {
                    let con = match pc {
                        PortableCon::Int => TyCon::Int,
                        PortableCon::Bool => TyCon::Bool,
                        PortableCon::List => TyCon::List,
                        PortableCon::Arrow => TyCon::Arrow,
                        PortableCon::Prod => TyCon::Prod,
                        PortableCon::St => TyCon::St,
                        PortableCon::Other { name, arity } => {
                            TyCon::Other(Symbol::intern(name), *arity as usize)
                        }
                    };
                    if con.arity() != children.len() {
                        return Err(SnapshotError(format!(
                            "node {i}: constructor {} expects {} children, got {}",
                            con.name(),
                            con.arity(),
                            children.len()
                        )));
                    }
                    let mut args = Vec::with_capacity(children.len());
                    let mut o = 0u32;
                    for &c in children {
                        let c = child(c)?;
                        args.push(ids[c]);
                        o = o.max(open[c]);
                    }
                    (
                        self.intern_node(SNode::Con(con, SRange { start: 0, len: 0 }), &args, None),
                        o,
                    )
                }
                PortableNode::Forall { body, hint } => {
                    let b = child(*body)?;
                    let hint = hint.as_deref().map(TyVar::named);
                    (
                        self.intern_node(SNode::Forall(ids[b]), &[], hint),
                        open[b].saturating_sub(1),
                    )
                }
            };
            ids.push(id);
            open.push(o);
        }
        Ok(AbsorbedSnapshot { ids, open })
    }

    /// Seed the rendering memo for `id` — used by the persistence layer
    /// to reinstall strings rendered by a previous process, so a warm
    /// restart serves schemes without a single cold `pretty` pass.
    /// First writer wins, same as a rendering race; an id that is not
    /// interned here is ignored.
    pub fn seed_rendering(&self, id: SchemeId, s: Arc<str>) {
        let mut g = self.write(shard_of(id));
        if slot_of(id) < g.nodes.len() {
            g.rendered.entry(id).or_insert(s);
        }
    }

    /// Collision-free display names for `count` grounded residuals —
    /// same canonical-supply contract as
    /// [`SchemeStore::defaulted_names`](crate::SchemeStore::defaulted_names).
    pub fn defaulted_names(&self, id: SchemeId, count: usize) -> Vec<String> {
        if count == 0 {
            return Vec::new();
        }
        let mut taken = FxHashSet::default();
        for v in self.free_vars(id) {
            if let Some(sym) = v.symbol() {
                taken.insert(sym);
            }
        }
        let mut supply = freezeml_core::types::letter_supply(taken);
        self.skip_binder_letters(id, &mut supply);
        (0..count)
            .map(|_| supply.next().expect("infinite supply").as_str().to_string())
            .collect()
    }

    fn skip_binder_letters(&self, id: SchemeId, supply: &mut impl Iterator<Item = Symbol>) {
        match self.view(id) {
            View::Bound(_) | View::Free(_) => {}
            View::Con(_, children) => {
                for ch in children {
                    self.skip_binder_letters(ch, supply);
                }
            }
            View::Forall(body) => {
                supply.next();
                self.skip_binder_letters(body, supply);
            }
        }
    }

    /// The free (non-binder) variables of the scheme, in order of first
    /// appearance.
    pub fn free_vars(&self, id: SchemeId) -> Vec<TyVar> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        self.free_vars_go(id, &mut seen, &mut out);
        out
    }

    fn free_vars_go(&self, id: SchemeId, seen: &mut FxHashSet<SchemeId>, out: &mut Vec<TyVar>) {
        if !seen.insert(id) {
            return;
        }
        match self.view(id) {
            View::Bound(_) => {}
            View::Free(v) => {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            View::Con(_, children) => {
                for ch in children {
                    self.free_vars_go(ch, seen, out);
                }
            }
            View::Forall(body) => self.free_vars_go(body, seen, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::parse_type;

    fn export_str(bank: &SchemeBank, src: &str) -> SchemeId {
        let mut store = Store::new();
        let t = parse_type(src).unwrap();
        let tid = store.intern_type(&t);
        bank.export(&mut store, tid)
    }

    #[test]
    fn alpha_classes_share_one_id_across_shards() {
        let bank = SchemeBank::new();
        let a = export_str(&bank, "forall a. a -> a");
        let b = export_str(&bank, "forall b. b -> b");
        assert_eq!(a, b);
        let c = export_str(&bank, "forall a b. a -> b");
        let d = export_str(&bank, "forall b a. a -> b");
        assert_ne!(c, d, "quantifier order still matters");
        assert_eq!(
            c,
            bank.intern_type(&parse_type("forall a b. a -> b").unwrap())
        );
    }

    #[test]
    fn export_to_type_round_trips() {
        let bank = SchemeBank::new();
        for src in [
            "Int",
            "forall a. a -> a",
            "forall a b. a -> b -> a * b",
            "(forall a. a -> a) -> Int * Bool",
            "forall s. ST s Int",
            "List (forall a. a -> a)",
        ] {
            let sid = export_str(&bank, src);
            assert!(
                bank.to_type(sid).alpha_eq(&parse_type(src).unwrap()),
                "{src}"
            );
        }
    }

    #[test]
    fn intern_into_round_trips_through_a_store() {
        let bank = SchemeBank::new();
        let sid = export_str(&bank, "forall a. (a -> Int) -> List a");
        let mut fresh = Store::new();
        let tid = bank.intern_into(&mut fresh, sid);
        let z = fresh.zonk(tid);
        assert!(z.alpha_eq(&parse_type("forall a. (a -> Int) -> List a").unwrap()));
    }

    #[test]
    fn pretty_memoises_and_matches_tree_printer() {
        let bank = SchemeBank::new();
        let sid = export_str(&bank, "forall a b. (a -> b) -> List a -> List b");
        let direct = bank.pretty(sid);
        assert_eq!(&*direct, &bank.to_type(sid).to_string());
        let before = bank.renders();
        assert_eq!(bank.pretty(sid), direct);
        assert_eq!(bank.renders(), before, "second pretty is a memo hit");
        assert!(bank.render_hits() > 0);
    }

    #[test]
    fn pair_chain_exports_in_dag_size() {
        let mut store = Store::new();
        let mut t = store.int();
        for _ in 0..12 {
            t = store.con(TyCon::Prod, &[t, t]);
        }
        let bank = SchemeBank::new();
        let sid = bank.export(&mut store, t);
        assert_eq!(bank.len(), 13, "13 distinct nodes for n=12");
        let eager = store.zonk(t);
        assert!(bank.to_type(sid).alpha_eq(&eager));
    }

    #[test]
    fn snapshot_round_trips_alpha_classes() {
        let bank = SchemeBank::new();
        let srcs = [
            "Int",
            "forall a. a -> a",
            "forall a b. a -> b -> a * b",
            "(forall a. a -> a) -> Int * Bool",
            "forall s. ST s Int",
            "List (forall a. a -> a)",
        ];
        let roots: Vec<SchemeId> = srcs.iter().map(|s| export_str(&bank, s)).collect();
        let (nodes, idxs) = bank.export_snapshot(&roots);
        let fresh = SchemeBank::new();
        let absorbed = fresh.absorb_snapshot(&nodes).unwrap();
        for (i, src) in srcs.iter().enumerate() {
            let idx = idxs[i].expect("all named/closed");
            let id = absorbed.closed(idx).expect("roots are closed");
            assert!(
                fresh.to_type(id).alpha_eq(&parse_type(src).unwrap()),
                "{src}"
            );
            // Renders are byte-identical across the round trip.
            assert_eq!(bank.pretty(roots[i]), fresh.pretty(id), "{src}");
        }
        // Absorbing into the *same* bank maps back to the original ids:
        // re-interning deduplicates rather than forks α-classes.
        let back = bank.absorb_snapshot(&nodes).unwrap();
        for (i, &root) in roots.iter().enumerate() {
            assert_eq!(back.closed(idxs[i].unwrap()), Some(root));
        }
    }

    #[test]
    fn snapshot_skips_invented_variables() {
        let bank = SchemeBank::new();
        let named = export_str(&bank, "forall a. a -> a");
        let fresh_var = bank.intern_type(&Type::Var(TyVar::fresh()));
        let (nodes, idxs) = bank.export_snapshot(&[named, fresh_var]);
        assert!(idxs[0].is_some());
        assert!(idxs[1].is_none(), "fresh vars are unportable");
        assert!(nodes
            .iter()
            .all(|n| !matches!(n, crate::snapshot::PortableNode::Free(s) if s.starts_with('%'))));
    }

    #[test]
    fn absorb_rejects_malformed_snapshots() {
        use crate::snapshot::{PortableCon, PortableNode};
        let bank = SchemeBank::new();
        // Forward (non-topological) child reference.
        assert!(bank
            .absorb_snapshot(&[PortableNode::Con(PortableCon::List, vec![1])])
            .is_err());
        // Self reference.
        assert!(bank
            .absorb_snapshot(&[PortableNode::Forall {
                body: 0,
                hint: None
            }])
            .is_err());
        // Arity mismatch.
        assert!(bank
            .absorb_snapshot(&[
                PortableNode::Free("a".into()),
                PortableNode::Con(PortableCon::Arrow, vec![0]),
            ])
            .is_err());
        // A dangling Bound absorbs but is not closed, so it can never
        // be used as a root.
        let a = bank.absorb_snapshot(&[PortableNode::Bound(3)]).unwrap();
        assert_eq!(a.closed(0), None);
        assert_eq!(a.closed(7), None, "out-of-range index is rejected");
        // Properly scoped quantification closes it.
        let a = bank
            .absorb_snapshot(&[
                PortableNode::Bound(0),
                PortableNode::Forall {
                    body: 0,
                    hint: Some("a".into()),
                },
            ])
            .unwrap();
        assert_eq!(a.closed(0), None, "bare Bound stays open");
        let id = a.closed(1).expect("forall closes the binder");
        assert!(bank
            .to_type(id)
            .alpha_eq(&parse_type("forall a. a").unwrap()));
    }

    #[test]
    fn seed_rendering_feeds_the_pretty_memo() {
        let bank = SchemeBank::new();
        let id = export_str(&bank, "forall a. a -> a");
        let canonical: Arc<str> = Arc::from("forall a. a -> a");
        bank.seed_rendering(id, Arc::clone(&canonical));
        let before = bank.renders();
        assert_eq!(&*bank.pretty(id), &*canonical);
        assert_eq!(bank.renders(), before, "seeded pretty is a memo hit");
        // Seeding never overwrites an existing rendering.
        bank.seed_rendering(id, Arc::from("bogus"));
        assert_eq!(&*bank.pretty(id), &*canonical);
    }

    #[test]
    fn shared_forall_subterms_stay_dag_sized_both_ways() {
        let mut store = Store::new();
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let mut t = store.intern_type(&id_ty);
        for _ in 0..20 {
            t = store.con(TyCon::Prod, &[t, t]);
        }
        let bank = SchemeBank::new();
        let sid = bank.export(&mut store, t);
        assert!(bank.len() <= 32, "export blew up: {} nodes", bank.len());
        let mut fresh = Store::new();
        let back = bank.intern_into(&mut fresh, sid);
        assert_eq!(fresh.children(back).len(), 2);
    }
}
