//! Figure 15's unification algorithm on the mutable store.
//!
//! Semantically this is the same algorithm as `core::unify` — the
//! differential suite holds the two to identical verdicts — but every
//! piece of bookkeeping is a cell update instead of data-structure
//! rebuilding:
//!
//! * solving `a ↦ A` writes `a`'s cell once (no `Θ − a` rebuild, no
//!   substitution singleton/composition);
//! * `demote(•, Θ, ∆′)` becomes one kind-field write per variable in
//!   `ftv(A)` ([`Store::absorb`]), folded into the same walk as the
//!   occurs check;
//! * the occurs check is explicit (walk the resolved solution for the
//!   cell being solved) rather than re-kinding in a shrunken environment,
//!   but fires in exactly the cases `core` reports [`TypeError::Occurs`];
//! * skolemisation allocates *nothing*: `∀a.A ≟ ∀b.B` pushes the binder
//!   pair onto a scope stack with a shared fresh skolem name and unifies
//!   the original bodies, comparing binder-bound rigids *through* the
//!   stack (binder names are globally unique, so the side-agnostic
//!   lookup is unambiguous). The escape assertion `c ∉ ftv(θ′)` is
//!   checked by scanning the *trail* — the variables actually bound
//!   inside the scope are precisely where `θ′` differs from the ambient
//!   substitution, so scanning them is the whole check.
//!
//! Two types that are *identical* after resolution unify immediately:
//! `unify(A, A)` always succeeds with the identity in Figure 15 (by
//! induction on `A`, no case binds a variable), and hash-consing makes
//! that test one pointer comparison.

use crate::store::{Shape, Store, TypeId, VarId};
use freezeml_core::{Kind, TyVar, TypeError};

/// One open `∀ ≟ ∀` scope: both binders identify the same fresh skolem.
struct ScopeEntry {
    left: TyVar,
    right: TyVar,
    skolem: TyVar,
}

/// Map a rigid variable through the open scopes: a binder name (from
/// either side) becomes its scope's skolem; anything else is itself.
fn chase<'s>(scope: &'s [ScopeEntry], v: &'s TyVar) -> &'s TyVar {
    for e in scope.iter().rev() {
        if e.left == *v || e.right == *v {
            return &e.skolem;
        }
    }
    v
}

/// Unify two interned types, mutating the store's cells.
///
/// # Errors
///
/// The same classes as `core::unify`: [`TypeError::Mismatch`],
/// [`TypeError::Occurs`], [`TypeError::PolyNotAllowed`],
/// [`TypeError::SkolemEscape`] (error payloads are zonked snapshots).
pub fn unify(store: &mut Store, a: TypeId, b: TypeId) -> Result<(), TypeError> {
    let mut scope = Vec::new();
    unify_in(store, a, b, &mut scope)
}

fn unify_in(
    store: &mut Store,
    a: TypeId,
    b: TypeId,
    scope: &mut Vec<ScopeEntry>,
) -> Result<(), TypeError> {
    let a = store.resolve(a);
    let b = store.resolve(b);
    if a == b {
        // Hash-consed identity: unify(A, A) = (Θ, ι) for every A.
        return Ok(());
    }
    match (store.shape(a), store.shape(b)) {
        (Shape::Rigid(x), Shape::Rigid(y)) => {
            if chase(scope, &x) == chase(scope, &y) {
                Ok(())
            } else {
                Err(mismatch(store, a, b))
            }
        }
        (Shape::Flex(x), _) => bind(store, x, b, scope),
        (_, Shape::Flex(y)) => bind(store, y, a, scope),
        (Shape::Con(c, n), Shape::Con(d, m)) => {
            if c != d || n != m {
                return Err(mismatch(store, a, b));
            }
            for i in 0..n {
                let (x, y) = (store.con_child(a, i), store.con_child(b, i));
                unify_in(store, x, y, scope)?;
            }
            Ok(())
        }
        (Shape::Forall(va, ba), Shape::Forall(vb, bb)) => {
            let mark = store.mark();
            scope.push(ScopeEntry {
                left: va,
                right: vb,
                skolem: TyVar::skolem(),
            });
            let result = unify_in(store, ba, bb, scope);
            let entry = scope.pop().expect("scope entry pushed above");
            result?;
            // Escape check `c ∉ ftv(θ′)` (Figure 15): every variable the
            // scope solved is a variable of the ambient Θ (unification
            // never creates variables), so θ′ differs from the ambient
            // substitution exactly on the trail's bindings. A solution
            // mentioning either binder denotes the skolem.
            for v in store.bound_since(mark) {
                let vid = store.flex(v);
                if store.occurs_rigid(vid, &entry.left) || store.occurs_rigid(vid, &entry.right) {
                    return Err(TypeError::SkolemEscape { var: entry.skolem });
                }
            }
            Ok(())
        }
        _ => Err(mismatch(store, a, b)),
    }
}

fn mismatch(store: &mut Store, a: TypeId, b: TypeId) -> TypeError {
    TypeError::Mismatch {
        left: store.zonk(a),
        right: store.zonk(b),
    }
}

/// Solve an unbound flexible variable — Figure 15's
/// `unify(∆, (Θ, a:K), a, A)` cases, with `core::unify::bind`'s exact
/// error order: the occurs check wins over the kind check (in `core`,
/// `kind_of` fails on the unbound `a` before the `≤ K` comparison runs).
fn bind(store: &mut Store, x: VarId, t: TypeId, _scope: &[ScopeEntry]) -> Result<(), TypeError> {
    let k = store.kind_of(x);
    let info = store.analyze(t, x);
    if info.occurs {
        return Err(TypeError::Occurs {
            var: store.name_of(x),
            ty: store.zonk(t),
        });
    }
    if k == Kind::Mono && info.has_forall {
        return Err(TypeError::PolyNotAllowed { ty: store.zonk(t) });
    }
    // Level propagation (always) and demotion (Figure 15's `demote(•, …)`,
    // only when solving a •-kinded variable) in one pass.
    let level = store.level_of(x);
    store.absorb(&info.flex, level, k == Kind::Mono);
    store.solve(x, t);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use freezeml_core::{parse_type, Type};

    fn uvar(s: &mut Store, k: Kind) -> (crate::store::VarId, TypeId) {
        s.fresh_var(k)
    }

    #[test]
    fn unifies_equal_ground_types() {
        let mut s = Store::new();
        let a = s.int();
        let b = s.int();
        assert!(unify(&mut s, a, b).is_ok());
    }

    #[test]
    fn solves_flexible_variable() {
        let mut s = Store::new();
        let (x, xid) = uvar(&mut s, Kind::Poly);
        let t = parse_type("Int -> Bool").unwrap();
        let tid = s.intern_type(&t);
        unify(&mut s, xid, tid).unwrap();
        assert!(s.is_solved(x));
        assert_eq!(s.zonk(xid), t);
    }

    #[test]
    fn poly_flexible_takes_polytype() {
        let mut s = Store::new();
        let (_, xid) = uvar(&mut s, Kind::Poly);
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let tid = s.intern_type(&id_ty);
        unify(&mut s, xid, tid).unwrap();
        assert!(s.zonk(xid).alpha_eq(&id_ty));
    }

    #[test]
    fn mono_flexible_rejects_polytype() {
        let mut s = Store::new();
        let (_, xid) = uvar(&mut s, Kind::Mono);
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let tid = s.intern_type(&id_ty);
        assert!(matches!(
            unify(&mut s, xid, tid),
            Err(TypeError::PolyNotAllowed { .. })
        ));
    }

    #[test]
    fn mono_flexible_demotes_poly_flexibles() {
        let mut s = Store::new();
        let (_, aid) = uvar(&mut s, Kind::Mono);
        let (b, bid) = uvar(&mut s, Kind::Poly);
        let t = s.con(freezeml_core::TyCon::List, &[bid]);
        unify(&mut s, aid, t).unwrap();
        assert_eq!(s.kind_of(b), Kind::Mono);
    }

    #[test]
    fn occurs_check_fires() {
        let mut s = Store::new();
        let (_, aid) = uvar(&mut s, Kind::Poly);
        let i = s.int();
        let t = s.arrow(aid, i);
        assert!(matches!(
            unify(&mut s, aid, t),
            Err(TypeError::Occurs { .. })
        ));
    }

    #[test]
    fn rigid_vars_unify_only_with_themselves() {
        let mut s = Store::new();
        let a1 = s.rigid(TyVar::named("a"));
        let a2 = s.rigid(TyVar::named("a"));
        let b = s.rigid(TyVar::named("b"));
        assert!(unify(&mut s, a1, a2).is_ok());
        assert!(matches!(
            unify(&mut s, a1, b),
            Err(TypeError::Mismatch { .. })
        ));
        let i = s.int();
        assert!(matches!(
            unify(&mut s, a1, i),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn alpha_equivalent_foralls_unify() {
        let mut s = Store::new();
        let l = parse_type("forall a. a -> a").unwrap();
        let r = parse_type("forall b. b -> b").unwrap();
        let lid = s.intern_type(&l);
        let rid = s.intern_type(&r);
        assert!(unify(&mut s, lid, rid).is_ok());
    }

    #[test]
    fn quantifier_order_matters() {
        let mut s = Store::new();
        let l = parse_type("forall a b. a -> b -> a * b").unwrap();
        let r = parse_type("forall b a. a -> b -> a * b").unwrap();
        let lid = s.intern_type(&l);
        let rid = s.intern_type(&r);
        assert!(unify(&mut s, lid, rid).is_err());
    }

    #[test]
    fn foralls_solve_inner_flexibles() {
        // ∀s. ST s b ≟ ∀s. ST s Int ⇒ b ↦ Int.
        let mut s = Store::new();
        let (b, bid) = uvar(&mut s, Kind::Poly);
        let sv = TyVar::named("s");
        let s_rigid = s.rigid(sv);
        let st = s.con(freezeml_core::TyCon::St, &[s_rigid, bid]);
        let l = s.forall(sv, st);
        let r_ty = parse_type("forall s. ST s Int").unwrap();
        let r = s.intern_type(&r_ty);
        unify(&mut s, l, r).unwrap();
        let bid = s.flex(b);
        assert_eq!(s.zonk(bid), Type::int());
    }

    #[test]
    fn skolem_escape_is_rejected() {
        // ∀a. a → b ≟ ∀a. a → a would need b ↦ skolem.
        let mut s = Store::new();
        let (_, bid) = uvar(&mut s, Kind::Poly);
        let av = TyVar::named("a");
        let a_rigid = s.rigid(av);
        let body = s.arrow(a_rigid, bid);
        let l = s.forall(av, body);
        let r_ty = parse_type("forall a. a -> a").unwrap();
        let r = s.intern_type(&r_ty);
        assert!(matches!(
            unify(&mut s, l, r),
            Err(TypeError::SkolemEscape { .. })
        ));
    }

    #[test]
    fn forall_vs_arrow_fails() {
        let mut s = Store::new();
        let l = parse_type("Int -> forall a. a -> a").unwrap();
        let r = parse_type("forall a. Int -> a -> a").unwrap();
        let lid = s.intern_type(&l);
        let rid = s.intern_type(&r);
        assert!(matches!(
            unify(&mut s, lid, rid),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn two_flexibles_unify_and_demote() {
        let mut s = Store::new();
        let (a, aid) = uvar(&mut s, Kind::Mono);
        let (b, bid) = uvar(&mut s, Kind::Poly);
        unify(&mut s, aid, bid).unwrap();
        assert_eq!(s.kind_of(b), Kind::Mono);
        assert!(s.is_solved(a) != s.is_solved(b), "one side is the root");
    }

    #[test]
    fn unifier_equalises_both_sides() {
        let mut s = Store::new();
        let (_, aid) = uvar(&mut s, Kind::Poly);
        let (_, bid) = uvar(&mut s, Kind::Poly);
        let lb = s.con(freezeml_core::TyCon::List, &[bid]);
        let l = s.arrow(aid, lb);
        let r = s.arrow(lb, aid);
        unify(&mut s, l, r).unwrap();
        let zl = s.zonk(l);
        let zr = s.zonk(r);
        assert!(zl.alpha_eq(&zr));
    }

    #[test]
    fn undo_rolls_back_a_whole_unification() {
        let mut s = Store::new();
        let (x, xid) = uvar(&mut s, Kind::Poly);
        let (y, yid) = uvar(&mut s, Kind::Poly);
        let m = s.mark();
        let i = s.int();
        let l = s.arrow(xid, yid);
        let r = s.arrow(i, i);
        unify(&mut s, l, r).unwrap();
        assert!(s.is_solved(x) && s.is_solved(y));
        s.undo_to(m);
        assert!(!s.is_solved(x) && !s.is_solved(y));
        // And the same unification replays cleanly.
        unify(&mut s, l, r).unwrap();
        assert_eq!(s.zonk(xid), Type::int());
    }
}
