//! Figure 16's inference algorithm on the mutable store.
//!
//! Same judgement shapes as `core::infer`, different machinery:
//!
//! * no `Subst` exists anywhere — `θ(Γ)`, `θ₂(A′)` and the composition
//!   chains of Figure 16 are all the identity on the store, because types
//!   are resolved through cells at the moment they are inspected;
//! * the `let` rule's generalisation set `∆′′′ = ftv(A) − ∆ − ftv(θ₁)` is
//!   computed from *levels*: a variable belongs to `ftv(θ₁)` (the image
//!   of the environment that existed before the right-hand side) exactly
//!   when binding has propagated an outer level into it, so the paper's
//!   `range_ftv` sweep over `Θ` becomes one integer comparison per free
//!   variable of `A`;
//! * under the value restriction the non-value case's
//!   `demote(•, Θ₁, ∆′′′)` is a kind-field write per variable;
//! * the annotated-`let` escape assertion `ftv(θ₂) # ∆′` scans the trail
//!   for variables that existed *before* the binding (`VarId` below the
//!   scope's watermark) and were solved *inside* it — precisely the
//!   variables on which `θ₂` restricted to the ambient `Θ` is not the
//!   identity.
//!
//! The result is zonked back to a `core::Type`, so callers (conformance
//! harness, pretty-printing, downstream crates) consume it unchanged.

use crate::bank::SchemeBank;
use crate::elab::{BuildEv, Elab, EvBuild, NoEv};
use crate::scheme::SchemeId;
use crate::store::{Node, Shape, Store, TypeId, VarId};
use crate::unify::unify;
use freezeml_core::infer::ProgramError;
use freezeml_core::scope::split;
use freezeml_core::{
    Kind, KindEnv, Options, RefinedEnv, Term, TyVar, Type, TypeEnv, TypeError, Var,
};

/// The result of a top-level union-find inference run.
#[derive(Clone, Debug)]
pub struct InferOutput {
    /// The inferred (principal) type, fully zonked.
    pub ty: Type,
    /// The kinds of the flexible variables left unsolved in `ty` — the
    /// residual `Θ′` of Figure 16, keyed by the zonked variable names.
    pub theta: RefinedEnv,
}

/// The result of a zonk-free inference run: the principal type exported
/// into a [`SchemeStore`] as a DAG, never expanded to a tree. Residual
/// monomorphic variables are grounded to `Int` (the REPL's defaulting),
/// so the scheme is closed and its id is an α-class.
#[derive(Clone, Debug)]
pub struct SchemeOutput {
    /// The exported scheme.
    pub scheme: SchemeId,
    /// Canonical names of the residual variables that were grounded.
    pub defaulted: Vec<String>,
}

struct InferCtx<'s> {
    store: &'s mut Store,
    opts: &'s Options,
    gamma: &'s mut Vec<(Var, TypeId)>,
    /// Annotation-bound rigid variables currently in scope (the `∆′`
    /// extensions of the annotated-`let` rule).
    rigid_scope: Vec<TyVar>,
}

impl<'s> InferCtx<'s> {
    fn lookup(&self, x: &Var) -> Option<TypeId> {
        self.gamma
            .iter()
            .rev()
            .find(|(v, _)| v == x)
            .map(|(_, t)| *t)
    }

    /// Instantiate every top-level quantifier with a fresh `⋆`-kinded
    /// variable (the Var rule / eliminator instantiation). The fresh
    /// cells' ids are collected in quantifier order when evidence is on:
    /// they *are* the type-application evidence — reading them through
    /// the store after solving yields the chosen instantiations with no
    /// substitution pass.
    fn instantiate<E: EvBuild>(&mut self, ty: TypeId) -> (TypeId, Vec<TypeId>) {
        let mut t = self.store.resolve(ty);
        let mut inst = Vec::new();
        while let Shape::Forall(v, body) = self.store.shape(t) {
            let (_, fresh) = self.store.fresh_var(Kind::Poly);
            if E::ON {
                inst.push(fresh);
            }
            t = self.store.subst_rigid(body, &v, fresh);
            t = self.store.resolve(t);
        }
        (t, inst)
    }

    /// Figure 16 inference, generic over the evidence sink: `NoEv`
    /// monomorphises every hook to nothing (the production hot path is
    /// byte-for-byte the old one), `BuildEv` records the Figure 11
    /// image alongside the `TypeId`.
    fn infer<E: EvBuild>(&mut self, term: &Term) -> Result<(TypeId, E::Term), TypeError> {
        match term {
            // infer(∆, Θ, Γ, ⌈x⌉) = (Θ, ι, Γ(x)); C⟦⌈x⌉⟧ = x.
            Term::FrozenVar(x) => {
                let ty = self.lookup(x).ok_or(TypeError::UnboundVar(*x))?;
                Ok((ty, E::var(*x)))
            }

            // infer(∆, Θ, Γ, x): instantiate ∀ā.H with fresh b̄ : ⋆;
            // C⟦x⟧ = x δ(∆′).
            Term::Var(x) => {
                let scheme = self.lookup(x).ok_or(TypeError::UnboundVar(*x))?;
                let (ty, inst) = self.instantiate::<E>(scheme);
                Ok((ty, E::inst(E::var(*x), inst)))
            }

            Term::Lit(l) => Ok((self.store.intern_type(&l.ty()), E::lit(*l))),

            // infer(∆, Θ, Γ, λx.M): fresh a : •; C⟦λx.M⟧ = λx^S.C⟦M⟧.
            Term::Lam(x, body) => {
                let (_, a) = self.store.fresh_var(Kind::Mono);
                self.gamma.push((*x, a));
                let bty = self.infer::<E>(body);
                self.gamma.pop();
                let (bty, bev) = bty?;
                Ok((self.store.arrow(a, bty), E::lam(*x, a, bev)))
            }

            // infer(∆, Θ, Γ, λ(x:A).M); C⟦λ(x:A).M⟧ = λx^A.C⟦M⟧.
            Term::LamAnn(x, ann, body) => {
                let ann_id = self.store.intern_type(ann);
                self.gamma.push((*x, ann_id));
                let bty = self.infer::<E>(body);
                self.gamma.pop();
                let (bty, bev) = bty?;
                Ok((self.store.arrow(ann_id, bty), E::lam(*x, ann_id, bev)))
            }

            // infer(∆, Θ, Γ, M N): unify A′ with A → b for fresh b : ⋆.
            //
            // The spine is flattened and processed iteratively (mirroring
            // `core::infer`), so stack use is constant in the length of an
            // application chain.
            Term::App(_, _) => {
                let mut head = term;
                let mut args = Vec::new();
                while let Term::App(f, a) = head {
                    args.push(a.as_ref());
                    head = f;
                }
                args.reverse();
                let (mut fty_id, mut fev) = self.infer::<E>(head)?;
                for arg in args {
                    let (aty, aev) = self.infer::<E>(arg)?;
                    let mut fty = self.store.resolve(fty_id);
                    // Eliminator instantiation (§3.2): implicitly
                    // instantiate a quantified head before matching it
                    // against `A → b`.
                    if self.opts.instantiation == freezeml_core::InstantiationStrategy::Eliminator
                        && matches!(self.store.node(fty), Node::Forall(_, _))
                    {
                        let (t, inst) = self.instantiate::<E>(fty);
                        fty = t;
                        fev = E::inst(fev, inst);
                    }
                    let (_, b) = self.store.fresh_var(Kind::Poly);
                    let expected = self.store.arrow(aty, b);
                    unify(self.store, fty, expected)?;
                    fty_id = b;
                    fev = E::app(fev, aev);
                }
                Ok((fty_id, fev))
            }

            // infer(∆, Θ, Γ, let x = M in N);
            // C⟦let x = M in N⟧ = let x^∀∆′.A = Λ∆′.C⟦M⟧ in C⟦N⟧.
            Term::Let(x, rhs, body) => {
                let outer = self.store.current_level();
                self.store.enter_level();
                let aty = self.infer::<E>(rhs);
                self.store.leave_level();
                let (aty, rhs_ev) = aty?;
                // ∆′′′ = ftv(A) − ∆ − ∆′: free variables of A not reachable
                // from the pre-rhs environment — level > outer.
                let d3: Vec<VarId> = self
                    .store
                    .free_flex(aty)
                    .into_iter()
                    .filter(|&v| self.store.level_of(v) > outer)
                    .collect();
                let gval = rhs.is_gval(self.opts);
                let (scheme, binders) = if gval {
                    self.generalize(aty, &d3)
                } else {
                    // Value restriction: demote the ungeneralised
                    // variables to `•` — one cell write each.
                    for &v in &d3 {
                        self.store.demote(v);
                    }
                    (aty, Vec::new())
                };
                self.gamma.push((*x, scheme));
                let bty = self.infer::<E>(body);
                self.gamma.pop();
                let (bty, body_ev) = bty?;
                Ok((
                    bty,
                    E::let_(*x, scheme, E::tylams(binders, rhs_ev), body_ev),
                ))
            }

            // Explicit type application M@[A] (§6 extension).
            Term::TyApp(m, arg) => {
                let (mty, mev) = self.infer::<E>(m)?;
                let mty = self.store.resolve(mty);
                match self.store.shape(mty) {
                    Shape::Forall(v, body) => {
                        let arg_id = self.store.intern_type(arg);
                        Ok((
                            self.store.subst_rigid(body, &v, arg_id),
                            E::tyapp(mev, arg_id),
                        ))
                    }
                    _ => Err(TypeError::CannotTypeApply {
                        ty: self.store.zonk(mty),
                    }),
                }
            }

            // infer(∆, Θ, Γ, let (x:A) = M in N);
            // C⟦…⟧ = let x^A = Λ∆′.C⟦M⟧ in C⟦N⟧ with ∆′ = split(A, M).
            Term::LetAnn(x, ann, rhs, body) => {
                let (split_vars, a_prime) = split(ann, rhs, self.opts);
                for v in &split_vars {
                    if self.rigid_scope.contains(v) {
                        return Err(TypeError::ShadowedTyVar { var: *v });
                    }
                }
                let watermark = self.store.var_count();
                let mark = self.store.mark();
                let depth = self.rigid_scope.len();
                self.rigid_scope.extend(split_vars.iter().cloned());
                let a_prime_id = self.store.intern_type(&a_prime);
                let result = self
                    .infer::<E>(rhs)
                    .and_then(|(a1, ev)| unify(self.store, a_prime_id, a1).map(|()| ev));
                self.rigid_scope.truncate(depth);
                let rhs_ev = result?;
                // assert ftv(θ₂) # ∆′: a variable from the ambient Θ
                // (below the watermark) solved inside this scope must not
                // mention an annotation variable.
                let mut escaping = Vec::new();
                for v in self.store.bound_since(mark) {
                    if v.index() < watermark {
                        let vid = self.store.flex(v);
                        for a in &split_vars {
                            if !escaping.contains(a) && self.store.occurs_rigid(vid, a) {
                                escaping.push(*a);
                            }
                        }
                    }
                }
                if !escaping.is_empty() {
                    return Err(TypeError::AnnotationEscape { vars: escaping });
                }
                let ann_id = self.store.intern_type(ann);
                self.gamma.push((*x, ann_id));
                let bty = self.infer::<E>(body);
                self.gamma.pop();
                let (bty, body_ev) = bty?;
                Ok((
                    bty,
                    E::let_(*x, ann_id, E::tylams(split_vars, rhs_ev), body_ev),
                ))
            }
        }
    }

    /// `(∆′′, ∆′′′) = gen((∆, ∆′), A, M)` in the value case: close `A`
    /// over the given variables. Each cell is solved with a rigid carrying
    /// its own (globally fresh) name, which then serves as the binder —
    /// and as the `Λ` binder of the evidence term.
    fn generalize(&mut self, aty: TypeId, d3: &[VarId]) -> (TypeId, Vec<TyVar>) {
        let mut binders = Vec::with_capacity(d3.len());
        for &v in d3 {
            let name = self.store.name_of(v);
            let rigid = self.store.rigid(name);
            self.store.solve(v, rigid);
            binders.push(name);
        }
        let scheme = binders
            .iter()
            .rev()
            .fold(aty, |acc, name| self.store.forall(*name, acc));
        (scheme, binders)
    }
}

/// A reusable inference session over a fixed environment `Γ`.
///
/// The environment is kind-checked and interned **once**; each
/// [`Session::infer`] call then only pays for the term at hand, and the
/// previous term's store state (nodes, cells, trail, binder records) is
/// reclaimed on the way in, so memory stays bounded by the environment
/// plus one term. This is the serving shape the arena design exists for
/// — checking a stream of programs against one prelude amortises all
/// environment setup. Reuse is sound because the initial `Γ` is closed
/// over flexible variables (environment formation, Figure 12), so no
/// pre-term state can reference per-term state.
pub struct Session {
    store: Store,
    gamma: Vec<(Var, TypeId)>,
    opts: Options,
    /// Store extent right after the environment was interned; everything
    /// beyond it is per-term state, reclaimed between terms.
    base: crate::store::StoreMark,
}

impl Session {
    /// Check and intern the environment.
    ///
    /// # Errors
    ///
    /// Environment-formation errors (`∆, Θ ⊢ Γ`, Figure 12).
    pub fn new(gamma: &TypeEnv, opts: &Options) -> Result<Session, TypeError> {
        freezeml_core::kinding::check_env(&KindEnv::new(), &RefinedEnv::new(), gamma)?;
        Ok(Session::unchecked(gamma, opts))
    }

    /// Intern the environment without re-running environment formation
    /// (for callers that have already checked it, possibly under a
    /// non-empty `∆` — see [`check_typing`]).
    fn unchecked(gamma: &TypeEnv, opts: &Options) -> Session {
        let mut store = Store::new();
        let interned: Vec<(Var, TypeId)> = gamma
            .iter()
            .map(|(x, ty)| (*x, store.intern_type(ty)))
            .collect();
        let base = store.checkpoint();
        Session {
            store,
            gamma: interned,
            opts: *opts,
            base,
        }
    }

    /// Infer one term: well-scopedness, inference, zonk.
    ///
    /// # Errors
    ///
    /// The same [`TypeError`] classes as the `core` engine.
    pub fn infer(&mut self, term: &Term) -> Result<InferOutput, TypeError> {
        freezeml_core::scope::well_scoped(&KindEnv::new(), term, &self.opts)?;
        self.infer_scoped(term)
    }

    /// Infer one term under `Γ, extra` — the session's environment
    /// extended with per-call bindings. The extras are formation-checked
    /// and interned for this call only; their nodes are reclaimed with
    /// the rest of the term state on the next call, so the session's
    /// store stays bounded by the base environment plus one term.
    ///
    /// This is the serving shape of the program-checking service: one
    /// session per worker holds the interned prelude, and each binding
    /// is checked under the schemes of the declarations it depends on.
    ///
    /// # Errors
    ///
    /// The same [`TypeError`] classes as the `core` engine; additionally
    /// environment-formation errors for the extra bindings.
    pub fn infer_with(
        &mut self,
        extra: &[(Var, Type)],
        term: &Term,
    ) -> Result<InferOutput, TypeError> {
        freezeml_core::scope::well_scoped(&KindEnv::new(), term, &self.opts)?;
        let extra_env: TypeEnv = extra.iter().cloned().collect();
        freezeml_core::kinding::check_env(&KindEnv::new(), &RefinedEnv::new(), &extra_env)?;
        self.store.reset_to(&self.base);
        let depth = self.gamma.len();
        for (x, ty) in extra {
            let id = self.store.intern_type(ty);
            self.gamma.push((*x, id));
        }
        let out = self.infer_reclaimed(term);
        self.gamma.truncate(depth);
        out
    }

    /// Infer one term under `Γ, extra` with the extras supplied as
    /// cached [`SchemeId`]s and the result exported as a scheme — the
    /// fully **zonk-free** serving path: dependency schemes enter the
    /// store by O(DAG) interning ([`SchemeBank::intern_into`]), the
    /// result leaves by O(DAG) export ([`SchemeBank::export`]), and no
    /// `core::Type` tree is built anywhere. Residual variables are
    /// grounded to `Int` (the value-restriction defaulting the service
    /// and REPL apply), so the returned scheme is closed.
    ///
    /// The bank is the sharded concurrent scheme arena
    /// ([`crate::bank`]): the boundary crossings take per-shard locks
    /// for single-node operations only, never across inference, so a
    /// worker pool's sessions infer and intern concurrently without a
    /// global lock.
    ///
    /// Extras are schemes produced by inference (or imported through
    /// [`SchemeBank::intern_type`]) and are well-formed by
    /// construction, so no environment-formation pass runs over them.
    ///
    /// # Errors
    ///
    /// The same [`TypeError`] classes as [`Session::infer`].
    pub fn infer_scheme_with(
        &mut self,
        bank: &SchemeBank,
        extra: &[(Var, SchemeId)],
        term: &Term,
    ) -> Result<SchemeOutput, TypeError> {
        freezeml_core::scope::well_scoped(&KindEnv::new(), term, &self.opts)?;
        self.store.reset_to(&self.base);
        let depth = self.gamma.len();
        for (x, sid) in extra {
            let id = bank.intern_into(&mut self.store, *sid);
            self.gamma.push((*x, id));
        }
        let opts = self.opts;
        let mut cx = InferCtx {
            store: &mut self.store,
            opts: &opts,
            gamma: &mut self.gamma,
            rigid_scope: Vec::new(),
        };
        let result = cx.infer::<NoEv>(term);
        self.gamma.truncate(depth);
        let (ty_id, ()) = result?;
        // Ground the residual monomorphic variables to Int; their display
        // names come from the exported scheme's own supply
        // ([`SchemeStore::defaulted_names`]), shared with the oracle
        // paths so every engine reports identical, collision-free names.
        let residual = self.store.free_flex(ty_id);
        let grounded = residual.len();
        if grounded > 0 {
            let int = self.store.int();
            for v in residual {
                self.store.solve(v, int);
            }
        }
        let scheme = bank.export(&mut self.store, ty_id);
        let defaulted = bank.defaulted_names(scheme, grounded);
        Ok(SchemeOutput { scheme, defaulted })
    }

    /// Inference proper, for terms already scope-checked.
    fn infer_scoped(&mut self, term: &Term) -> Result<InferOutput, TypeError> {
        // The previous term's nodes, cells, binder records, and journal
        // are dead weight once its output has been zonked — reclaim them
        // so a long-lived session's store stays bounded by the
        // environment plus one term.
        self.store.reset_to(&self.base);
        self.infer_reclaimed(term)
    }

    /// Inference on the already-reclaimed store (extras, if any, interned).
    fn infer_reclaimed(&mut self, term: &Term) -> Result<InferOutput, TypeError> {
        let depth = self.gamma.len();
        let opts = self.opts;
        let mut cx = InferCtx {
            store: &mut self.store,
            opts: &opts,
            gamma: &mut self.gamma,
            rigid_scope: Vec::new(),
        };
        let result = cx.infer::<NoEv>(term);
        // A failed inference may leave pushed bindings behind; restore Γ.
        self.gamma.truncate(depth);
        let (ty_id, ()) = result?;
        let theta: RefinedEnv = self
            .store
            .free_flex(ty_id)
            .into_iter()
            .map(|v| (self.store.name_of(v), self.store.kind_of(v)))
            .collect();
        let ty = self.store.zonk(ty_id);
        Ok(InferOutput { ty, theta })
    }

    /// Infer one term *with evidence*: alongside the type, build the
    /// System F image of the inferred derivation (Figure 11 run
    /// natively on the store — see [`crate::elab`]), ground residual
    /// flexibles to `Int`, and administratively reduce the image so it
    /// satisfies the value restriction (the Theorem 3 repair).
    ///
    /// # Errors
    ///
    /// The same [`TypeError`] classes as [`Session::infer`].
    pub fn elaborate(&mut self, term: &Term) -> Result<Elab, TypeError> {
        freezeml_core::scope::well_scoped(&KindEnv::new(), term, &self.opts)?;
        self.store.reset_to(&self.base);
        self.elaborate_reclaimed(term)
    }

    /// Elaboration under `Γ, extra` — the per-call layered form for
    /// callers holding a long-lived session (extras are
    /// formation-checked and reclaimed with the rest of the term state
    /// on the next call). The service's `elaborate` endpoint currently
    /// goes through the one-shot [`elaborate_term`] instead (it needs
    /// the merged `TypeEnv` for the System F oracle anyway, and the
    /// endpoint is a protocol-boundary operation, not the check hot
    /// path).
    ///
    /// # Errors
    ///
    /// The same classes as [`Session::infer_with`].
    pub fn elaborate_with(
        &mut self,
        extra: &[(Var, Type)],
        term: &Term,
    ) -> Result<Elab, TypeError> {
        freezeml_core::scope::well_scoped(&KindEnv::new(), term, &self.opts)?;
        let extra_env: TypeEnv = extra.iter().cloned().collect();
        freezeml_core::kinding::check_env(&KindEnv::new(), &RefinedEnv::new(), &extra_env)?;
        self.store.reset_to(&self.base);
        let depth = self.gamma.len();
        for (x, ty) in extra {
            let id = self.store.intern_type(ty);
            self.gamma.push((*x, id));
        }
        let out = self.elaborate_reclaimed(term);
        self.gamma.truncate(depth);
        out
    }

    /// Elaboration on the already-reclaimed store.
    fn elaborate_reclaimed(&mut self, term: &Term) -> Result<Elab, TypeError> {
        let depth = self.gamma.len();
        let opts = self.opts;
        let mut cx = InferCtx {
            store: &mut self.store,
            opts: &opts,
            gamma: &mut self.gamma,
            rigid_scope: Vec::new(),
        };
        let result = cx.infer::<BuildEv>(term);
        self.gamma.truncate(depth);
        let (ty_id, ev) = result?;
        Ok(crate::elab::finish(&mut self.store, ev, ty_id))
    }
}

// ------------------------------------------------ prelude snapshot cache

/// A cached one-shot session: the environment it was built for (full
/// equality guard behind the fingerprint) and the ready [`Session`] with
/// the prelude interned and kind-checked.
struct CachedSession {
    fp: u64,
    env: TypeEnv,
    opts: Options,
    session: Session,
}

thread_local! {
    /// Small LRU of prelude snapshots for [`infer_term`]. A fresh
    /// one-shot call with an environment this thread has already seen
    /// reuses the interned, kind-checked store instead of rebuilding it
    /// — the amortisation [`Session`] gives explicit callers, extended
    /// to the fire-and-forget shape benchmarks and tools actually use.
    static SESSIONS: std::cell::RefCell<Vec<CachedSession>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Entries beyond this are evicted least-recently-used. Small: each
/// entry holds an interned prelude (a few hundred nodes).
const SESSION_CACHE_CAP: usize = 8;

fn env_fingerprint(gamma: &TypeEnv, opts: &Options) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = fxhash::FxHasher::default();
    opts.hash(&mut h);
    h.write_usize(gamma.len());
    for (x, t) in gamma.iter() {
        x.hash(&mut h);
        t.hash(&mut h);
    }
    h.finish()
}

/// Infer the type of a closed-context term on a union-find store.
/// Mirrors `core::infer::infer_term`: checks well-scopedness and
/// environment formation first, then runs inference and zonks.
///
/// The environment work — formation checking and interning — is served
/// from a per-thread snapshot cache: repeated one-shot calls against
/// the same `Γ` (a benchmark batch, a conformance corpus, a tool
/// checking many terms against one prelude) pay for the environment
/// once, like an explicit [`Session`] would, and per-term store state
/// is reclaimed between calls. Equality is guarded by a full `Γ`
/// comparison behind the fingerprint, so a cache hit is semantically
/// identical to a rebuild.
///
/// # Errors
///
/// The same [`TypeError`] classes as the `core` engine.
pub fn infer_term(gamma: &TypeEnv, term: &Term, opts: &Options) -> Result<InferOutput, TypeError> {
    // Scope-check before environment formation — the order `core`'s
    // driver uses, so a term that fails both reports the same error.
    freezeml_core::scope::well_scoped(&KindEnv::new(), term, opts)?;
    let fp = env_fingerprint(gamma, opts);
    SESSIONS.with(|cache| {
        let mut cache = cache.borrow_mut();
        let hit = cache
            .iter()
            .position(|c| c.fp == fp && c.opts == *opts && c.env == *gamma);
        let mut entry = match hit {
            Some(i) => cache.remove(i),
            None => CachedSession {
                fp,
                env: gamma.clone(),
                opts: *opts,
                session: Session::new(gamma, opts)?,
            },
        };
        let out = entry.session.infer_scoped(term);
        cache.push(entry); // most-recently-used at the back
        if cache.len() > SESSION_CACHE_CAP {
            cache.remove(0);
        }
        out
    })
}

/// Elaborate a closed-context term on the union-find engine: the
/// one-shot analogue of [`Session::elaborate`], served from the same
/// per-thread prelude snapshot cache as [`infer_term`].
///
/// # Errors
///
/// The same [`TypeError`] classes as [`infer_term`].
pub fn elaborate_term(gamma: &TypeEnv, term: &Term, opts: &Options) -> Result<Elab, TypeError> {
    freezeml_core::scope::well_scoped(&KindEnv::new(), term, opts)?;
    let fp = env_fingerprint(gamma, opts);
    SESSIONS.with(|cache| {
        let mut cache = cache.borrow_mut();
        let hit = cache
            .iter()
            .position(|c| c.fp == fp && c.opts == *opts && c.env == *gamma);
        let mut entry = match hit {
            Some(i) => cache.remove(i),
            None => CachedSession {
                fp,
                env: gamma.clone(),
                opts: *opts,
                session: Session::new(gamma, opts)?,
            },
        };
        let out = entry.session.elaborate(term);
        cache.push(entry); // most-recently-used at the back
        if cache.len() > SESSION_CACHE_CAP {
            cache.remove(0);
        }
        out
    })
}

/// Parse and infer on the union-find engine, returning the canonicalised
/// principal type — the drop-in analogue of `core::infer_program`.
///
/// ```
/// use freezeml_core::{Options, TypeEnv};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut env = TypeEnv::new();
/// env.push_str("choose", "forall a. a -> a -> a")?;
/// env.push_str("id", "forall a. a -> a")?;
/// let ty = freezeml_engine::infer_program(&env, "choose id", &Options::default())?;
/// assert_eq!(ty.to_string(), "(a -> a) -> a -> a");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// A [`ProgramError`] wrapping the parse or type error.
pub fn infer_program(gamma: &TypeEnv, src: &str, opts: &Options) -> Result<Type, ProgramError> {
    let term = freezeml_core::parse_term(src)?;
    let out = infer_term(gamma, &term, opts)?;
    Ok(out.ty.canonicalize())
}

/// Decide the declarative judgement `∆; Γ ⊢ M : A` via the union-find
/// engine — the analogue of `core::check::check_typing` (Theorem 7: a
/// typing is derivable iff the candidate matches the inferred principal
/// type under a kind-respecting substitution).
///
/// # Errors
///
/// Returns an error only for ill-scoped terms or malformed environments;
/// an ill-typed term yields `Ok(false)`.
pub fn check_typing(
    delta: &KindEnv,
    gamma: &TypeEnv,
    term: &Term,
    ty: &Type,
    opts: &Options,
) -> Result<bool, TypeError> {
    freezeml_core::scope::well_scoped(delta, term, opts)?;
    freezeml_core::kinding::check_env(delta, &RefinedEnv::new(), gamma)?;
    // Inference proper, with no re-checking: the checks above already ran
    // under the caller's ∆, and the engine treats ∆-bound variables as
    // rigid constants structurally, so it needs no environment of its own.
    let out = match Session::unchecked(gamma, opts).infer_scoped(term) {
        Ok(out) => out,
        Err(_) => return Ok(false), // complete: no inference ⇒ no typing
    };
    Ok(freezeml_core::check::matches(delta, &out.theta, &out.ty, ty).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> TypeEnv {
        let mut g = TypeEnv::new();
        for (name, ty) in [
            ("id", "forall a. a -> a"),
            ("ids", "List (forall a. a -> a)"),
            ("choose", "forall a. a -> a -> a"),
            ("head", "forall a. List a -> a"),
            ("single", "forall a. a -> List a"),
            ("auto", "(forall a. a -> a) -> forall a. a -> a"),
            ("auto'", "forall b. (forall a. a -> a) -> b -> b"),
            ("poly", "(forall a. a -> a) -> Int * Bool"),
            ("inc", "Int -> Int"),
            ("nil", "forall a. List a"),
        ] {
            g.push_str(name, ty).unwrap();
        }
        g
    }

    fn ty_of(src: &str) -> Result<String, ProgramError> {
        infer_program(&env(), src, &Options::default()).map(|t| t.to_string())
    }

    #[test]
    fn frozen_variable_keeps_scheme() {
        assert_eq!(ty_of("~id").unwrap(), "forall a. a -> a");
    }

    #[test]
    fn plain_variable_instantiates() {
        assert_eq!(ty_of("id").unwrap(), "a -> a");
    }

    #[test]
    fn lambda_infers_monotype_param() {
        assert_eq!(ty_of("fun x -> x").unwrap(), "a -> a");
        assert_eq!(ty_of("fun x y -> y").unwrap(), "a -> b -> b");
    }

    #[test]
    fn application_works() {
        assert_eq!(ty_of("inc 41").unwrap(), "Int");
        assert_eq!(ty_of("id 41").unwrap(), "Int");
    }

    #[test]
    fn choose_id_specialises() {
        assert_eq!(ty_of("choose id").unwrap(), "(a -> a) -> a -> a");
        assert_eq!(
            ty_of("choose ~id").unwrap(),
            "(forall a. a -> a) -> forall a. a -> a"
        );
    }

    #[test]
    fn generalisation_operator() {
        assert_eq!(ty_of("$(fun x -> x)").unwrap(), "forall a. a -> a");
        assert_eq!(ty_of("poly $(fun x -> x)").unwrap(), "Int * Bool");
        assert_eq!(ty_of("poly ~id").unwrap(), "Int * Bool");
    }

    #[test]
    fn auto_requires_frozen_argument() {
        assert!(ty_of("auto id").is_err());
        assert_eq!(ty_of("auto ~id").unwrap(), "forall a. a -> a");
    }

    #[test]
    fn instantiation_operator() {
        assert_eq!(ty_of("head ids").unwrap(), "forall a. a -> a");
        assert!(ty_of("head ids 3").is_err());
        assert_eq!(ty_of("(head ids)@ 3").unwrap(), "Int");
    }

    #[test]
    fn let_generalises_values() {
        assert_eq!(
            ty_of("let f = fun x -> x in poly ~f").unwrap(),
            "Int * Bool"
        );
    }

    #[test]
    fn let_does_not_generalise_applications() {
        assert!(ty_of("let f = fun x -> x in ~f 42").is_err());
        assert_eq!(
            ty_of("choose (head ids)").unwrap(),
            "(forall a. a -> a) -> forall a. a -> a"
        );
    }

    #[test]
    fn value_restriction_rejects_poly_solution() {
        let g = env();
        let r = infer_program(
            &g,
            "let xs = single id in choose ids xs",
            &Options::default(),
        );
        assert!(r.is_err(), "demoted var must not take a polytype: {r:?}");
    }

    #[test]
    fn annotated_let_accepts_non_principal_types() {
        assert_eq!(
            ty_of("let (f : Int -> Int) = fun x -> x in f 3").unwrap(),
            "Int"
        );
    }

    #[test]
    fn annotated_let_scoped_tyvars() {
        assert_eq!(
            ty_of("let (f : forall a. a -> a) = fun (x : a) -> x in f 3").unwrap(),
            "Int"
        );
    }

    #[test]
    fn annotated_let_rejects_wrong_annotation() {
        assert!(ty_of("let (f : Int -> Bool) = fun x -> x in f 3").is_err());
        assert!(ty_of("let (f : forall a. a -> a) = id id in f").is_err());
    }

    #[test]
    fn annotation_escape_is_caught() {
        let r = ty_of("fun y -> let (f : forall a. a -> a) = fun (x : a) -> y in f");
        assert!(matches!(
            r,
            Err(ProgramError::Type(TypeError::AnnotationEscape { .. }))
        ));
    }

    #[test]
    fn eliminator_strategy_instantiates_heads() {
        let opts = Options::eliminator();
        let r = infer_program(&env(), "head ids 3", &opts);
        assert_eq!(r.unwrap().to_string(), "Int");
    }

    #[test]
    fn pure_mode_generalises_applications() {
        let r = infer_program(&env(), "$(auto' ~id)", &Options::pure_freezeml());
        assert_eq!(r.unwrap().to_string(), "forall a. a -> a");
        let r2 = infer_program(&env(), "$(auto' ~id)", &Options::default());
        assert_eq!(r2.unwrap().to_string(), "a -> a");
    }

    #[test]
    fn session_store_stays_bounded_across_terms() {
        let mut session = Session::new(&env(), &Options::default()).unwrap();
        let term = freezeml_core::parse_term("poly $(fun x -> x)").unwrap();
        session.infer(&term).unwrap();
        session.infer(&term).unwrap();
        let after_two = session.store.checkpoint();
        for _ in 0..50 {
            session.infer(&term).unwrap();
        }
        // Per-term state is reclaimed: the extent after 52 terms equals
        // the extent after 2 (environment + exactly one term in flight).
        let after_many = session.store.checkpoint();
        assert_eq!(format!("{after_two:?}"), format!("{after_many:?}"));
    }

    #[test]
    fn check_typing_threads_a_nonempty_delta() {
        use freezeml_core::{parse_term, parse_type, TyVar};
        // ∆ = {a}, Γ = {x : a}: ⌈x⌉ : a is derivable; Int is not.
        let delta: KindEnv = [TyVar::named("a")].into_iter().collect();
        let mut gamma = TypeEnv::new();
        gamma.push("x", Type::var("a"));
        let term = parse_term("~x").unwrap();
        let opts = Options::default();
        assert!(check_typing(&delta, &gamma, &term, &parse_type("a").unwrap(), &opts).unwrap());
        assert!(!check_typing(&delta, &gamma, &term, &Type::int(), &opts).unwrap());
        // And it matches the oracle on the same judgement.
        assert!(freezeml_core::check::check_typing(
            &delta,
            &gamma,
            &term,
            &parse_type("a").unwrap(),
            &opts
        )
        .unwrap());
    }

    #[test]
    fn session_reuses_the_environment_across_terms() {
        let mut session = Session::new(&env(), &Options::default()).unwrap();
        for (src, want) in [
            ("choose id", "(a -> a) -> a -> a"),
            ("~id", "forall a. a -> a"),
            ("poly $(fun x -> x)", "Int * Bool"),
            ("inc 41", "Int"),
            ("fun x -> x", "a -> a"),
        ] {
            let term = freezeml_core::parse_term(src).unwrap();
            let got = session.infer(&term).unwrap().ty.canonicalize();
            assert_eq!(got.to_string(), want, "{src}");
        }
        // Errors leave the session usable.
        let bad = freezeml_core::parse_term("auto id").unwrap();
        assert!(session.infer(&bad).is_err());
        let term = freezeml_core::parse_term("id 41").unwrap();
        assert_eq!(session.infer(&term).unwrap().ty.to_string(), "Int");
    }

    #[test]
    fn infer_with_layers_extra_bindings() {
        let mut session = Session::new(&env(), &Options::default()).unwrap();
        let f = (
            Var::named("f"),
            freezeml_core::parse_type("forall a. a -> a").unwrap(),
        );
        let term = freezeml_core::parse_term("poly ~f").unwrap();
        let got = session.infer_with(std::slice::from_ref(&f), &term).unwrap();
        assert_eq!(got.ty.to_string(), "Int * Bool");
        // Per-call extras keep the store bounded: the extent after one
        // call equals the extent after many.
        let before = session.store.checkpoint();
        for _ in 0..50 {
            session.infer_with(std::slice::from_ref(&f), &term).unwrap();
        }
        let after = session.store.checkpoint();
        assert_eq!(format!("{before:?}"), format!("{after:?}"));
        // The extra binding is gone again afterwards.
        assert!(session.infer(&term).is_err());
        // Ill-formed extras are rejected by environment formation.
        let bad = (Var::named("g"), Type::Var(freezeml_core::TyVar::fresh()));
        assert!(session.infer_with(&[bad], &term).is_err());
    }

    #[test]
    fn session_hands_off_across_threads() {
        // The store is built from owned data (`Arc<str>` names, vectors,
        // hash maps), so a session moves between threads — the handoff
        // the parallel program-checking service relies on.
        fn assert_send<T: Send>(t: T) -> T {
            t
        }
        let session = assert_send(Session::new(&env(), &Options::default()).unwrap());
        let ty = std::thread::spawn(move || {
            let mut session = session;
            let term = freezeml_core::parse_term("poly $(fun x -> x)").unwrap();
            session.infer(&term).unwrap().ty.to_string()
        })
        .join()
        .unwrap();
        assert_eq!(ty, "Int * Bool");
    }

    #[test]
    fn check_typing_agrees_with_core() {
        use freezeml_core::{parse_term, parse_type};
        for (src, ty, want) in [
            ("fun x -> x", "Int -> Int", true),
            ("fun x -> x", "Int -> Bool", false),
            ("~id", "forall a. a -> a", true),
            (
                "fun x -> x",
                "(forall a. a -> a) -> forall a. a -> a",
                false,
            ),
        ] {
            let term = parse_term(src).unwrap();
            let ty = parse_type(ty).unwrap();
            let got = check_typing(&KindEnv::new(), &env(), &term, &ty, &Options::default());
            assert_eq!(got.unwrap(), want, "{src} : {ty}");
        }
    }
}
