//! Engine-native elaboration: System F evidence produced *by* union-find
//! inference (Figure 11 run on the store, not on derivation trees).
//!
//! The paper's translation `C⟦−⟧` consumes the typed derivation trees the
//! `core` oracle builds. The union-find engine has no trees — types are
//! `TypeId`s into a mutable store, resolved through cells at the moment
//! they are inspected. Evidence therefore comes in two stages:
//!
//! * during inference, the engine records an [`Ev`] skeleton mirroring
//!   the term with explicit `Λ`/type-application structure at every
//!   generalisation and instantiation point, embedding **`TypeId`s, not
//!   types**: an instantiation recorded while solving is just the fresh
//!   cell's id, and the final solution is read through the cell when the
//!   evidence is materialised — the "apply the final substitution"
//!   pass of the tree pipeline is the identity here, exactly like the
//!   engine's types themselves;
//! * after inference, residual flexible variables are grounded to `Int`
//!   (the same defaulting the `core` driver's `default_residuals`
//!   performs) and each embedded `TypeId` is materialised **through a
//!   [`SchemeStore`]**: export is O(DAG) and α-canonical, so the tree
//!   expansion is memoised per [`SchemeId`] — every α-equal type across
//!   the whole evidence term is expanded once, and no zonk runs during
//!   inference itself.
//!
//! The output is a [`freezeml_systemf::FTerm`]; the soundness oracle
//! (`freezeml_systemf::typecheck`) accepts it at a type α-equivalent to
//! the inferred scheme — checked for every conformance golden, Figure 1
//! corpus row, and property-generated term by the `elaborate`
//! differential mode in `freezeml_conformance`.

use crate::scheme::{SchemeId, SchemeStore};
use crate::store::{Store, TypeId};
use freezeml_core::{Lit, TyVar, Type, Var};
use freezeml_systemf::{admin_reduce, FTerm};
use fxhash::FxHashMap;

/// Evidence skeleton recorded during inference. Types are [`TypeId`]s
/// into the session store; they stay unresolved until
/// [`materialise`] reads them through the cells.
#[derive(Clone, Debug)]
pub(crate) enum Ev {
    /// A variable occurrence (plain head or frozen).
    Var(Var),
    /// A literal.
    Lit(Lit),
    /// `M A₁ … Aₙ` — instantiation evidence (Var rule / eliminator).
    Inst(Box<Ev>, Vec<TypeId>),
    /// `λx^A.M` — inferred parameter type or annotation.
    Lam(Var, TypeId, Box<Ev>),
    /// Application.
    App(Box<Ev>, Box<Ev>),
    /// Explicit type application `M@[A]`.
    TyApp(Box<Ev>, TypeId),
    /// `Λā.M` — generalisation evidence (`let` rule, annotation split).
    TyLams(Vec<TyVar>, Box<Ev>),
    /// `let x^A = M in N` (sugar for `(λx^A.N) M` on the F side).
    Let {
        /// The bound variable.
        x: Var,
        /// The type given to `x` (the generalised scheme or annotation).
        ty: TypeId,
        /// The right-hand side (already wrapped in its `Λ`s).
        rhs: Box<Ev>,
        /// The body.
        body: Box<Ev>,
    },
}

/// The static evidence hooks inference is generic over: the hot path
/// instantiates them with [`NoEv`] (everything compiles to nothing), the
/// elaborating path with [`BuildEv`].
pub(crate) trait EvBuild {
    /// The evidence representation (`()` for [`NoEv`]).
    type Term;
    /// Does this instantiation record anything? Gates the per-quantifier
    /// bookkeeping so the non-elaborating path stays allocation-free.
    const ON: bool;
    fn var(x: Var) -> Self::Term;
    fn lit(l: Lit) -> Self::Term;
    fn inst(inner: Self::Term, inst: Vec<TypeId>) -> Self::Term;
    fn lam(x: Var, param: TypeId, body: Self::Term) -> Self::Term;
    fn app(f: Self::Term, a: Self::Term) -> Self::Term;
    fn tyapp(inner: Self::Term, arg: TypeId) -> Self::Term;
    fn tylams(binders: Vec<TyVar>, body: Self::Term) -> Self::Term;
    fn let_(x: Var, ty: TypeId, rhs: Self::Term, body: Self::Term) -> Self::Term;
}

/// The zero-cost sink: inference without evidence.
pub(crate) struct NoEv;

impl EvBuild for NoEv {
    type Term = ();
    const ON: bool = false;
    fn var(_: Var) {}
    fn lit(_: Lit) {}
    fn inst(_: (), _: Vec<TypeId>) {}
    fn lam(_: Var, _: TypeId, _: ()) {}
    fn app(_: (), _: ()) {}
    fn tyapp(_: (), _: TypeId) {}
    fn tylams(_: Vec<TyVar>, _: ()) {}
    fn let_(_: Var, _: TypeId, _: (), _: ()) {}
}

/// The recording sink.
pub(crate) struct BuildEv;

impl EvBuild for BuildEv {
    type Term = Ev;
    const ON: bool = true;
    fn var(x: Var) -> Ev {
        Ev::Var(x)
    }
    fn lit(l: Lit) -> Ev {
        Ev::Lit(l)
    }
    fn inst(inner: Ev, inst: Vec<TypeId>) -> Ev {
        if inst.is_empty() {
            inner
        } else {
            Ev::Inst(Box::new(inner), inst)
        }
    }
    fn lam(x: Var, param: TypeId, body: Ev) -> Ev {
        Ev::Lam(x, param, Box::new(body))
    }
    fn app(f: Ev, a: Ev) -> Ev {
        Ev::App(Box::new(f), Box::new(a))
    }
    fn tyapp(inner: Ev, arg: TypeId) -> Ev {
        Ev::TyApp(Box::new(inner), arg)
    }
    fn tylams(binders: Vec<TyVar>, body: Ev) -> Ev {
        if binders.is_empty() {
            body
        } else {
            Ev::TyLams(binders, Box::new(body))
        }
    }
    fn let_(x: Var, ty: TypeId, rhs: Ev, body: Ev) -> Ev {
        Ev::Let {
            x,
            ty,
            rhs: Box::new(rhs),
            body: Box::new(body),
        }
    }
}

impl Ev {
    /// Visit every embedded `TypeId` (for grounding).
    fn for_each_type(&self, f: &mut impl FnMut(TypeId)) {
        match self {
            Ev::Var(_) | Ev::Lit(_) => {}
            Ev::Inst(inner, inst) => {
                inner.for_each_type(f);
                inst.iter().copied().for_each(&mut *f);
            }
            Ev::Lam(_, t, body) => {
                f(*t);
                body.for_each_type(f);
            }
            Ev::App(m, n) => {
                m.for_each_type(f);
                n.for_each_type(f);
            }
            Ev::TyApp(inner, t) => {
                inner.for_each_type(f);
                f(*t);
            }
            Ev::TyLams(_, body) => body.for_each_type(f),
            Ev::Let { ty, rhs, body, .. } => {
                f(*ty);
                rhs.for_each_type(f);
                body.for_each_type(f);
            }
        }
    }
}

/// An elaboration result: the engine-native image of the paper's
/// `C⟦−⟧`, plus its type.
#[derive(Clone, Debug)]
pub struct Elab {
    /// The administratively reduced System F term — satisfies the value
    /// restriction (the Theorem 3 repair), which is the form the
    /// `freezeml_systemf` oracle accepts.
    pub term: FTerm,
    /// The literal (unreduced) evidence image — `erase` of this is the
    /// source term again, which the type-erasure round-trip property
    /// checks.
    pub literal: FTerm,
    /// The inferred type, residuals grounded to `Int` (Theorem 3: the
    /// reduced term typechecks at a type α-equivalent to this).
    pub ty: Type,
}

/// Ground every residual flexible variable reachable from the evidence
/// or the result type to `Int` — the `default_residuals` of the tree
/// pipeline, as cell writes.
pub(crate) fn ground_residuals(store: &mut Store, ev: &Ev, root: TypeId) {
    let int = store.int();
    let ground = |store: &mut Store, t: TypeId| {
        for v in store.free_flex(t) {
            store.solve(v, int);
        }
    };
    ground(store, root);
    ev.for_each_type(&mut |t| ground(store, t));
}

/// Materialise the evidence as an [`FTerm`], reading every `TypeId`
/// through the store via a scheme-store embedding: each type is exported
/// O(DAG) to its α-canonical [`SchemeId`] and expanded to a tree once
/// per id, no matter how many evidence positions share it.
pub(crate) fn materialise(store: &mut Store, ev: &Ev) -> FTerm {
    let mut bank = SchemeStore::new();
    let mut memo: FxHashMap<SchemeId, Type> = FxHashMap::default();
    to_fterm(store, &mut bank, &mut memo, ev)
}

fn embed(
    store: &mut Store,
    bank: &mut SchemeStore,
    memo: &mut FxHashMap<SchemeId, Type>,
    t: TypeId,
) -> Type {
    let sid = bank.export(store, t);
    if let Some(ty) = memo.get(&sid) {
        return ty.clone();
    }
    let ty = bank.to_type(sid);
    memo.insert(sid, ty.clone());
    ty
}

fn to_fterm(
    store: &mut Store,
    bank: &mut SchemeStore,
    memo: &mut FxHashMap<SchemeId, Type>,
    ev: &Ev,
) -> FTerm {
    match ev {
        Ev::Var(x) => FTerm::Var(*x),
        Ev::Lit(l) => FTerm::Lit(*l),
        Ev::Inst(inner, inst) => {
            let head = to_fterm(store, bank, memo, inner);
            FTerm::tyapps(head, inst.iter().map(|&t| embed(store, bank, memo, t)))
        }
        Ev::Lam(x, t, body) => {
            let ty = embed(store, bank, memo, *t);
            FTerm::lam(*x, ty, to_fterm(store, bank, memo, body))
        }
        Ev::App(m, n) => FTerm::app(
            to_fterm(store, bank, memo, m),
            to_fterm(store, bank, memo, n),
        ),
        Ev::TyApp(inner, t) => {
            let head = to_fterm(store, bank, memo, inner);
            let ty = embed(store, bank, memo, *t);
            FTerm::tyapp(head, ty)
        }
        Ev::TyLams(binders, body) => {
            FTerm::tylams(binders.iter().copied(), to_fterm(store, bank, memo, body))
        }
        Ev::Let { x, ty, rhs, body } => {
            let ann = embed(store, bank, memo, *ty);
            let rhs = to_fterm(store, bank, memo, rhs);
            let body = to_fterm(store, bank, memo, body);
            FTerm::let_(*x, ann, rhs, body)
        }
    }
}

/// Finish an elaborating inference run: ground residuals, materialise
/// the evidence, administratively reduce it.
pub(crate) fn finish(store: &mut Store, ev: Ev, ty_id: TypeId) -> Elab {
    ground_residuals(store, &ev, ty_id);
    let literal = materialise(store, &ev);
    let term = admin_reduce(&literal);
    let ty = store.zonk(ty_id);
    Elab { term, literal, ty }
}

#[cfg(test)]
mod tests {
    use freezeml_core::{parse_term, parse_type, KindEnv, Options, TypeEnv};
    use freezeml_systemf::{eval, prelude::runtime_env, typecheck, Value};

    fn env() -> TypeEnv {
        freezeml_corpus::figure2()
    }

    fn check(src: &str, opts: &Options) -> crate::Elab {
        let term = parse_term(src).unwrap();
        let e = crate::elaborate_term(&env(), &term, opts).unwrap();
        let fty = typecheck(&KindEnv::new(), &env(), &e.term)
            .unwrap_or_else(|err| panic!("C⟦{src}⟧ ill-typed: {err}\n  {}", e.term));
        assert!(
            fty.alpha_eq(&e.ty),
            "type not preserved for `{src}`: {fty} vs {}",
            e.ty
        );
        e
    }

    #[test]
    fn theorem3_on_representative_programs() {
        for src in [
            "~id",
            "id",
            "choose id",
            "choose ~id",
            "poly ~id",
            "poly $(fun x -> x)",
            "single ~id",
            "fun (x : forall a. a -> a) -> x ~x",
            "let f = fun x -> x in poly ~f",
            "let (f : Int -> Int) = fun x -> x in f 3",
            "let (f : forall a. a -> a) = fun (x : a) -> x in f 3",
            "(head ids)@ 3",
            "runST ~argST",
            "auto ~id",
            "let g = (let y = fun x -> x in y) in poly ~g",
        ] {
            check(src, &Options::default());
        }
    }

    #[test]
    fn eliminator_mode_elaborates() {
        check("head ids 3", &Options::eliminator());
        // Pure-mode values still elaborate (the Λ wraps a value).
        check("$(fun x -> x)", &Options::pure_freezeml());
    }

    #[test]
    fn pure_mode_generalised_applications_trip_the_value_restriction() {
        // Pure FreezeML generalises over applications; its image lives
        // in *full* System F, which our CBV implementation (value
        // restriction on Λ, Appendix B.1) deliberately rejects. The
        // elaborate differential therefore covers standard and
        // eliminator modes only — pinned here so the boundary is
        // explicit.
        let term = parse_term("$(auto' ~id)").unwrap();
        let e = crate::elaborate_term(&env(), &term, &Options::pure_freezeml()).unwrap();
        assert!(matches!(
            typecheck(&KindEnv::new(), &env(), &e.term),
            Err(freezeml_systemf::FTypeError::ValueRestriction)
        ));
    }

    #[test]
    fn frozen_var_is_a_plain_variable() {
        use freezeml_systemf::FTerm;
        let e = check("~id", &Options::default());
        assert_eq!(e.term, FTerm::var("id"));
        // A plain occurrence instantiates; the residual is grounded.
        let e = check("id", &Options::default());
        assert_eq!(
            e.term,
            FTerm::tyapp(FTerm::var("id"), freezeml_core::Type::int())
        );
    }

    #[test]
    fn generalising_let_produces_a_tylam() {
        use freezeml_systemf::FTerm;
        let e = check("$(fun x -> x)", &Options::default());
        assert!(
            e.ty.alpha_eq(&parse_type("forall a. a -> a").unwrap()),
            "{}",
            e.ty
        );
        assert!(matches!(e.term, FTerm::TyLam(_, _)), "got {}", e.term);
    }

    #[test]
    fn elaborated_terms_evaluate() {
        let e = check("poly $(fun x -> x)", &Options::default());
        assert_eq!(
            eval(&runtime_env(), &e.term).unwrap(),
            Value::Pair(Box::new(Value::Int(42)), Box::new(Value::Bool(true)))
        );
        let e2 = check("(head ids)@ 3", &Options::default());
        assert_eq!(eval(&runtime_env(), &e2.term).unwrap(), Value::Int(3));
        // The literal (unreduced) image evaluates to the same value.
        assert_eq!(
            eval(&runtime_env(), &e.literal).unwrap(),
            eval(&runtime_env(), &e.term).unwrap()
        );
    }

    #[test]
    fn session_elaborate_reuses_the_environment() {
        let mut session = crate::Session::new(&env(), &Options::default()).unwrap();
        for (src, want) in [
            ("poly ~id", "Int * Bool"),
            ("~id", "forall a. a -> a"),
            ("inc 41", "Int"),
        ] {
            let term = parse_term(src).unwrap();
            let e = session.elaborate(&term).unwrap();
            assert!(e.ty.alpha_eq(&parse_type(want).unwrap()), "{src}: {}", e.ty);
            let fty = typecheck(&KindEnv::new(), &env(), &e.term).unwrap();
            assert!(fty.alpha_eq(&e.ty), "{src}");
        }
        // Errors leave the session usable for elaboration too.
        let bad = parse_term("auto id").unwrap();
        assert!(session.elaborate(&bad).is_err());
        let term = parse_term("id 41").unwrap();
        assert_eq!(session.elaborate(&term).unwrap().ty.to_string(), "Int");
    }

    #[test]
    fn elaborate_with_layers_extra_bindings() {
        let mut session = crate::Session::new(&env(), &Options::default()).unwrap();
        let f = (
            freezeml_core::Var::named("f"),
            parse_type("forall a. a -> a").unwrap(),
        );
        let term = parse_term("poly ~f").unwrap();
        let e = session
            .elaborate_with(std::slice::from_ref(&f), &term)
            .unwrap();
        assert_eq!(e.ty.to_string(), "Int * Bool");
        let mut g = env();
        g.push("f", parse_type("forall a. a -> a").unwrap());
        let fty = typecheck(&KindEnv::new(), &g, &e.term).unwrap();
        assert!(fty.alpha_eq(&e.ty));
        // The extra binding is gone again afterwards.
        assert!(session.elaborate(&term).is_err());
    }
}
