//! Property (PR 4 satellite): on-demand zonk through the scheme store
//! is α-equivalent to the old eager zonk.
//!
//! The zonk-free pipeline exports inference results as [`SchemeId`]s
//! (de Bruijn hash-consed DAGs) and materialises a `core::Type` tree
//! only at the protocol boundary. These tests hold that late
//! materialisation to the eager path on generated ML terms and on the
//! exponential pair chain at n = 12 — the workload whose tree form is
//! 2¹² nodes while its DAG form is 13.

use freezeml_core::{Options, Type};
use freezeml_engine::{SchemeBank, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prelude() -> freezeml_core::TypeEnv {
    freezeml_corpus::figure2()
}

/// The eager-path reference: infer with zonk, canonicalise, ground
/// residuals to `Int` — exactly the scheme the service used to store.
fn eager_scheme(env: &freezeml_core::TypeEnv, term: &freezeml_core::Term) -> Option<Type> {
    let out = freezeml_engine::infer_term(env, term, &Options::default()).ok()?;
    let mut scheme = out.ty.canonicalize();
    for v in scheme.ftv() {
        scheme = scheme.rename_free(&v, &Type::int());
    }
    Some(scheme)
}

#[test]
fn exported_schemes_zonk_on_demand_alpha_equal_to_eager_zonk() {
    let env = prelude();
    let opts = Options::default();
    let cfg = freezeml_miniml::generator::GenConfig::default();
    let mut rng = StdRng::seed_from_u64(0xD0_5EED);
    let bank = SchemeBank::new();
    let mut session = Session::new(&env, &opts).unwrap();
    let mut checked = 0;
    let mut attempts = 0;
    while checked < 150 && attempts < 3000 {
        attempts += 1;
        let t = freezeml_miniml::generator::random_term(&mut rng, &cfg).to_freezeml();
        let Some(eager) = eager_scheme(&env, &t) else {
            continue; // ill-typed sample
        };
        let out = session
            .infer_scheme_with(&bank, &[], &t)
            .expect("eager path succeeded, scheme path must too");
        let late = bank.to_type(out.scheme);
        assert!(
            late.alpha_eq(&eager),
            "term `{t}`: on-demand {late} vs eager {eager}"
        );
        checked += 1;
    }
    assert!(checked >= 100, "only {checked} well-typed samples");
}

#[test]
fn scheme_and_eager_paths_agree_on_failures_too() {
    let env = prelude();
    let opts = Options::default();
    let cfg = freezeml_miniml::generator::GenConfig::default();
    let mut rng = StdRng::seed_from_u64(0xBAD_5EED);
    let bank = SchemeBank::new();
    let mut session = Session::new(&env, &opts).unwrap();
    let mut failures = 0;
    for _ in 0..1500 {
        let t = freezeml_miniml::generator::random_term(&mut rng, &cfg).to_freezeml();
        let eager = freezeml_engine::infer_term(&env, &t, &opts);
        let scheme = session.infer_scheme_with(&bank, &[], &t);
        match (&eager, &scheme) {
            (Ok(_), Ok(_)) => {}
            (Err(e1), Err(e2)) => {
                assert_eq!(
                    freezeml_engine::class_of(e1),
                    freezeml_engine::class_of(e2),
                    "term `{t}`"
                );
                failures += 1;
            }
            _ => panic!("paths disagree on `{t}`: {eager:?} vs {scheme:?}"),
        }
    }
    assert!(
        failures > 20,
        "generator should produce some ill-typed terms"
    );
}

#[test]
fn pair_chain_n12_exports_as_a_dag_and_zonks_alpha_equal() {
    let env = prelude();
    let opts = Options::default();
    let term = freezeml_miniml::generator::pair_chain(12).to_freezeml();

    // Eager reference (this is the expensive side: the tree has 2¹²
    // leaves).
    let eager = eager_scheme(&env, &term).expect("pair chain is well typed");

    let bank = SchemeBank::new();
    let mut session = Session::new(&env, &opts).unwrap();
    let nodes_before = bank.len();
    let out = session.infer_scheme_with(&bank, &[], &term).unwrap();
    let exported_nodes = bank.len() - nodes_before;
    assert!(
        exported_nodes <= 64,
        "export must stay DAG-sized, got {exported_nodes} nodes"
    );

    // On-demand zonk at the boundary is α-equal to the eager result…
    let late = bank.to_type(out.scheme);
    assert!(late.alpha_eq(&eager));
    // …and re-exporting the same inference hits the same α-class id.
    let out2 = session.infer_scheme_with(&bank, &[], &term).unwrap();
    assert_eq!(out.scheme, out2.scheme);
}

#[test]
fn dependency_schemes_layer_without_trees() {
    // The service shape: check a binding, feed its SchemeId to a
    // dependent, compare against the tree-based infer_with path.
    let env = prelude();
    let opts = Options::default();
    let bank = SchemeBank::new();
    let mut session = Session::new(&env, &opts).unwrap();

    let f_term = freezeml_core::parse_term("let f = fun x -> x in ~f").unwrap();
    let f = session.infer_scheme_with(&bank, &[], &f_term).unwrap();
    assert_eq!(&*bank.pretty(f.scheme), "forall a. a -> a");

    let use_term = freezeml_core::parse_term("poly ~f").unwrap();
    let deps = [(freezeml_core::Var::named("f"), f.scheme)];
    let got = session.infer_scheme_with(&bank, &deps, &use_term).unwrap();
    assert_eq!(&*bank.pretty(got.scheme), "Int * Bool");

    // Tree-based reference.
    let f_ty = bank.to_type(f.scheme);
    let tree = session
        .infer_with(&[(freezeml_core::Var::named("f"), f_ty)], &use_term)
        .unwrap();
    assert!(bank.to_type(got.scheme).alpha_eq(&tree.ty.canonicalize()));
}
