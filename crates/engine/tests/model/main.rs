//! Model-checked concurrency invariants for the sharded scheme bank.
//!
//! Run with `RUSTFLAGS='--cfg interleave' cargo test -p freezeml_engine
//! --test model`. The bank's shard locks route through
//! `freezeml_obs::lockrank` over the crate `sync` alias, so under the
//! model cfg every shard acquisition is a schedule point and the DFS
//! explores real intern/intern and intern/render races.
//!
//! Types are parsed in the parent thread so the core symbol table (a
//! plain `std` lock, deliberately outside the model) is warm before any
//! modeled thread runs.
#![cfg(interleave)]

use freezeml_core::{parse_type, Type};
use freezeml_engine::bank::SchemeBank;
use interleave::sync::Arc;

fn ty(src: &str) -> Type {
    parse_type(src).unwrap()
}

/// The hash-consing headline: two threads racing to intern α-identical
/// schemes (spelled with different binder names, so only α-equivalence
/// links them) must land on ONE id, in every interleaving.
#[test]
fn racing_interns_of_alpha_identical_schemes_share_one_id() {
    let a = ty("forall a. a -> a");
    let b = ty("forall b. b -> b");
    interleave::model(move || {
        let bank = Arc::new(SchemeBank::new());
        let h1 = {
            let bank = Arc::clone(&bank);
            let a = a.clone();
            interleave::thread::spawn(move || bank.intern_type(&a))
        };
        let h2 = {
            let bank = Arc::clone(&bank);
            let b = b.clone();
            interleave::thread::spawn(move || bank.intern_type(&b))
        };
        let ia = h1.join().unwrap();
        let ib = h2.join().unwrap();
        assert_eq!(ia, ib, "α-class forked under this interleaving");
    });
}

/// Distinct α-classes interned concurrently stay distinct — the race
/// may order slot allocation either way, but never merges classes.
#[test]
fn racing_interns_of_distinct_schemes_stay_distinct() {
    let a = ty("Int -> Int");
    let b = ty("Bool -> Bool");
    interleave::model(move || {
        let bank = Arc::new(SchemeBank::new());
        let h1 = {
            let bank = Arc::clone(&bank);
            let a = a.clone();
            interleave::thread::spawn(move || bank.intern_type(&a))
        };
        let h2 = {
            let bank = Arc::clone(&bank);
            let b = b.clone();
            interleave::thread::spawn(move || bank.intern_type(&b))
        };
        let ia = h1.join().unwrap();
        let ib = h2.join().unwrap();
        assert_ne!(ia, ib, "distinct α-classes merged");
        // Both survive a re-intern from the parent (bijection holds).
        assert_eq!(bank.intern_type(&a), ia);
        assert_eq!(bank.intern_type(&b), ib);
    });
}

/// Two threads racing a cold `pretty` on the same id both get the
/// canonical string, and the memo converges (a later call is a hit —
/// the renders counter stops moving).
#[test]
fn racing_cold_renders_agree_and_memoise() {
    let a = ty("forall a. a -> a");
    interleave::model(move || {
        let bank = Arc::new(SchemeBank::new());
        let id = bank.intern_type(&a);
        let h1 = {
            let bank = Arc::clone(&bank);
            interleave::thread::spawn(move || bank.pretty(id))
        };
        let h2 = {
            let bank = Arc::clone(&bank);
            interleave::thread::spawn(move || bank.pretty(id))
        };
        let s1 = h1.join().unwrap();
        let s2 = h2.join().unwrap();
        assert_eq!(s1, s2, "racing renders disagreed");
        let before = bank.renders();
        let s3 = bank.pretty(id);
        assert_eq!(s3, s1);
        assert_eq!(bank.renders(), before, "post-race pretty missed the memo");
    });
}
