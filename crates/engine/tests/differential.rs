//! Property-based differential tests: the union-find engine against the
//! paper-literal oracle on randomly generated inputs.
//!
//! Two generators:
//!
//! * **well-kinded type pairs** under a random flexible environment `Θ` —
//!   both engines must produce the same unification verdict, the same
//!   α-class of unified type, the same set of solved variables, and the
//!   same kinds for the survivors (demotion parity);
//! * **random FreezeML terms** over the Figure 2 prelude, covering the
//!   full surface language (freeze `~x`, generalise `$M`, instantiate
//!   `M@`, `let`, annotated binders) — both engines must agree end to end
//!   on success/failure, error class, and principal type up to
//!   α-equivalence.
//!
//! Streams are seeded deterministically; failures print the seed and the
//! offending input.

use freezeml_core::{Kind, Options, RefinedEnv, Term, TyVar, Type, TypeEnv};
use freezeml_engine::differential::{compare_term, compare_unify};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- types

struct TypePool {
    rigids: Vec<TyVar>,
    flex: Vec<TyVar>,
}

fn random_type<R: Rng>(rng: &mut R, pool: &TypePool, depth: usize, bound: &mut Vec<TyVar>) -> Type {
    let leaf = depth == 0 || rng.gen_range(0..10) < 3;
    if leaf {
        let n_choices = pool.rigids.len() + pool.flex.len() + bound.len() + 2;
        let i = rng.gen_range(0..n_choices);
        if i < pool.rigids.len() {
            return Type::Var(pool.rigids[i]);
        }
        let i = i - pool.rigids.len();
        if i < pool.flex.len() {
            return Type::Var(pool.flex[i]);
        }
        let i = i - pool.flex.len();
        if i < bound.len() {
            return Type::Var(bound[i]);
        }
        return if i - bound.len() == 0 {
            Type::int()
        } else {
            Type::bool()
        };
    }
    match rng.gen_range(0..10) {
        0..=3 => {
            let a = random_type(rng, pool, depth - 1, bound);
            let b = random_type(rng, pool, depth - 1, bound);
            Type::arrow(a, b)
        }
        4 | 5 => {
            let a = random_type(rng, pool, depth - 1, bound);
            let b = random_type(rng, pool, depth - 1, bound);
            Type::prod(a, b)
        }
        6 | 7 => Type::list(random_type(rng, pool, depth - 1, bound)),
        8 => {
            let a = random_type(rng, pool, depth - 1, bound);
            let b = random_type(rng, pool, depth - 1, bound);
            Type::st(a, b)
        }
        _ => {
            let binder = TyVar::named(format!("q{}", rng.gen_range(0..3)));
            bound.push(binder);
            let body = random_type(rng, pool, depth - 1, bound);
            bound.pop();
            Type::Forall(binder, Box::new(body))
        }
    }
}

/// Mutate a type: replace random subtrees by flexible variables or fresh
/// random structure, so the pair is "related" and unification explores
/// success paths, not just head mismatches.
fn mutate<R: Rng>(rng: &mut R, pool: &TypePool, t: &Type, bound: &mut Vec<TyVar>) -> Type {
    if rng.gen_range(0..10) < 2 {
        // Swap this subtree out entirely.
        return if rng.gen_bool(0.6) && !pool.flex.is_empty() {
            Type::Var(pool.flex[rng.gen_range(0..pool.flex.len())])
        } else {
            random_type(rng, pool, 2, bound)
        };
    }
    match t {
        Type::Var(_) => t.clone(),
        Type::Con(c, args) => Type::Con(
            *c,
            args.iter().map(|a| mutate(rng, pool, a, bound)).collect(),
        ),
        Type::Forall(a, body) => {
            bound.push(*a);
            let b = mutate(rng, pool, body, bound);
            bound.pop();
            Type::Forall(*a, Box::new(b))
        }
    }
}

#[test]
fn random_type_pairs_unify_identically() {
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF2EE2E);
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let pool = TypePool {
            rigids: vec![TyVar::named("ra"), TyVar::named("rb")],
            flex: (0..4).map(|_| TyVar::fresh()).collect(),
        };
        let theta: RefinedEnv = pool
            .flex
            .iter()
            .map(|v| {
                (
                    *v,
                    if rng.gen_bool(0.5) {
                        Kind::Poly
                    } else {
                        Kind::Mono
                    },
                )
            })
            .collect();
        let mut bound = Vec::new();
        let a = random_type(&mut rng, &pool, 4, &mut bound);
        let b = if rng.gen_bool(0.7) {
            mutate(&mut rng, &pool, &a, &mut bound)
        } else {
            random_type(&mut rng, &pool, 4, &mut bound)
        };
        if let Err(d) = compare_unify(&theta, &a, &b) {
            panic!("case {case} (seed {seed}): {d}");
        }
    }
}

// ---------------------------------------------------------------- terms

fn annotation_pool() -> Vec<Type> {
    [
        "Int",
        "Int -> Int",
        "forall a. a -> a",
        "forall a b. a -> b -> a",
        "List (forall a. a -> a)",
        "forall a. List a -> a",
        "(forall a. a -> a) -> Int * Bool",
    ]
    .iter()
    .map(|s| freezeml_core::parse_type(s).expect("pool type parses"))
    .collect()
}

struct TermPool {
    prelude: Vec<String>,
    annotations: Vec<Type>,
}

fn random_term<R: Rng>(
    rng: &mut R,
    pool: &TermPool,
    depth: usize,
    scope: &mut Vec<String>,
    counter: &mut usize,
) -> Term {
    if depth == 0 {
        return leaf(rng, pool, scope);
    }
    match rng.gen_range(0..20) {
        0..=3 => leaf(rng, pool, scope),
        4..=6 => {
            let x = fresh_name(counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::lam(x.as_str(), body)
        }
        7 => {
            let x = fresh_name(counter);
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::lam_ann(x.as_str(), ann, body)
        }
        8..=12 => {
            let f = random_term(rng, pool, depth - 1, scope, counter);
            let a = random_term(rng, pool, depth - 1, scope, counter);
            Term::app(f, a)
        }
        13..=15 => {
            let x = fresh_name(counter);
            let rhs = random_term(rng, pool, depth - 1, scope, counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::let_(x.as_str(), rhs, body)
        }
        16 => {
            let x = fresh_name(counter);
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            let rhs = random_term(rng, pool, depth - 1, scope, counter);
            scope.push(x.clone());
            let body = random_term(rng, pool, depth - 1, scope, counter);
            scope.pop();
            Term::let_ann(x.as_str(), ann, rhs, body)
        }
        17 => Term::gen(random_term(rng, pool, depth - 1, scope, counter)),
        18 => Term::inst(random_term(rng, pool, depth - 1, scope, counter)),
        _ => {
            let ann = pool.annotations[rng.gen_range(0..pool.annotations.len())].clone();
            Term::ty_app(random_term(rng, pool, depth - 1, scope, counter), ann)
        }
    }
}

fn fresh_name(counter: &mut usize) -> String {
    let n = format!("x{counter}");
    *counter += 1;
    n
}

fn leaf<R: Rng>(rng: &mut R, pool: &TermPool, scope: &[String]) -> Term {
    let n_scope = scope.len();
    let n_prelude = pool.prelude.len();
    let total = 2 * (n_scope + n_prelude) + 2;
    let i = rng.gen_range(0..total);
    let name_at = |i: usize| -> &str {
        if i < n_scope {
            scope[i].as_str()
        } else {
            pool.prelude[i - n_scope].as_str()
        }
    };
    if i < n_scope + n_prelude {
        Term::var(name_at(i))
    } else if i < 2 * (n_scope + n_prelude) {
        Term::frozen(name_at(i - n_scope - n_prelude))
    } else if i == 2 * (n_scope + n_prelude) {
        Term::int(rng.gen_range(0..100))
    } else {
        Term::bool(rng.gen_bool(0.5))
    }
}

#[test]
fn random_prelude_terms_infer_identically() {
    let cases: usize = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x7E2A5);
    let env: TypeEnv = freezeml_corpus::figure2();
    let pool = TermPool {
        prelude: env.iter().map(|(v, _)| v.to_string()).collect(),
        annotations: annotation_pool(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut well_typed = 0usize;
    for case in 0..cases {
        let mut scope = Vec::new();
        let mut counter = 0usize;
        let term = random_term(&mut rng, &pool, 5, &mut scope, &mut counter);
        let opts = if rng.gen_bool(0.2) {
            Options::pure_freezeml()
        } else if rng.gen_bool(0.2) {
            Options::eliminator()
        } else {
            Options::default()
        };
        match compare_term(&env, &term, &opts) {
            Ok(Ok(_)) => well_typed += 1,
            Ok(Err(_)) => {}
            Err(d) => panic!("case {case} (seed {seed}): {d}"),
        }
    }
    // The generator must exercise the success path, not just errors.
    assert!(
        well_typed * 10 >= cases,
        "only {well_typed}/{cases} generated terms were well-typed"
    );
}

#[test]
fn deterministic_worst_cases_agree() {
    // The shapes `engine_compare` times (freeze chains, deep
    // applications) are exactly where the two engines' bookkeeping
    // differs most; pin agreement on the benchmark helpers themselves so
    // this test can never drift from what the bench measures. Both
    // engines traverse application spines iteratively, so the 64-deep
    // chain runs on the default test-thread stack.
    let env = freezeml_corpus::figure2();
    let opts = Options::default();
    for n in [1usize, 4, 16] {
        if let Err(d) = compare_term(&env, &freezeml_bench::freeze_let_chain(n), &opts) {
            panic!("freeze chain {n}: {d}");
        }
    }
    if let Err(d) = compare_term(&env, &freezeml_bench::app_chain(64), &opts) {
        panic!("app chain: {d}");
    }
}
