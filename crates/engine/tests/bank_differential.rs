//! Differential proof obligation for the sharded scheme bank (PR 6
//! tentpole): [`SchemeBank`] must assign ids that induce **exactly the
//! α-equivalence partition** the single-lock [`SchemeStore`] does — from
//! one thread, and from many threads interning concurrently. SchemeIds
//! are α-class names; the service's per-binding cache and the protocol's
//! `id` field are only sound if two types share a bank id *iff* they
//! share a store id.
//!
//! The generator below produces deeply nested quantified types plus
//! their α-variants (via `canonicalize`, which renames binders), so both
//! the "same class, different spelling" and the "different class" sides
//! of the iff get real coverage.

use freezeml_core::{TyVar, Type};
use freezeml_engine::{SchemeBank, SchemeStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

fn pool() -> Vec<TyVar> {
    ["a", "b", "c", "d"]
        .iter()
        .map(|s| TyVar::from(*s))
        .collect()
}

fn random_type(rng: &mut StdRng, depth: usize) -> Type {
    let vars = pool();
    if depth == 0 || rng.gen_range(0..6) == 0 {
        return match rng.gen_range(0..4) {
            0 => Type::int(),
            1 => Type::bool(),
            _ => Type::var(vars[rng.gen_range(0..vars.len())]),
        };
    }
    match rng.gen_range(0..5) {
        0 => Type::arrow(random_type(rng, depth - 1), random_type(rng, depth - 1)),
        1 => Type::prod(random_type(rng, depth - 1), random_type(rng, depth - 1)),
        2 => Type::list(random_type(rng, depth - 1)),
        3 => {
            let n = rng.gen_range(1..3);
            let binders: Vec<TyVar> = (0..n).map(|_| vars[rng.gen_range(0..vars.len())]).collect();
            Type::foralls(binders, random_type(rng, depth - 1))
        }
        _ => Type::st(random_type(rng, depth - 1), random_type(rng, depth - 1)),
    }
}

/// ~N random types, each followed by an α-variant with renamed binders
/// (`canonicalize` renames bound variables but preserves the class).
fn corpus(seed: u64, n: usize) -> Vec<Type> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(2 * n);
    for _ in 0..n {
        let t = random_type(&mut rng, 4);
        out.push(t.canonicalize());
        out.push(t);
    }
    out
}

/// Assert `pairs` (store id, bank id) form a bijection between the ids
/// each side actually used — i.e. the two partitions are identical.
fn assert_bijection(pairs: &[(freezeml_engine::SchemeId, freezeml_engine::SchemeId)]) {
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    for &(s, b) in pairs {
        assert_eq!(
            *fwd.entry(s).or_insert(b),
            b,
            "store class {s:?} split into two bank ids"
        );
        assert_eq!(
            *bwd.entry(b).or_insert(s),
            s,
            "bank id {b:?} merged two store classes"
        );
    }
}

#[test]
fn bank_ids_induce_the_store_partition_single_threaded() {
    let types = corpus(0x5EED_BA4C, 400);
    let mut store = SchemeStore::new();
    let bank = SchemeBank::new();
    let mut pairs = Vec::new();
    for t in &types {
        let s = store.intern_type(t);
        let b = bank.intern_type(t);
        pairs.push((s, b));
        // Pretty strings are a pure function of the α-class, so the two
        // implementations must print byte-identically.
        assert_eq!(&*store.pretty(s), &*bank.pretty(b), "for {t}");
        // And a round trip through the bank stays in class.
        assert!(bank.to_type(b).alpha_eq(t), "round trip of {t}");
    }
    assert_bijection(&pairs);
    // Adjacent corpus entries are α-variants of each other: same ids.
    for w in pairs.chunks(2) {
        assert_eq!(w[0].0, w[1].0, "store saw through an α-renaming");
        assert_eq!(w[0].1, w[1].1, "bank saw through an α-renaming");
    }
}

#[test]
fn snapshot_round_trip_preserves_the_partition_and_renders() {
    // Persistence obligation: exporting a bank's reachable DAG and
    // absorbing it into a fresh bank must reproduce the α-class
    // partition exactly, with byte-identical renderings — the load path
    // of `--cache-dir` is only sound under this bijection.
    let types = corpus(0xD15C_0CAF, 300);
    let bank = SchemeBank::new();
    let roots: Vec<_> = types.iter().map(|t| bank.intern_type(t)).collect();
    let renders: Vec<_> = roots.iter().map(|&r| bank.pretty(r)).collect();

    let (nodes, idxs) = bank.export_snapshot(&roots);
    let fresh = SchemeBank::new();
    let absorbed = fresh.absorb_snapshot(&nodes).expect("valid snapshot");

    let mut pairs = Vec::new();
    for (i, t) in types.iter().enumerate() {
        let idx = idxs[i].expect("corpus types are fully named");
        let id = absorbed.closed(idx).expect("corpus roots are closed");
        pairs.push((roots[i], id));
        assert_eq!(&*renders[i], &*fresh.pretty(id), "render drifted for {t}");
        assert!(fresh.to_type(id).alpha_eq(t), "round trip of {t}");
    }
    assert_bijection(&pairs);
}

#[test]
fn concurrent_interning_agrees_with_the_single_lock_store() {
    let types = Arc::new(corpus(0xC0_4C0B_5EED, 300));
    let bank = Arc::new(SchemeBank::new());
    const THREADS: usize = 4;

    // Every thread interns the whole corpus, each in a different order,
    // so the same α-class races into its home shard from all sides.
    let per_thread: Vec<Vec<freezeml_engine::SchemeId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|k| {
                let types = Arc::clone(&types);
                let bank = Arc::clone(&bank);
                scope.spawn(move || {
                    let n = types.len();
                    let mut ids = vec![None; n];
                    for i in 0..n {
                        let j = (i * 7 + k * 31) % n; // per-thread order
                        ids[j] = Some(bank.intern_type(&types[j]));
                    }
                    ids.into_iter().map(Option::unwrap).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // All threads observed the same id for every type: interning is a
    // pure function of the α-class even under contention.
    for t in 1..THREADS {
        assert_eq!(per_thread[0], per_thread[t], "thread {t} diverged");
    }

    // And the partition matches the single-lock store's.
    let mut store = SchemeStore::new();
    let pairs: Vec<_> = types
        .iter()
        .enumerate()
        .map(|(i, t)| (store.intern_type(t), per_thread[0][i]))
        .collect();
    assert_bijection(&pairs);
    for (i, t) in types.iter().enumerate() {
        assert_eq!(
            &*store.pretty(pairs[i].0),
            &*bank.pretty(per_thread[0][i]),
            "for {t}"
        );
    }
}
