//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target regenerates one of the paper's artefacts:
//!
//! * `benches/figure1.rs` — Figure 1: per-section and whole-corpus
//!   inference (the paper's qualitative table, timed);
//! * `benches/table1.rs` — Table 1: the computed FreezeML and ML rows;
//! * `benches/unify.rs` — unification scaling (depth, width, quantifier
//!   nesting, demotion);
//! * `benches/inference_scaling.rs` — Algorithm W vs FreezeML inference on
//!   let-chains, application chains, and the classic exponential pair
//!   chain (the substitution-based-algorithm ablation from DESIGN.md);
//! * `benches/translate.rs` — `C⟦−⟧`/`E⟦−⟧` translation round trips.
//!
//! The paper reports no performance numbers (its evaluation is
//! qualitative), so these benches record the *shape* of our
//! implementation's behaviour; `EXPERIMENTS.md` keeps the measured
//! numbers.

use freezeml_core::{Options, Term, Type, TypeEnv};

/// The Figure 2 prelude (re-exported for benches).
pub fn prelude() -> TypeEnv {
    freezeml_corpus::figure2()
}

/// Infer a parsed term against the prelude, panicking on failure.
pub fn infer_ok(env: &TypeEnv, term: &Term) -> Type {
    freezeml_core::infer_term(env, term, &Options::default())
        .expect("benchmark term must be well-typed")
        .ty
}

/// A deep arrow type `Int -> Int -> … -> Int` of the given depth.
pub fn deep_arrow(depth: usize) -> Type {
    let mut t = Type::int();
    for _ in 0..depth {
        t = Type::arrow(Type::int(), t);
    }
    t
}

/// A nested list type `List (List (… Int))` of the given depth.
pub fn deep_list(depth: usize) -> Type {
    let mut t = Type::int();
    for _ in 0..depth {
        t = Type::list(t);
    }
    t
}

/// `∀a₁…aₙ. a₁ → … → aₙ → Int` — a type with `n` quantifiers.
pub fn quantified(n: usize) -> Type {
    let vars: Vec<freezeml_core::TyVar> = (0..n)
        .map(|i| freezeml_core::TyVar::named(format!("q{i}")))
        .collect();
    let body = vars
        .iter()
        .rev()
        .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
    Type::foralls(vars, body)
}

/// A FreezeML application chain `id (id (… (id 1)))`.
pub fn app_chain(n: usize) -> Term {
    let mut t = Term::int(1);
    for _ in 0..n {
        t = Term::app(Term::var("id"), t);
    }
    t
}

/// A FreezeML `let`-chain with freezing — stresses the environment and
/// generalisation machinery.
pub fn freeze_let_chain(n: usize) -> Term {
    let mut body = Term::app(Term::var("poly"), Term::frozen(format!("f{n}").as_str()));
    for i in (1..=n).rev() {
        let rhs = if i == 1 {
            Term::lam("x", Term::var("x"))
        } else {
            Term::lam(
                "x",
                Term::app(Term::var(format!("f{}", i - 1).as_str()), Term::var("x")),
            )
        };
        body = Term::let_(format!("f{i}").as_str(), rhs, body);
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_what_they_say() {
        assert_eq!(deep_arrow(0), Type::int());
        assert_eq!(deep_arrow(2).size(), 5);
        assert_eq!(deep_list(3).size(), 4);
        let q = quantified(3);
        assert_eq!(q.split_foralls().0.len(), 3);
    }

    #[test]
    fn bench_terms_typecheck() {
        let env = prelude();
        assert_eq!(infer_ok(&env, &app_chain(10)).to_string(), "Int");
        assert_eq!(
            infer_ok(&env, &freeze_let_chain(5)).to_string(),
            "Int * Bool"
        );
    }
}
