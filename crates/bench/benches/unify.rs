//! Bench: unification scaling (Figure 15's algorithm).
//!
//! Measures how `unify` scales in type depth, width, quantifier count, and
//! the kind-demotion path — the ingredients whose interplay distinguishes
//! FreezeML's unifier from plain first-order unification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezeml_bench::{deep_arrow, deep_list, quantified};
use freezeml_core::{unify, Kind, KindEnv, RefinedEnv, TyVar, Type};
use std::time::Duration;

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/deep-arrow");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for depth in [8usize, 32, 128, 512] {
        let l = deep_arrow(depth);
        let r = deep_arrow(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                unify(&KindEnv::new(), &RefinedEnv::new(), &l, &r).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_solving_variables(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/solve-chain");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    // a₁ → a₂ → … → Int against the same shape shifted by one: solves a
    // chain of n variables one at a time, composing substitutions.
    for n in [4usize, 16, 64] {
        let vars: Vec<TyVar> = (0..=n).map(|_| TyVar::fresh()).collect();
        let theta: RefinedEnv = vars.iter().map(|v| (*v, Kind::Poly)).collect();
        let left = vars[..n]
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        let right = vars[1..]
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                unify(&KindEnv::new(), &theta, &left, &right).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_quantifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/quantified");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    // ∀a₁…aₙ.… ≟ ∀b₁…bₙ.… — n skolemisations plus n rigid-variable checks.
    for n in [2usize, 8, 32] {
        let l = quantified(n);
        let r = quantified(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                unify(&KindEnv::new(), &RefinedEnv::new(), &l, &r).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_demotion(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/demotion");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    // A •-variable against a type containing n ⋆-variables: the demote
    // path must rewrite the whole refined environment.
    for n in [4usize, 16, 64] {
        let mono = TyVar::fresh();
        let polys: Vec<TyVar> = (0..n).map(|_| TyVar::fresh()).collect();
        let mut theta: RefinedEnv = polys.iter().map(|v| (*v, Kind::Poly)).collect();
        theta.insert(mono, Kind::Mono);
        let target = polys
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                unify(&KindEnv::new(), &theta, &Type::Var(mono), &target).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_deep_list_mismatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/failure-detection");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    // Failure at the bottom of a deep type: cost of walking before failing.
    for depth in [16usize, 128] {
        let l = deep_list(depth);
        let r = {
            let mut t = Type::bool();
            for _ in 0..depth {
                t = Type::list(t);
            }
            t
        };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                assert!(unify(&KindEnv::new(), &RefinedEnv::new(), &l, &r).is_err());
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_depth,
    bench_solving_variables,
    bench_quantifiers,
    bench_demotion,
    bench_deep_list_mismatch
);
criterion_main!(benches);
