//! Bench: end-to-end elaboration (parse → infer → evidence → System F
//! image) on both pipelines, over the well-typed Figure 1 corpus — the
//! new `elaborate` workload opened by the engine-native evidence path.
//!
//! `core` pays for inference *plus* a derivation tree plus the
//! substitution resolution pass; `uf` records evidence during solving
//! and materialises types once through the SchemeId-keyed embedding.
//! The `plus-oracle` rows add the `freezeml_systemf` typecheck the
//! differential harness runs on every image.

use criterion::{criterion_group, criterion_main, Criterion};
use freezeml_core::{parse_term, KindEnv, Options, Term, TypeEnv};
use freezeml_corpus::{runner, Expected, Mode, EXAMPLES};
use freezeml_systemf::typecheck;
use freezeml_translate::{elaborate_with, ElabEngine};
use std::time::Duration;

/// The standard-mode well-typed corpus rows, parsed, with their
/// environments.
fn corpus() -> Vec<(TypeEnv, Term)> {
    EXAMPLES
        .iter()
        .filter(|e| e.expected != Expected::Ill && e.mode == Mode::Standard)
        .map(|e| (runner::env_for(e), parse_term(e.src).unwrap()))
        .collect()
}

fn bench_elaborate_corpus(c: &mut Criterion) {
    let corpus = corpus();
    let opts = Options::default();
    let mut group = c.benchmark_group("elaborate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for (engine, tag) in [(ElabEngine::Core, "core"), (ElabEngine::Uf, "uf")] {
        group.bench_function(format!("figure1-corpus/{tag}"), |b| {
            b.iter(|| {
                for (env, term) in &corpus {
                    std::hint::black_box(elaborate_with(engine, env, term, &opts).unwrap());
                }
            });
        });
        group.bench_function(format!("figure1-corpus-plus-oracle/{tag}"), |b| {
            b.iter(|| {
                for (env, term) in &corpus {
                    let image = elaborate_with(engine, env, term, &opts).unwrap();
                    std::hint::black_box(typecheck(&KindEnv::new(), env, &image.term).unwrap());
                }
            });
        });
    }
    group.finish();
}

fn bench_elaborate_session(c: &mut Criterion) {
    // The serving shape: one engine session, a stream of terms — the
    // evidence path must amortise environment setup like plain
    // inference does.
    let env = freezeml_corpus::figure2();
    let terms: Vec<Term> = [
        "poly $(fun x -> x)",
        "let f = fun x -> x in poly ~f",
        "auto ~id",
        "(head ids)@ 3",
        "fun (x : forall a. a -> a) -> x ~x",
    ]
    .iter()
    .map(|s| parse_term(s).unwrap())
    .collect();
    let opts = Options::default();
    let mut group = c.benchmark_group("elaborate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    group.bench_function("session-stream/uf", |b| {
        let mut session = freezeml_engine::Session::new(&env, &opts).unwrap();
        b.iter(|| {
            for t in &terms {
                std::hint::black_box(session.elaborate(t).unwrap());
            }
        });
    });
    group.bench_function("session-stream/uf-infer-only", |b| {
        // Baseline: the same stream without evidence, so the evidence
        // overhead is directly readable from the report.
        let mut session = freezeml_engine::Session::new(&env, &opts).unwrap();
        b.iter(|| {
            for t in &terms {
                std::hint::black_box(session.infer(t).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_elaborate_corpus, bench_elaborate_session);
criterion_main!(benches);
