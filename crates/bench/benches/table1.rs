//! Bench: regenerate Table 1 — the computed FreezeML row (running every
//! admissible variant of the 32 base examples at all three annotation
//! budgets through the checker) and the plain-ML baseline row.

use criterion::{criterion_group, criterion_main, Criterion};
use freezeml_corpus::table1::{freezeml_row, full_table, hmf_approx_row, ml_row};
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("freezeml-row", |b| {
        b.iter(|| {
            let row = freezeml_row();
            assert_eq!(row.failures, [4, 2, 2]);
            std::hint::black_box(row)
        });
    });
    group.bench_function("ml-baseline-row", |b| {
        b.iter(|| std::hint::black_box(ml_row()));
    });
    group.bench_function("hmf-approx-row", |b| {
        b.iter(|| std::hint::black_box(hmf_approx_row()));
    });
    group.bench_function("full-table", |b| {
        b.iter(|| std::hint::black_box(full_table()));
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
