//! Bench: the paper-literal engine vs the union-find engine, side by
//! side, on the same workloads as `unify.rs` and `inference_scaling.rs`.
//!
//! Methodology (see `crates/shims/README.md`): each benchmark id is
//! `<workload>/<engine>/<n>` with `core` the Figure 15–16 transcription
//! and `uf` the union-find store. The union-find unification benches
//! intern the inputs once and roll the store's trail back after every
//! iteration, so each iteration unifies from identical unsolved state —
//! the mutable-state analogue of `core`'s persistent inputs. The
//! inference benches run each engine's full driver (well-scopedness,
//! environment formation, inference, zonk), so both sides pay their
//! whole pipeline. Numbers are recorded in `EXPERIMENTS.md`;
//! min-of-samples is the comparison figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezeml_bench::{app_chain, deep_arrow, deep_list, freeze_let_chain, prelude, quantified};
use freezeml_core::{Kind, KindEnv, Options, RefinedEnv, Term, TyVar, Type};
use freezeml_engine::Store;
use fxhash::FxHashMap;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

// ------------------------------------------------------------ unification

fn bench_unify_deep_arrow(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/deep-arrow");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for depth in [8usize, 32, 128, 512] {
        let l = deep_arrow(depth);
        let r = deep_arrow(depth);
        group.bench_with_input(BenchmarkId::new("core", depth), &depth, |b, _| {
            b.iter(|| unify_core(&RefinedEnv::new(), &l, &r).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("uf", depth), &depth, |b, _| {
            let mut s = Store::new();
            let lid = s.intern_type(&l);
            let rid = s.intern_type(&r);
            let mark = s.mark();
            b.iter(|| {
                freezeml_engine::unify(&mut s, lid, rid).unwrap();
                s.undo_to(mark);
            });
        });
    }
    group.finish();
}

fn bench_unify_solve_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/solve-chain");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for n in [4usize, 16, 64] {
        let vars: Vec<TyVar> = (0..=n).map(|_| TyVar::fresh()).collect();
        let theta: Vec<(TyVar, Kind)> = vars.iter().map(|v| (*v, Kind::Poly)).collect();
        let left = vars[..n]
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        let right = vars[1..]
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        let renv: RefinedEnv = theta.iter().cloned().collect();
        group.bench_with_input(BenchmarkId::new("core", n), &n, |b, _| {
            b.iter(|| unify_core(&renv, &left, &right).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |b, _| {
            let mut s = Store::new();
            let mut map = FxHashMap::default();
            for (v, k) in &theta {
                let (_, node) = s.fresh_var(*k);
                map.insert(*v, node);
            }
            let lid = s.intern_type_with(&left, &map);
            let rid = s.intern_type_with(&right, &map);
            let mark = s.mark();
            b.iter(|| {
                freezeml_engine::unify(&mut s, lid, rid).unwrap();
                s.undo_to(mark);
            });
        });
    }
    group.finish();
}

fn bench_unify_quantified(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/quantified");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for n in [2usize, 8, 32] {
        let l = quantified(n);
        let r = quantified(n);
        group.bench_with_input(BenchmarkId::new("core", n), &n, |b, _| {
            b.iter(|| unify_core(&RefinedEnv::new(), &l, &r).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |b, _| {
            // Interning freshens binders, so the two sides are distinct
            // ids and every iteration performs all n skolemisations.
            let mut s = Store::new();
            let lid = s.intern_type(&l);
            let rid = s.intern_type(&r);
            let mark = s.mark();
            b.iter(|| {
                freezeml_engine::unify(&mut s, lid, rid).unwrap();
                s.undo_to(mark);
            });
        });
    }
    group.finish();
}

fn bench_unify_demotion(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/demotion");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for n in [4usize, 16, 64] {
        let mono = TyVar::fresh();
        let polys: Vec<TyVar> = (0..n).map(|_| TyVar::fresh()).collect();
        let mut theta: Vec<(TyVar, Kind)> = polys.iter().map(|v| (*v, Kind::Poly)).collect();
        theta.push((mono, Kind::Mono));
        let target = polys
            .iter()
            .rev()
            .fold(Type::int(), |acc, v| Type::arrow(Type::Var(*v), acc));
        let lhs = Type::Var(mono);
        let renv: RefinedEnv = theta.iter().cloned().collect();
        group.bench_with_input(BenchmarkId::new("core", n), &n, |b, _| {
            b.iter(|| unify_core(&renv, &lhs, &target).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |b, _| {
            let mut s = Store::new();
            let mut map = FxHashMap::default();
            for (v, k) in &theta {
                let (_, node) = s.fresh_var(*k);
                map.insert(*v, node);
            }
            let lid = s.intern_type_with(&lhs, &map);
            let rid = s.intern_type_with(&target, &map);
            let mark = s.mark();
            b.iter(|| {
                freezeml_engine::unify(&mut s, lid, rid).unwrap();
                s.undo_to(mark);
            });
        });
    }
    group.finish();
}

fn bench_unify_failure_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("unify/failure-detection");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for depth in [16usize, 128] {
        let l = deep_list(depth);
        let r = {
            let mut t = Type::bool();
            for _ in 0..depth {
                t = Type::list(t);
            }
            t
        };
        group.bench_with_input(BenchmarkId::new("core", depth), &depth, |b, _| {
            b.iter(|| assert!(unify_core(&RefinedEnv::new(), &l, &r).is_err()));
        });
        group.bench_with_input(BenchmarkId::new("uf", depth), &depth, |b, _| {
            let mut s = Store::new();
            let lid = s.intern_type(&l);
            let rid = s.intern_type(&r);
            let mark = s.mark();
            b.iter(|| {
                assert!(freezeml_engine::unify(&mut s, lid, rid).is_err());
                s.undo_to(mark);
            });
        });
    }
    group.finish();
}

fn unify_core(
    theta: &RefinedEnv,
    a: &Type,
    b: &Type,
) -> Result<(RefinedEnv, freezeml_core::Subst), freezeml_core::TypeError> {
    freezeml_core::unify(&KindEnv::new(), theta, a, b)
}

// -------------------------------------------------------------- inference

fn bench_infer_pair(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    term_of: impl Fn(usize) -> Term,
) {
    let env = prelude();
    let opts = Options::default();
    let mut group = c.benchmark_group(group_name);
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for &n in sizes {
        let term = term_of(n);
        group.bench_with_input(BenchmarkId::new("core", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(freezeml_core::infer_term(&env, &term, &opts).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(freezeml_engine::infer_term(&env, &term, &opts).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_infer_app_chain(c: &mut Criterion) {
    bench_infer_pair(c, "infer/app-chain", &[8, 32, 128], app_chain);
}

fn bench_infer_let_chain(c: &mut Criterion) {
    bench_infer_pair(c, "infer/let-chain", &[4, 16, 64], |n| {
        freezeml_miniml::generator::let_chain(n).to_freezeml()
    });
}

fn bench_infer_pair_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("infer/pair-chain-exponential");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let env = prelude();
    let opts = Options::default();
    for n in [4usize, 8, 12] {
        let term = freezeml_miniml::generator::pair_chain(n).to_freezeml();
        group.bench_with_input(BenchmarkId::new("core", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(freezeml_core::infer_term(&env, &term, &opts).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("uf", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(freezeml_engine::infer_term(&env, &term, &opts).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_infer_freeze_chain(c: &mut Criterion) {
    bench_infer_pair(c, "infer/freeze-let-chain", &[4, 16, 64], freeze_let_chain);
}

fn bench_infer_random_batch(c: &mut Criterion) {
    let env = prelude();
    let opts = Options::default();
    let cfg = freezeml_miniml::generator::GenConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    let mut batch = Vec::new();
    while batch.len() < 100 {
        let t = freezeml_miniml::generator::random_term(&mut rng, &cfg);
        if freezeml_miniml::w_infer(&env, &t).is_ok() {
            batch.push(t.to_freezeml());
        }
    }
    let mut group = c.benchmark_group("infer/random-ml-batch");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("core", |b| {
        b.iter(|| {
            for t in &batch {
                std::hint::black_box(freezeml_core::infer_term(&env, t, &opts).unwrap());
            }
        });
    });
    group.bench_function("uf", |b| {
        b.iter(|| {
            for t in &batch {
                std::hint::black_box(freezeml_engine::infer_term(&env, t, &opts).unwrap());
            }
        });
    });
    // The serving shape: intern the prelude once, stream the batch
    // through one session (no per-term environment setup).
    group.bench_function("uf-session", |b| {
        b.iter(|| {
            let mut session = freezeml_engine::Session::new(&env, &opts).unwrap();
            for t in &batch {
                std::hint::black_box(session.infer(t).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_infer_corpus(c: &mut Criterion) {
    // The whole Figure 1 corpus, end to end, on each engine.
    let mut group = c.benchmark_group("infer/figure1-corpus");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let rows: Vec<(freezeml_core::TypeEnv, Term, Options)> = freezeml_corpus::EXAMPLES
        .iter()
        .map(|e| {
            (
                freezeml_corpus::runner::env_for(e),
                freezeml_core::parse_term(e.src).expect("corpus parses"),
                freezeml_corpus::runner::options_for(e),
            )
        })
        .collect();
    group.bench_function("core", |b| {
        b.iter(|| {
            for (env, term, opts) in &rows {
                std::hint::black_box(freezeml_core::infer_term(env, term, opts).ok());
            }
        });
    });
    group.bench_function("uf", |b| {
        b.iter(|| {
            for (env, term, opts) in &rows {
                std::hint::black_box(freezeml_engine::infer_term(env, term, opts).ok());
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unify_deep_arrow,
    bench_unify_solve_chain,
    bench_unify_quantified,
    bench_unify_demotion,
    bench_unify_failure_detection,
    bench_infer_app_chain,
    bench_infer_let_chain,
    bench_infer_pair_chain,
    bench_infer_freeze_chain,
    bench_infer_random_batch,
    bench_infer_corpus
);
criterion_main!(benches);
