//! Bench: the program-checking service — cold whole-program checks vs
//! warm single-binding edits, and worker-pool scaling.
//!
//! Workloads are deterministic generated programs
//! (`freezeml_service::load::GenProgram`) over the Figure 2 prelude.
//! Benchmark ids:
//!
//! * `service/cold/<n>` — open an `n`-binding program on a cold cache
//!   (every binding inferred);
//! * `service/warm-edit/<n>` — one binding edited in place, recheck —
//!   only the dirty dependency cone is re-inferred, the rest is served
//!   from the scheme cache (this is the ≥10× headline; see
//!   `EXPERIMENTS.md` for recorded numbers and the recheck-counter
//!   assertions in `crates/service/tests/throughput.rs`);
//! * `service/workers/<k>` — a socket server with `k` session threads
//!   under a fixed closed-loop client roster (`freezeml_service::load`'s
//!   `LoadMix`: concurrent clients driving an
//!   open/edit/check/type-of/elaborate mix with think time between round
//!   trips). Session threads overlap one client's think/IO time with
//!   another client's checking, so the `workers` curve bends down with
//!   `k` even on a single CPU — that latency overlap, not wave
//!   parallelism, is what the socket front end buys;
//! * `service/shed-overhead/4` — the `workers/4` roster re-run on the
//!   fully armed resilient stack: admission control checked on every
//!   accept, kernel read/write timeouts armed, the wall-clock deadline
//!   checked per request and wave. Compared against
//!   `service/workers/4`, the overload machinery may cost ≤2% when
//!   nothing is overloaded (EXPERIMENTS.md);
//! * `service/persisted-warm/<n>` — open the same `n`-binding program
//!   in a *fresh process image*: a new hub warmed only from an on-disk
//!   snapshot (`freezeml_service::persist`), so every verdict, every
//!   rendered scheme, and the whole-document report come off the
//!   restored cache — zero bindings rechecked, zero waves scheduled
//!   (the persistent-warm-start headline vs `service/cold/<n>`);
//! * `service/persisted-load/<n>` — the snapshot restore itself: fresh
//!   hub + `persist::load` (decode, structural re-interning into the
//!   scheme bank, cache population) — the one-off cost a warm start
//!   pays at process birth;
//! * `service/trace-overhead/<off|on>` — the `workers/4` roster re-run
//!   on the instrumented stack: `off` with the tracer explicitly
//!   disabled (the monomorphised no-trace path — the row the ≤5%
//!   overhead budget in EXPERIMENTS.md is checked against
//!   `service/workers/4`), `on` with a JSONL sink wired to a temp file
//!   (the full flight-recorder cost, spans flushed per record).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezeml_core::Options;
use freezeml_service::{
    load::{drive_tcp, LoadMix},
    persist, EngineSel, GenProgram, PersistConfig, ServeOptions, Service, ServiceConfig, Shared,
    SocketServer,
};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x5EED;

fn service(workers: usize) -> Service {
    Service::new(ServiceConfig {
        opts: Options::default(),
        engine: EngineSel::Uf,
        workers,
    })
}

fn bench_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/cold");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [30usize, 120, 480] {
        let text = GenProgram::generate(n, SEED).text();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // A fresh service per iteration: genuinely cold cache.
                let mut svc = service(1);
                let r = svc.open("bench", &text).expect("generated program parses");
                assert!(r.all_typed());
                r.rechecked
            });
        });
    }
    group.finish();
}

fn bench_warm_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/warm-edit");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [30usize, 120, 480] {
        let gen = GenProgram::generate(n, SEED);
        let original = gen.text();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut svc = service(1);
            svc.open("bench", &original).expect("parses");
            // A fresh salt each iteration keeps the edited binding's key
            // out of the cache, so every timed edit is a genuine edit
            // (rendering the new text is part of the measured op, as it
            // would be for a real client).
            let mut salt = 0u64;
            b.iter(|| {
                salt += 1;
                let next = gen.edited_text(n / 2, salt);
                let r = svc.edit("bench", &next).expect("parses");
                assert!(r.rechecked > 0, "the edit must dirty something");
                r.rechecked
            });
        });
    }
    group.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/workers");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    // Fresh edit salts every iteration keep the edited cones missing
    // the shared outcome cache (steady-state serving, not pure replay).
    let mut round = 0u64;
    for k in [1usize, 2, 4] {
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            ServiceConfig {
                opts: Options::default(),
                engine: EngineSel::Uf,
                workers: 1,
            },
            Arc::new(Shared::new()),
            k,
            ServeOptions::default(),
        )
        .expect("bind an ephemeral port");
        let addr = server.local_addr().to_string();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                round += 1;
                drive_tcp(
                    &addr,
                    &LoadMix {
                        salt_base: round * 100_000,
                        ..LoadMix::default()
                    },
                )
            });
        });
        server.shutdown();
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    use freezeml_obs::Tracer;
    let mut group = c.benchmark_group("service/trace-overhead");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    let trace_dir =
        std::env::temp_dir().join(format!("freezeml-bench-trace-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&trace_dir);
    let mut round = 0u64;
    for mode in ["off", "on"] {
        let shared = Arc::new(Shared::new());
        let tracer = if mode == "on" {
            Tracer::to_file(&trace_dir.join("trace.jsonl")).expect("temp trace file")
        } else {
            Tracer::off()
        };
        assert!(shared.set_tracer(tracer), "fresh hub accepts a tracer");
        let mut server = SocketServer::spawn_tcp(
            "127.0.0.1:0",
            ServiceConfig {
                opts: Options::default(),
                engine: EngineSel::Uf,
                workers: 1,
            },
            shared,
            4,
            ServeOptions::default(),
        )
        .expect("bind an ephemeral port");
        let addr = server.local_addr().to_string();
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, _| {
            b.iter(|| {
                round += 1;
                drive_tcp(
                    &addr,
                    &LoadMix {
                        salt_base: round * 100_000,
                        ..LoadMix::default()
                    },
                )
            });
        });
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&trace_dir);
    group.finish();
}

fn bench_shed_overhead(c: &mut Criterion) {
    use freezeml_service::sock::Admission;
    let mut group = c.benchmark_group("service/shed-overhead");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    // The `workers/4` roster on the fully armed resilient stack:
    // admission control live on every accept (the queue is deep enough
    // that nothing in this roster is actually shed — this measures the
    // fast path), kernel read/write timeouts armed, and the wall-clock
    // deadline checked at every request and wave boundary. The
    // EXPERIMENTS.md budget compares this row against
    // `service/workers/4`: the overload machinery may cost at most 2%
    // when nothing is overloaded.
    let mut round = 0u64;
    let mut server = SocketServer::spawn_tcp_with(
        "127.0.0.1:0",
        ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 1,
        },
        Arc::new(Shared::new()),
        4,
        ServeOptions {
            request_timeout_ms: Some(10_000),
            ..ServeOptions::default()
        },
        Admission::default(),
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr().to_string();
    group.bench_with_input(BenchmarkId::from_parameter(4), &4, |b, _| {
        b.iter(|| {
            round += 1;
            drive_tcp(
                &addr,
                &LoadMix {
                    salt_base: round * 100_000,
                    ..LoadMix::default()
                },
            )
        });
    });
    server.shutdown();
    group.finish();
}

/// Write a snapshot of a service warmed on `text`, returning the cache
/// directory (caller removes it).
fn seeded_cache(text: &str, n: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("freezeml-bench-cache-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut warm = service(1);
    warm.attach_cache(PersistConfig::new(&dir));
    let r = warm.open("bench", text).expect("generated program parses");
    assert!(r.all_typed());
    warm.save_cache()
        .expect("cache attached")
        .expect("snapshot writes");
    dir
}

fn bench_persisted_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/persisted-warm");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [120usize, 480] {
        let text = GenProgram::generate(n, SEED).text();
        let dir = seeded_cache(&text, n);
        // The restart: a hub that has never checked anything, warmed
        // purely from the snapshot file.
        let shared = Arc::new(Shared::new());
        let out = persist::load(
            &shared,
            persist::epoch(&Options::default()),
            &PersistConfig::new(&dir),
        );
        assert!(out.loaded, "snapshot must load: {:?}", out.warning);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                // A fresh session against the restored hub: the open is
                // served entirely from persisted state.
                let mut svc = Service::with_shared(
                    ServiceConfig {
                        opts: Options::default(),
                        engine: EngineSel::Uf,
                        workers: 1,
                    },
                    Arc::clone(&shared),
                );
                let r = svc.open("bench", &text).expect("parses");
                assert_eq!(r.rechecked, 0, "persisted warm start must not recheck");
                r.reused
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_persisted_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/persisted-load");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    let n = 480usize;
    let text = GenProgram::generate(n, SEED).text();
    let dir = seeded_cache(&text, n);
    let epoch = persist::epoch(&Options::default());
    let cfg = PersistConfig::new(&dir);
    group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
        b.iter(|| {
            let shared = Shared::new();
            let out = persist::load(&shared, epoch, &cfg);
            assert!(out.loaded);
            out.entries
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm_edit,
    bench_worker_scaling,
    bench_shed_overhead,
    bench_trace_overhead,
    bench_persisted_warm,
    bench_persisted_load,
);
criterion_main!(benches);
