//! Bench: the §4 translations — `C⟦−⟧` elaboration over the corpus,
//! `E⟦−⟧` back-translation, full round trips, and evaluation of the
//! translated images.

use criterion::{criterion_group, criterion_main, Criterion};
use freezeml_core::{infer_term, parse_term, KindEnv, Options};
use freezeml_corpus::{runner, Expected, Mode, EXAMPLES};
use freezeml_systemf::{eval, prelude::runtime_env, typecheck};
use freezeml_translate::{elaborate, f_to_freeze};
use std::time::Duration;

fn well_typed_examples() -> Vec<&'static freezeml_corpus::Example> {
    EXAMPLES
        .iter()
        .filter(|e| e.expected != Expected::Ill && e.mode == Mode::Standard)
        .collect()
}

fn bench_c_translation(c: &mut Criterion) {
    let examples = well_typed_examples();
    // Pre-infer the derivations so we measure translation alone.
    let derivations: Vec<_> = examples
        .iter()
        .map(|e| {
            let env = runner::env_for(e);
            let term = parse_term(e.src).unwrap();
            let out = infer_term(&env, &term, &Options::default()).unwrap();
            (env, out)
        })
        .collect();
    let mut group = c.benchmark_group("translate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    group.bench_function("c-translation-corpus", |b| {
        b.iter(|| {
            for (_, out) in &derivations {
                std::hint::black_box(elaborate(out));
            }
        });
    });
    group.bench_function("c-translation-plus-f-typecheck", |b| {
        b.iter(|| {
            for (env, out) in &derivations {
                let e = elaborate(out);
                std::hint::black_box(typecheck(&KindEnv::new(), env, &e.term).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let examples = well_typed_examples();
    let mut group = c.benchmark_group("translate");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("full-round-trip-corpus", |b| {
        b.iter(|| {
            for e in &examples {
                let env = runner::env_for(e);
                let term = parse_term(e.src).unwrap();
                let out = infer_term(&env, &term, &Options::default()).unwrap();
                let elab = elaborate(&out);
                let back = f_to_freeze(&KindEnv::new(), &env, &elab.term).unwrap();
                std::hint::black_box(infer_term(&env, &back, &Options::default()).unwrap());
            }
        });
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    // Ground-typed examples, elaborated once; measure evaluation.
    let ground = ["A10⋆", "A11⋆", "D1⋆", "D3⋆", "F7⋆", "F9"];
    let images: Vec<_> = ground
        .iter()
        .map(|id| {
            let e = freezeml_corpus::figure1::by_id(id).unwrap();
            let env = runner::env_for(e);
            let term = parse_term(e.src).unwrap();
            let out = infer_term(&env, &term, &Options::default()).unwrap();
            elaborate(&out).term
        })
        .collect();
    let renv = runtime_env();
    let mut group = c.benchmark_group("translate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    group.bench_function("evaluate-translated-images", |b| {
        b.iter(|| {
            for f in &images {
                std::hint::black_box(eval(&renv, f).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_c_translation,
    bench_round_trip,
    bench_evaluation
);
criterion_main!(benches);
