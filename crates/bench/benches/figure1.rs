//! Bench: regenerate Figure 1 — time type inference over the paper's
//! example corpus, per section and end-to-end (parse + well-scope + infer
//! + compare).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezeml_core::{infer_program, parse_term, Options};
use freezeml_corpus::{figure1, runner, EXAMPLES};
use std::time::Duration;

fn bench_sections(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/section");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for section in ['A', 'B', 'C', 'D', 'E', 'F'] {
        let examples: Vec<_> = figure1::section(section).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(section),
            &examples,
            |b, examples| {
                b.iter(|| {
                    for e in examples {
                        let env = runner::env_for(e);
                        let opts = runner::options_for(e);
                        let _ = std::hint::black_box(infer_program(&env, e.src, &opts));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_whole_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(30);
    group.bench_function("full-table-regeneration", |b| {
        b.iter(|| {
            let results = freezeml_corpus::run_all();
            assert!(results.iter().all(|r| r.pass));
            std::hint::black_box(results)
        });
    });
    // Parsing alone, to separate front-end from inference cost.
    group.bench_function("parse-only", |b| {
        b.iter(|| {
            for e in EXAMPLES {
                let _ = std::hint::black_box(parse_term(e.src).unwrap());
            }
        });
    });
    // The most involved single examples.
    for id in ["E2⋆", "F9", "A12⋆", "C10"] {
        let e = figure1::by_id(id).unwrap();
        let env = runner::env_for(e);
        group.bench_with_input(BenchmarkId::new("single", id), &e.src, |b, src| {
            b.iter(|| std::hint::black_box(infer_program(&env, src, &Options::default())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sections, bench_whole_corpus);
criterion_main!(benches);
