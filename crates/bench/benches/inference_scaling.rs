//! Bench: inference scaling and the W-vs-FreezeML ablation.
//!
//! FreezeML's algorithm is Algorithm W plus kind bookkeeping, so on the ML
//! fragment the two should scale the same shape (conservativity, Theorem
//! 1); the FreezeML-only features (freezing, generalisation chains) are
//! measured separately. The classic exponential `pair` chain is included
//! to confirm the well-known W worst case survives intact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezeml_bench::{app_chain, freeze_let_chain, infer_ok, prelude};
use freezeml_core::Options;
use freezeml_miniml::generator::{let_chain, pair_chain, random_term, GenConfig};
use freezeml_miniml::w_infer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_app_chains(c: &mut Criterion) {
    let env = prelude();
    let mut group = c.benchmark_group("infer/app-chain");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [8usize, 32, 128] {
        let term = app_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(infer_ok(&env, &term)));
        });
    }
    group.finish();
}

fn bench_let_chains_w_vs_freezeml(c: &mut Criterion) {
    let env = prelude();
    let mut group = c.benchmark_group("infer/let-chain");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [4usize, 16, 64] {
        let ml = let_chain(n);
        let fz = ml.to_freezeml();
        group.bench_with_input(BenchmarkId::new("algorithm-w", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(w_infer(&env, &ml).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("freezeml", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    freezeml_core::infer_term(&env, &fz, &Options::default()).unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_pair_chain_exponential(c: &mut Criterion) {
    let env = prelude();
    let mut group = c.benchmark_group("infer/pair-chain-exponential");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [4usize, 8, 12] {
        let ml = pair_chain(n);
        let fz = ml.to_freezeml();
        group.bench_with_input(BenchmarkId::new("algorithm-w", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(w_infer(&env, &ml).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("freezeml", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    freezeml_core::infer_term(&env, &fz, &Options::default()).unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_freeze_chains(c: &mut Criterion) {
    let env = prelude();
    let mut group = c.benchmark_group("infer/freeze-let-chain");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for n in [4usize, 16, 64] {
        let term = freeze_let_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(infer_ok(&env, &term)));
        });
    }
    group.finish();
}

fn bench_random_corpus(c: &mut Criterion) {
    let env = prelude();
    let cfg = GenConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    // Pre-generate a fixed batch of W-typeable terms.
    let mut batch = Vec::new();
    while batch.len() < 100 {
        let t = random_term(&mut rng, &cfg);
        if w_infer(&env, &t).is_ok() {
            batch.push(t);
        }
    }
    let mut group = c.benchmark_group("infer/random-ml-batch");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    group.bench_function("algorithm-w", |b| {
        b.iter(|| {
            for t in &batch {
                std::hint::black_box(w_infer(&env, t).unwrap());
            }
        });
    });
    group.bench_function("freezeml", |b| {
        let embedded: Vec<_> = batch.iter().map(|t| t.to_freezeml()).collect();
        b.iter(|| {
            for t in &embedded {
                std::hint::black_box(
                    freezeml_core::infer_term(&env, t, &Options::default()).unwrap(),
                );
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_app_chains,
    bench_let_chains_w_vs_freezeml,
    bench_pair_chain_exponential,
    bench_freeze_chains,
    bench_random_corpus
);
criterion_main!(benches);
