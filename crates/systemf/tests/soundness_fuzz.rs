//! Type-soundness fuzzing for pure System F: generate random *well-typed*
//! terms by construction, then check preservation and progress along every
//! reduction path, and agreement between the small-step and big-step
//! semantics.

use freezeml_core::{KindEnv, Type, TypeEnv, Var};
use freezeml_systemf::smallstep::{normalize, step, Outcome};
use freezeml_systemf::{eval, typecheck, Env, FTerm, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random closed, well-typed term of a random type, by
/// construction: pick a goal type, then build a term of that type.
fn gen_term<R: Rng>(rng: &mut R, goal: &Type, scope: &[(Var, Type)], depth: usize) -> FTerm {
    // Try a variable of the right type.
    if depth == 0 || rng.gen_bool(0.3) {
        let candidates: Vec<&(Var, Type)> =
            scope.iter().filter(|(_, t)| t.alpha_eq(goal)).collect();
        if let Some((x, _)) = candidates.first() {
            return FTerm::Var(*x);
        }
    }
    match goal {
        Type::Var(_) => {
            // Only reachable under a binder of this type: use the scope.
            let (x, _) = scope
                .iter()
                .find(|(_, t)| t.alpha_eq(goal))
                .expect("variable-typed goal must have a witness in scope");
            FTerm::Var(*x)
        }
        Type::Con(freezeml_core::TyCon::Int, _) => {
            if depth > 0 && rng.gen_bool(0.5) {
                // (λx:Int.x) n — a redex of type Int.
                let inner = gen_term(rng, goal, scope, depth - 1);
                FTerm::app(FTerm::lam("x", Type::int(), FTerm::var("x")), inner)
            } else {
                FTerm::int(rng.gen_range(0..100))
            }
        }
        Type::Con(freezeml_core::TyCon::Bool, _) => FTerm::bool(rng.gen_bool(0.5)),
        Type::Con(freezeml_core::TyCon::Arrow, args) => {
            let x = Var::named(format!("x{}", scope.len()));
            let mut scope2 = scope.to_vec();
            scope2.push((x, args[0].clone()));
            let body = gen_term(rng, &args[1], &scope2, depth.saturating_sub(1));
            FTerm::lam(x, args[0].clone(), body)
        }
        Type::Forall(a, body) => {
            // Λa. V — body must be a value; generate one (lambdas and
            // variables are values; Int redexes are not, so restrict).
            let inner = gen_value(rng, body, scope, depth.saturating_sub(1), a);
            FTerm::tylam(*a, inner)
        }
        // Fall back for other constructors: not generated.
        other => panic!("generator does not target {other}"),
    }
}

/// Generate a syntactic *value* of the goal type (for Λ bodies).
fn gen_value<R: Rng>(
    rng: &mut R,
    goal: &Type,
    scope: &[(Var, Type)],
    depth: usize,
    _bound: &freezeml_core::TyVar,
) -> FTerm {
    match goal {
        Type::Con(freezeml_core::TyCon::Arrow, args) => {
            let x = Var::named(format!("x{}", scope.len()));
            let mut scope2 = scope.to_vec();
            scope2.push((x, args[0].clone()));
            let body = gen_term(rng, &args[1], &scope2, depth);
            FTerm::lam(x, args[0].clone(), body)
        }
        Type::Forall(a, body) => {
            let inner = gen_value(rng, body, scope, depth, a);
            FTerm::tylam(*a, inner)
        }
        Type::Con(freezeml_core::TyCon::Int, _) => FTerm::int(rng.gen_range(0..100)),
        Type::Con(freezeml_core::TyCon::Bool, _) => FTerm::bool(true),
        Type::Var(a) => {
            // A value of variable type: must come from scope.
            scope
                .iter()
                .find(|(_, t)| matches!(t, Type::Var(b) if b == a))
                .map(|(x, _)| FTerm::Var(*x))
                .unwrap_or(FTerm::int(0)) // unreachable for our goals
        }
        other => panic!("generator does not target value type {other}"),
    }
}

/// Random goal types: arrows/foralls over Int/Bool.
fn gen_goal<R: Rng>(rng: &mut R, depth: usize) -> Type {
    if depth == 0 {
        return if rng.gen_bool(0.7) {
            Type::int()
        } else {
            Type::bool()
        };
    }
    match rng.gen_range(0..4) {
        0 => Type::int(),
        1 | 2 => Type::arrow(gen_goal(rng, depth - 1), gen_goal(rng, depth - 1)),
        _ => {
            let a = freezeml_core::TyVar::named(format!("g{depth}"));
            Type::Forall(a, Box::new(Type::arrow(Type::Var(a), Type::Var(a))))
        }
    }
}

#[test]
fn generated_terms_are_well_typed_by_construction() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for i in 0..500 {
        let goal = gen_goal(&mut rng, 3);
        let term = gen_term(&mut rng, &goal, &[], 3);
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &term)
            .unwrap_or_else(|e| panic!("sample #{i} `{term}` : {e}"));
        assert!(ty.alpha_eq(&goal), "#{i}: wanted {goal}, got {ty}");
    }
}

#[test]
fn preservation_along_every_reduction() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for i in 0..300 {
        let goal = gen_goal(&mut rng, 3);
        let mut term = gen_term(&mut rng, &goal, &[], 3);
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &term).unwrap();
        for _ in 0..200 {
            match step(&term) {
                Some(next) => {
                    let ty2 = typecheck(&KindEnv::new(), &TypeEnv::new(), &next)
                        .unwrap_or_else(|e| panic!("#{i}: step broke typing: {e}\n  {next}"));
                    assert!(ty2.alpha_eq(&ty), "#{i}: {ty} became {ty2}");
                    term = next;
                }
                None => break,
            }
        }
    }
}

#[test]
fn progress_never_gets_stuck() {
    let mut rng = StdRng::seed_from_u64(0xBEEF2);
    for i in 0..300 {
        let goal = gen_goal(&mut rng, 3);
        let term = gen_term(&mut rng, &goal, &[], 3);
        match normalize(&term, 10_000) {
            Outcome::Value(_) => {}
            other => panic!("#{i} `{term}`: {other:?}"),
        }
    }
}

#[test]
fn smallstep_agrees_with_bigstep_on_ints() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let mut compared = 0usize;
    for _ in 0..500 {
        let term = gen_term(&mut rng, &Type::int(), &[], 3);
        let small = match normalize(&term, 10_000) {
            Outcome::Value(v) => v,
            other => panic!("{other:?}"),
        };
        let big = eval(&Env::new(), &term).unwrap();
        if let (FTerm::Lit(freezeml_core::Lit::Int(a)), Value::Int(b)) = (&small, &big) {
            assert_eq!(a, b, "{term}");
            compared += 1;
        }
    }
    assert!(compared > 400, "only {compared} Int comparisons");
}
