//! Administrative β-reduction (the Theorem 3 repair).
//!
//! The Figure 11 translation renders FreezeML `let` as a β-redex
//! `(λx^A.N) M`; when a generalising `let`'s right-hand side is itself a
//! `let`-value, the image violates the value restriction (`Λ` over an
//! application). [`admin_reduce`] reduces those redexes away wherever the
//! argument is already a syntactic value — plain β-steps of Figure 19,
//! type- and semantics-preserving — restoring the value form the
//! theorem's proof assumes. Both elaboration pipelines (the derivation
//! translation in `freezeml_translate` and the union-find engine's
//! native evidence) finish with this pass.

use crate::term::FTerm;

/// Reduce `(λx^A.N) V` to `N[V/x]` wherever `V` is a syntactic value, and
/// `(Λa.V) A` to `V[A/a]`, bottom-up. Both are β-steps of Figure 19 and
/// therefore type- and semantics-preserving. Terminates because each step
/// removes one application node and values contain no redexes at their
/// own top level.
pub fn admin_reduce(t: &FTerm) -> FTerm {
    match t {
        FTerm::Var(_) | FTerm::Lit(_) => t.clone(),
        FTerm::Lam(x, a, b) => FTerm::Lam(*x, a.clone(), Box::new(admin_reduce(b))),
        FTerm::TyLam(a, b) => FTerm::TyLam(*a, Box::new(admin_reduce(b))),
        FTerm::TyApp(m, ty) => {
            let m = admin_reduce(m);
            if let FTerm::TyLam(a, v) = &m {
                return admin_reduce(&v.subst_ty(a, ty));
            }
            FTerm::TyApp(Box::new(m), ty.clone())
        }
        FTerm::App(f, arg) => {
            let f = admin_reduce(f);
            let arg = admin_reduce(arg);
            if let FTerm::Lam(x, _, body) = &f {
                if arg.is_value() {
                    return admin_reduce(&body.subst_var(x, &arg));
                }
            }
            FTerm::app(f, arg)
        }
    }
}
