//! System F terms (Figure 17):
//!
//! ```text
//! M, N ::= x | λx^A.M | M N | Λa.V | M A
//! V, W ::= I | λx^A.M | Λa.V          (values)
//! I    ::= x | I A                    (instantiations)
//! ```
//!
//! plus literals. `let x^A = M in N` is sugar for `(λx^A.N) M`; n-ary
//! `Λā.V` and `M Ā` are provided as folds.

use freezeml_core::{Lit, TyVar, Type, Var};
use std::fmt;

/// A System F term.
#[derive(Clone, Debug, PartialEq)]
pub enum FTerm {
    /// A variable.
    Var(Var),
    /// `λx^A.M` — term abstraction with annotated parameter.
    Lam(Var, Type, Box<FTerm>),
    /// Term application.
    App(Box<FTerm>, Box<FTerm>),
    /// `Λa.V` — type abstraction (body must be a value; checked by typing).
    TyLam(TyVar, Box<FTerm>),
    /// `M A` — type application.
    TyApp(Box<FTerm>, Type),
    /// A literal constant.
    Lit(Lit),
}

impl FTerm {
    /// The variable `x`.
    pub fn var(x: impl Into<Var>) -> FTerm {
        FTerm::Var(x.into())
    }

    /// `λx^A.M`.
    pub fn lam(x: impl Into<Var>, ty: Type, body: FTerm) -> FTerm {
        FTerm::Lam(x.into(), ty, Box::new(body))
    }

    /// `M N`.
    pub fn app(f: FTerm, a: FTerm) -> FTerm {
        FTerm::App(Box::new(f), Box::new(a))
    }

    /// `M N₁ … Nₙ`.
    pub fn apps<I: IntoIterator<Item = FTerm>>(f: FTerm, args: I) -> FTerm {
        args.into_iter().fold(f, FTerm::app)
    }

    /// `Λa.M`.
    pub fn tylam(a: impl Into<TyVar>, body: FTerm) -> FTerm {
        FTerm::TyLam(a.into(), Box::new(body))
    }

    /// `Λa₁.…Λaₙ.M`.
    pub fn tylams<I>(vars: I, body: FTerm) -> FTerm
    where
        I: IntoIterator<Item = TyVar>,
        I::IntoIter: DoubleEndedIterator,
    {
        vars.into_iter()
            .rev()
            .fold(body, |acc, a| FTerm::TyLam(a, Box::new(acc)))
    }

    /// `M A`.
    pub fn tyapp(m: FTerm, ty: Type) -> FTerm {
        FTerm::TyApp(Box::new(m), ty)
    }

    /// `M A₁ … Aₙ`.
    pub fn tyapps<I: IntoIterator<Item = Type>>(m: FTerm, tys: I) -> FTerm {
        tys.into_iter().fold(m, FTerm::tyapp)
    }

    /// `let x^A = M in N ≡ (λx^A.N) M` (paper Appendix B.1).
    pub fn let_(x: impl Into<Var>, ty: Type, rhs: FTerm, body: FTerm) -> FTerm {
        FTerm::app(FTerm::lam(x, ty, body), rhs)
    }

    /// An integer literal.
    pub fn int(n: i64) -> FTerm {
        FTerm::Lit(Lit::Int(n))
    }

    /// A boolean literal.
    pub fn bool(b: bool) -> FTerm {
        FTerm::Lit(Lit::Bool(b))
    }

    /// Is this an *instantiation* `I ::= x | I A`?
    pub fn is_instantiation(&self) -> bool {
        match self {
            FTerm::Var(_) => true,
            FTerm::TyApp(m, _) => m.is_instantiation(),
            _ => false,
        }
    }

    /// Is this a syntactic value `V ::= I | λx^A.M | Λa.V` (plus literals)?
    pub fn is_value(&self) -> bool {
        match self {
            FTerm::Lam(_, _, _) | FTerm::Lit(_) => true,
            FTerm::TyLam(_, v) => v.is_value(),
            _ => self.is_instantiation(),
        }
    }

    /// Apply a function to every type annotation in the term (used to
    /// resolve substitutions after elaboration).
    pub fn map_types(&self, f: &mut impl FnMut(&Type) -> Type) -> FTerm {
        match self {
            FTerm::Var(_) | FTerm::Lit(_) => self.clone(),
            FTerm::Lam(x, t, b) => FTerm::Lam(*x, f(t), Box::new(b.map_types(f))),
            FTerm::App(m, n) => FTerm::App(Box::new(m.map_types(f)), Box::new(n.map_types(f))),
            FTerm::TyLam(a, b) => FTerm::TyLam(*a, Box::new(b.map_types(f))),
            FTerm::TyApp(m, t) => FTerm::TyApp(Box::new(m.map_types(f)), f(t)),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            FTerm::Var(_) | FTerm::Lit(_) => 1,
            FTerm::Lam(_, _, b) | FTerm::TyLam(_, b) | FTerm::TyApp(b, _) => 1 + b.size(),
            FTerm::App(m, n) => 1 + m.size() + n.size(),
        }
    }

    /// Is `x` free in this term?
    pub fn free_in(&self, x: &Var) -> bool {
        match self {
            FTerm::Var(y) => y == x,
            FTerm::Lit(_) => false,
            FTerm::Lam(y, _, b) => y != x && b.free_in(x),
            FTerm::App(f, a) => f.free_in(x) || a.free_in(x),
            FTerm::TyLam(_, b) => b.free_in(x),
            FTerm::TyApp(m, _) => m.free_in(x),
        }
    }

    /// Capture-avoiding term substitution `self[v/x]` (for the β-rule of
    /// Figure 19).
    pub fn subst_var(&self, x: &Var, v: &FTerm) -> FTerm {
        match self {
            FTerm::Var(y) => {
                if y == x {
                    v.clone()
                } else {
                    self.clone()
                }
            }
            FTerm::Lit(_) => self.clone(),
            FTerm::Lam(y, a, b) => {
                if y == x {
                    self.clone()
                } else if v.free_in(y) {
                    let fresh = Var::fresh();
                    let renamed = b.subst_var(y, &FTerm::Var(fresh));
                    FTerm::Lam(fresh, a.clone(), Box::new(renamed.subst_var(x, v)))
                } else {
                    FTerm::Lam(*y, a.clone(), Box::new(b.subst_var(x, v)))
                }
            }
            FTerm::App(f, a) => FTerm::app(f.subst_var(x, v), a.subst_var(x, v)),
            FTerm::TyLam(a, b) => FTerm::TyLam(*a, Box::new(b.subst_var(x, v))),
            FTerm::TyApp(m, ty) => FTerm::TyApp(Box::new(m.subst_var(x, v)), ty.clone()),
        }
    }

    /// Type substitution `self[A/a]` throughout annotations, respecting
    /// term-level `Λ` shadowing (for the type-β rule `(Λa.V) A ≃ V[A/a]`).
    pub fn subst_ty(&self, a: &TyVar, ty: &Type) -> FTerm {
        match self {
            FTerm::Var(_) | FTerm::Lit(_) => self.clone(),
            FTerm::Lam(x, ann, b) => {
                FTerm::Lam(*x, ann.rename_free(a, ty), Box::new(b.subst_ty(a, ty)))
            }
            FTerm::App(m, n) => FTerm::app(m.subst_ty(a, ty), n.subst_ty(a, ty)),
            FTerm::TyLam(b, v) => {
                if b == a {
                    self.clone() // shadowed
                } else {
                    FTerm::TyLam(*b, Box::new(v.subst_ty(a, ty)))
                }
            }
            FTerm::TyApp(m, t2) => FTerm::TyApp(Box::new(m.subst_ty(a, ty)), t2.rename_free(a, ty)),
        }
    }
}

impl fmt::Display for FTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_f(self, 0, f)
    }
}

/// Precedence: 0 open, 1 application operand (head), 2 atom.
fn fmt_f(t: &FTerm, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match t {
        FTerm::Var(x) => write!(f, "{x}"),
        FTerm::Lit(l) => write!(f, "{l}"),
        FTerm::Lam(x, ty, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "fun ({x} : {ty}) -> ")?;
            fmt_f(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        FTerm::TyLam(a, body) => {
            if prec > 0 {
                write!(f, "(")?;
            }
            write!(f, "tyfun {a} -> ")?;
            fmt_f(body, 0, f)?;
            if prec > 0 {
                write!(f, ")")?;
            }
            Ok(())
        }
        FTerm::App(m, n) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_f(m, 1, f)?;
            write!(f, " ")?;
            fmt_f(n, 2, f)?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
        FTerm::TyApp(m, ty) => {
            if prec > 1 {
                write!(f, "(")?;
            }
            fmt_f(m, 1, f)?;
            write!(f, " [{ty}]")?;
            if prec > 1 {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_classification() {
        let x = FTerm::var("x");
        assert!(x.is_value() && x.is_instantiation());
        let inst = FTerm::tyapp(FTerm::var("x"), Type::int());
        assert!(inst.is_value() && inst.is_instantiation());
        let lam = FTerm::lam("x", Type::int(), FTerm::var("x"));
        assert!(lam.is_value() && !lam.is_instantiation());
        let tylam_val = FTerm::tylam("a", FTerm::var("x"));
        assert!(tylam_val.is_value());
        // Λa.(f x) is NOT a value — the value restriction will reject it.
        let tylam_app = FTerm::tylam("a", FTerm::app(FTerm::var("f"), FTerm::var("x")));
        assert!(!tylam_app.is_value());
        let app = FTerm::app(FTerm::var("f"), FTerm::var("x"));
        assert!(!app.is_value());
    }

    #[test]
    fn let_is_sugar() {
        let t = FTerm::let_("x", Type::int(), FTerm::int(1), FTerm::var("x"));
        assert_eq!(
            t,
            FTerm::app(FTerm::lam("x", Type::int(), FTerm::var("x")), FTerm::int(1))
        );
    }

    #[test]
    fn tylams_and_tyapps_fold() {
        let t = FTerm::tylams([TyVar::named("a"), TyVar::named("b")], FTerm::var("x"));
        assert_eq!(t, FTerm::tylam("a", FTerm::tylam("b", FTerm::var("x"))));
        let u = FTerm::tyapps(FTerm::var("x"), [Type::int(), Type::bool()]);
        assert_eq!(
            u,
            FTerm::tyapp(FTerm::tyapp(FTerm::var("x"), Type::int()), Type::bool())
        );
    }

    #[test]
    fn display_forms() {
        let id = FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")));
        assert_eq!(id.to_string(), "tyfun a -> fun (x : a) -> x");
        let app = FTerm::app(FTerm::tyapp(FTerm::var("f"), Type::int()), FTerm::int(3));
        assert_eq!(app.to_string(), "f [Int] 3");
    }

    #[test]
    fn map_types_reaches_annotations() {
        let t = FTerm::lam(
            "x",
            Type::var("a"),
            FTerm::tyapp(FTerm::var("x"), Type::var("a")),
        );
        let u = t.map_types(&mut |ty| {
            if ty == &Type::var("a") {
                Type::int()
            } else {
                ty.clone()
            }
        });
        assert_eq!(
            u,
            FTerm::lam("x", Type::int(), FTerm::tyapp(FTerm::var("x"), Type::int()))
        );
    }
}
