//! System F typing, `∆; Γ ⊢ M : A` (Figure 18), with the value restriction
//! on type abstraction (only values under `Λ`).

use crate::error::FTypeError;
use crate::term::FTerm;
use freezeml_core::kinding;
use freezeml_core::{Kind, KindEnv, RefinedEnv, Type, TypeEnv};

/// Type-check a System F term.
///
/// # Errors
///
/// Any [`FTypeError`]; in particular [`FTypeError::ValueRestriction`] for a
/// `Λ` over a non-value and [`FTypeError::Mismatch`] when an application's
/// argument type is not α-equal to the function's parameter type.
pub fn typecheck(delta: &KindEnv, gamma: &TypeEnv, term: &FTerm) -> Result<Type, FTypeError> {
    let theta = RefinedEnv::new();
    match term {
        FTerm::Var(x) => gamma.lookup(x).cloned().ok_or(FTypeError::Unbound(*x)),
        FTerm::Lit(l) => Ok(l.ty()),
        FTerm::Lam(x, ann, body) => {
            kinding::has_kind(delta, &theta, ann, Kind::Poly)?;
            let g2 = gamma.extended(*x, ann.clone());
            let b = typecheck(delta, &g2, body)?;
            Ok(Type::arrow(ann.clone(), b))
        }
        FTerm::App(m, n) => {
            let fty = typecheck(delta, gamma, m)?;
            let aty = typecheck(delta, gamma, n)?;
            match fty {
                Type::Con(freezeml_core::TyCon::Arrow, args) => {
                    let (dom, cod) = (&args[0], &args[1]);
                    if dom.alpha_eq(&aty) {
                        Ok(cod.clone())
                    } else {
                        Err(FTypeError::Mismatch {
                            expected: dom.clone(),
                            found: aty,
                        })
                    }
                }
                other => Err(FTypeError::NotAFunction(other)),
            }
        }
        FTerm::TyLam(a, body) => {
            if !body.is_value() {
                return Err(FTypeError::ValueRestriction);
            }
            // α-rename a binder that shadows an enclosing one — substitution
            // (subject reduction!) creates such nestings, e.g. reducing
            // Church-numeral arithmetic.
            let (a2, body2) = if delta.contains(a) {
                let c = freezeml_core::TyVar::fresh();
                (c, body.subst_ty(a, &Type::Var(c)))
            } else {
                (*a, (**body).clone())
            };
            let delta2 = delta.extended([a2]).expect("binder is fresh for delta");
            let b = typecheck(&delta2, gamma, &body2)?;
            Ok(Type::Forall(a2, Box::new(b)))
        }
        FTerm::TyApp(m, ty) => {
            kinding::has_kind(delta, &theta, ty, Kind::Poly)?;
            let mty = typecheck(delta, gamma, m)?;
            match mty {
                Type::Forall(a, body) => Ok(body.rename_free(&a, ty)),
                other => Err(FTypeError::NotAForall(other)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezeml_core::parse_type;

    fn id_term() -> FTerm {
        FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")))
    }

    #[test]
    fn polymorphic_identity() {
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &id_term()).unwrap();
        assert!(ty.alpha_eq(&parse_type("forall a. a -> a").unwrap()));
    }

    #[test]
    fn type_application_substitutes() {
        let t = FTerm::tyapp(id_term(), Type::int());
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &t).unwrap();
        assert_eq!(ty, parse_type("Int -> Int").unwrap());
    }

    #[test]
    fn impredicative_type_application() {
        // id [∀a.a→a] : (∀a.a→a) → (∀a.a→a) — System F is impredicative.
        let poly = parse_type("forall a. a -> a").unwrap();
        let t = FTerm::tyapp(id_term(), poly.clone());
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &t).unwrap();
        assert!(ty.alpha_eq(&Type::arrow(poly.clone(), poly)));
    }

    #[test]
    fn application_requires_alpha_equal_argument() {
        let mut g = TypeEnv::new();
        g.push_str("f", "(forall a. a -> a) -> Int").unwrap();
        g.push_str("v", "forall b. b -> b").unwrap();
        g.push_str("w", "Int -> Int").unwrap();
        let ok = FTerm::app(FTerm::var("f"), FTerm::var("v"));
        assert_eq!(typecheck(&KindEnv::new(), &g, &ok).unwrap(), Type::int());
        let bad = FTerm::app(FTerm::var("f"), FTerm::var("w"));
        assert!(matches!(
            typecheck(&KindEnv::new(), &g, &bad),
            Err(FTypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn value_restriction_rejects_tylam_over_application() {
        let mut g = TypeEnv::new();
        g.push_str("f", "Int -> Int").unwrap();
        let t = FTerm::tylam("a", FTerm::app(FTerm::var("f"), FTerm::int(1)));
        assert_eq!(
            typecheck(&KindEnv::new(), &g, &t),
            Err(FTypeError::ValueRestriction)
        );
    }

    #[test]
    fn tylam_over_instantiation_is_fine() {
        // Λa. x [a] — an instantiation, hence a value.
        let mut g = TypeEnv::new();
        g.push_str("x", "forall b. List b").unwrap();
        let t = FTerm::tylam("a", FTerm::tyapp(FTerm::var("x"), Type::var("a")));
        let ty = typecheck(&KindEnv::new(), &g, &t).unwrap();
        assert!(ty.alpha_eq(&parse_type("forall a. List a").unwrap()));
    }

    #[test]
    fn let_sugar_types_like_beta_redex() {
        let t = FTerm::let_("x", Type::int(), FTerm::int(1), FTerm::var("x"));
        assert_eq!(
            typecheck(&KindEnv::new(), &TypeEnv::new(), &t).unwrap(),
            Type::int()
        );
    }

    #[test]
    fn unbound_type_variable_in_annotation() {
        let t = FTerm::lam("x", Type::var("a"), FTerm::var("x"));
        assert!(matches!(
            typecheck(&KindEnv::new(), &TypeEnv::new(), &t),
            Err(FTypeError::Kind(_))
        ));
    }

    #[test]
    fn shadowing_tylam_is_alpha_renamed() {
        // Λa.Λa.λx:a.x — the inner binder shadows; typing α-renames and the
        // inner `a` refers to the inner Λ. Substitution during reduction
        // creates exactly these shapes, so rejecting them would break
        // subject reduction.
        let t = FTerm::tylam(
            "a",
            FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x"))),
        );
        let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &t).unwrap();
        let expect = parse_type("forall a b. b -> b").unwrap();
        assert!(ty.alpha_eq(&expect), "got {ty}");
    }

    #[test]
    fn appendix_d_example() {
        // (λapp^∀ab.(a→b)→a→b. app [∀a.a→a] [∀a.a→a] auto id)
        //   (Λa b. λf^(a→b). λz^a. f z)  :  ∀a. a → a
        let mut g = TypeEnv::new();
        g.push_str("auto", "(forall a. a -> a) -> forall a. a -> a")
            .unwrap();
        g.push_str("id", "forall a. a -> a").unwrap();
        let app_ty = parse_type("forall a b. (a -> b) -> a -> b").unwrap();
        let id_ty = parse_type("forall a. a -> a").unwrap();
        let app_impl = FTerm::tylams(
            [
                freezeml_core::TyVar::named("a"),
                freezeml_core::TyVar::named("b"),
            ],
            FTerm::lam(
                "f",
                Type::arrow(Type::var("a"), Type::var("b")),
                FTerm::lam(
                    "z",
                    Type::var("a"),
                    FTerm::app(FTerm::var("f"), FTerm::var("z")),
                ),
            ),
        );
        let body = FTerm::apps(
            FTerm::tyapps(FTerm::var("app"), [id_ty.clone(), id_ty.clone()]),
            [FTerm::var("auto"), FTerm::var("id")],
        );
        let whole = FTerm::app(FTerm::lam("app", app_ty, body), app_impl);
        let ty = typecheck(&KindEnv::new(), &g, &whole).unwrap();
        assert!(ty.alpha_eq(&id_ty));
    }
}
