//! A small-step call-by-value semantics for (pure) System F, with the
//! β-rules of Figure 19:
//!
//! ```text
//! (λx^A.M) V  ⟶  M[V/x]         (V a value)
//! (Λa.V) A    ⟶  V[A/a]
//! ```
//!
//! plus the usual left-to-right evaluation contexts. Together with
//! [`crate::typing::typecheck`] this gives *executable* type soundness:
//! the test suite checks preservation (each step keeps the type) and
//! progress (closed well-typed terms are values or step) on hand-written
//! and Church-encoded programs.
//!
//! The small-step semantics covers the *pure* fragment (no prelude
//! builtins — a free variable in function position is stuck); use
//! [`crate::eval()`](crate::eval()) for programs over the Figure 2 runtime.

use crate::term::FTerm;

/// One reduction step, or `None` if the term is a value or stuck.
pub fn step(t: &FTerm) -> Option<FTerm> {
    match t {
        FTerm::Var(_) | FTerm::Lit(_) | FTerm::Lam(_, _, _) => None,
        // Under the value restriction Λ-bodies are syntactic values; there
        // is nothing to reduce inside.
        FTerm::TyLam(_, _) => None,
        FTerm::App(f, a) => {
            if let Some(f2) = step(f) {
                return Some(FTerm::App(Box::new(f2), a.clone()));
            }
            if let Some(a2) = step(a) {
                return Some(FTerm::App(f.clone(), Box::new(a2)));
            }
            match f.as_ref() {
                FTerm::Lam(x, _, body) if a.is_value() => Some(body.subst_var(x, a)),
                _ => None,
            }
        }
        FTerm::TyApp(m, ty) => {
            if let Some(m2) = step(m) {
                return Some(FTerm::TyApp(Box::new(m2), ty.clone()));
            }
            match m.as_ref() {
                FTerm::TyLam(a, v) => Some(v.subst_ty(a, ty)),
                _ => None,
            }
        }
    }
}

/// The outcome of running the small-step machine.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Reached a value.
    Value(FTerm),
    /// No rule applies but the term is not a value (only possible for open
    /// or ill-typed terms — progress).
    Stuck(FTerm),
    /// Fuel ran out.
    OutOfFuel(FTerm),
}

/// Iterate [`step`] up to `fuel` times.
pub fn normalize(t: &FTerm, fuel: usize) -> Outcome {
    let mut cur = t.clone();
    for _ in 0..fuel {
        match step(&cur) {
            Some(next) => cur = next,
            None => {
                return if cur.is_value() {
                    Outcome::Value(cur)
                } else {
                    Outcome::Stuck(cur)
                };
            }
        }
    }
    Outcome::OutOfFuel(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typing::typecheck;
    use freezeml_core::{KindEnv, TyVar, Type, TypeEnv};

    fn id_poly() -> FTerm {
        FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")))
    }

    /// Church numeral `n` : ∀a.(a→a)→a→a.
    fn church(n: usize) -> FTerm {
        let a = Type::var("a");
        let mut body = FTerm::var("z");
        for _ in 0..n {
            body = FTerm::app(FTerm::var("s"), body);
        }
        FTerm::tylam(
            "a",
            FTerm::lam(
                "s",
                Type::arrow(a.clone(), a.clone()),
                FTerm::lam("z", a, body),
            ),
        )
    }

    /// Church successor.
    fn church_succ() -> FTerm {
        let nat = freezeml_core::parse_type("forall a. (a -> a) -> a -> a").unwrap();
        let a = Type::var("a");
        FTerm::lam(
            "n",
            nat,
            FTerm::tylam(
                "a",
                FTerm::lam(
                    "s",
                    Type::arrow(a.clone(), a.clone()),
                    FTerm::lam(
                        "z",
                        a.clone(),
                        FTerm::app(
                            FTerm::var("s"),
                            FTerm::apps(
                                FTerm::tyapp(FTerm::var("n"), a),
                                [FTerm::var("s"), FTerm::var("z")],
                            ),
                        ),
                    ),
                ),
            ),
        )
    }

    /// Convert a Church numeral to an Int by instantiating at Int and
    /// applying the successor/zero of the meta-level.
    fn church_to_int(n: FTerm) -> FTerm {
        FTerm::apps(
            FTerm::tyapp(n, Type::int()),
            [
                FTerm::lam(
                    "k",
                    Type::int(),
                    // We have no primitive + in pure F; observe shape only.
                    FTerm::var("k"),
                ),
                FTerm::int(0),
            ],
        )
    }

    fn check_preservation(mut t: FTerm, fuel: usize) {
        let delta = KindEnv::new();
        let env = TypeEnv::new();
        let ty = typecheck(&delta, &env, &t).expect("initial term must be typed");
        for _ in 0..fuel {
            match step(&t) {
                Some(next) => {
                    let ty2 = typecheck(&delta, &env, &next)
                        .unwrap_or_else(|e| panic!("preservation: {next} ill-typed: {e}"));
                    assert!(
                        ty2.alpha_eq(&ty),
                        "type changed from {ty} to {ty2} at {next}"
                    );
                    t = next;
                }
                None => return,
            }
        }
        panic!("out of fuel");
    }

    #[test]
    fn beta_steps() {
        let t = FTerm::app(FTerm::lam("x", Type::int(), FTerm::var("x")), FTerm::int(7));
        assert_eq!(step(&t), Some(FTerm::int(7)));
    }

    #[test]
    fn type_beta_steps() {
        let t = FTerm::tyapp(id_poly(), Type::int());
        assert_eq!(
            step(&t),
            Some(FTerm::lam("x", Type::int(), FTerm::var("x")))
        );
    }

    #[test]
    fn normalizes_nested_redexes() {
        // (id [Int→Int] (λy.y)) 3 ⇓ 3
        let t = FTerm::app(
            FTerm::app(
                FTerm::tyapp(id_poly(), Type::arrow(Type::int(), Type::int())),
                FTerm::lam("y", Type::int(), FTerm::var("y")),
            ),
            FTerm::int(3),
        );
        assert_eq!(normalize(&t, 100), Outcome::Value(FTerm::int(3)));
    }

    #[test]
    fn preservation_on_polymorphic_programs() {
        let poly_ty = freezeml_core::parse_type("forall a. a -> a").unwrap();
        let progs = [
            FTerm::app(FTerm::tyapp(id_poly(), Type::int()), FTerm::int(1)),
            // Impredicative: id [∀a.a→a] id 5 — steps through polytypes.
            FTerm::app(
                FTerm::tyapp(
                    FTerm::app(FTerm::tyapp(id_poly(), poly_ty), id_poly()),
                    Type::int(),
                ),
                FTerm::int(5),
            ),
            church_to_int(church(3)),
            church_to_int(FTerm::app(church_succ(), church(2))),
        ];
        for p in progs {
            check_preservation(p, 1000);
        }
    }

    #[test]
    fn progress_on_closed_programs() {
        // Every closed well-typed term either is a value or steps, and
        // normalisation never gets stuck.
        let progs = [
            church_to_int(church(5)),
            church_to_int(FTerm::app(
                church_succ(),
                FTerm::app(church_succ(), church(0)),
            )),
            FTerm::app(FTerm::tyapp(id_poly(), Type::int()), FTerm::int(0)),
        ];
        for p in progs {
            assert!(
                typecheck(&KindEnv::new(), &TypeEnv::new(), &p).is_ok(),
                "test premise: {p} must be well-typed"
            );
            match normalize(&p, 10_000) {
                Outcome::Value(_) => {}
                other => panic!("{p}: {other:?}"),
            }
        }
    }

    #[test]
    fn church_arithmetic_agrees_with_bigstep() {
        use crate::eval::{eval, Env, Value};
        // succ (succ 1) normalises to the Church numeral 3 — observe by
        // converting to Int with inc-like counting in the big-step world.
        let three = FTerm::app(church_succ(), FTerm::app(church_succ(), church(1)));
        let normal = match normalize(&three, 10_000) {
            Outcome::Value(v) => v,
            other => panic!("{other:?}"),
        };
        // Apply to the *runtime* successor via big-step: n [Int] inc 0 = 3.
        let observed = FTerm::apps(
            FTerm::tyapp(normal, Type::int()),
            [FTerm::var("inc"), FTerm::int(0)],
        );
        let env: Env = crate::prelude::runtime_env();
        assert_eq!(eval(&env, &observed).unwrap(), Value::Int(3));
    }

    #[test]
    fn smallstep_and_bigstep_agree_on_pure_programs() {
        use crate::eval::{eval, Env, Value};
        let progs = [
            FTerm::app(FTerm::tyapp(id_poly(), Type::int()), FTerm::int(42)),
            church_to_int(church(4)),
        ];
        for p in progs {
            let small = match normalize(&p, 10_000) {
                Outcome::Value(v) => v,
                other => panic!("{other:?}"),
            };
            let big = eval(&Env::new(), &p).unwrap();
            if let (FTerm::Lit(l), Value::Int(n)) = (&small, &big) {
                assert_eq!(*l, freezeml_core::Lit::Int(*n));
            }
        }
    }

    #[test]
    fn open_application_is_stuck() {
        let t = FTerm::app(FTerm::var("mystery"), FTerm::int(1));
        assert!(matches!(normalize(&t, 10), Outcome::Stuck(_)));
    }

    #[test]
    fn subst_var_avoids_capture() {
        // (λy. x) with x := y  must not capture the binder.
        let body = FTerm::lam("y", Type::int(), FTerm::var("x"));
        let r = body.subst_var(&freezeml_core::Var::named("x"), &FTerm::var("y"));
        match r {
            FTerm::Lam(param, _, inner) => {
                assert_ne!(param, freezeml_core::Var::named("y"));
                assert_eq!(*inner, FTerm::var("y"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn subst_ty_respects_shadowing() {
        // (Λa. λx:a. x)[Int/a] — the Λ shadows, nothing changes.
        let t = FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")));
        let r = t.subst_ty(&TyVar::named("a"), &Type::int());
        assert_eq!(r, t);
    }
}
