//! Errors for System F typing and evaluation.

use freezeml_core::{TyVar, Type, TypeError, Var};
use std::fmt;

/// A System F typing error (Figure 18 plus the value restriction).
#[derive(Clone, Debug, PartialEq)]
pub enum FTypeError {
    /// A term variable is unbound.
    Unbound(Var),
    /// Application of a non-function.
    NotAFunction(Type),
    /// Type application of a non-quantified term.
    NotAForall(Type),
    /// Function argument type mismatch.
    Mismatch {
        /// What the function expects.
        expected: Type,
        /// What the argument has.
        found: Type,
    },
    /// `Λa.M` where `M` is not a syntactic value (the value restriction).
    ValueRestriction,
    /// A type abstraction re-binds an in-scope variable or an annotation is
    /// ill-kinded.
    Kind(TypeError),
    /// A type abstraction shadows an enclosing type variable.
    ShadowedTyVar(TyVar),
}

impl fmt::Display for FTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTypeError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            FTypeError::NotAFunction(t) => write!(f, "cannot apply a term of type `{t}`"),
            FTypeError::NotAForall(t) => {
                write!(f, "cannot type-apply a term of type `{t}`")
            }
            FTypeError::Mismatch { expected, found } => {
                write!(
                    f,
                    "argument type `{found}` does not match expected `{expected}`"
                )
            }
            FTypeError::ValueRestriction => {
                write!(f, "type abstraction over a non-value (value restriction)")
            }
            FTypeError::Kind(e) => write!(f, "{e}"),
            FTypeError::ShadowedTyVar(a) => {
                write!(f, "type abstraction shadows type variable `{a}`")
            }
        }
    }
}

impl std::error::Error for FTypeError {}

impl From<TypeError> for FTypeError {
    fn from(e: TypeError) -> Self {
        FTypeError::Kind(e)
    }
}

/// A runtime error from the evaluator.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A variable had no runtime binding.
    Unbound(Var),
    /// Application of a non-functional value.
    NotAFunction(String),
    /// A builtin received an argument of the wrong shape (indicates a bug —
    /// well-typed programs don't go wrong).
    BuiltinMisuse {
        /// The builtin's name.
        builtin: String,
        /// A description of the problem.
        message: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::NotAFunction(v) => write!(f, "cannot apply non-function value {v}"),
            EvalError::BuiltinMisuse { builtin, message } => {
                write!(f, "builtin `{builtin}` misused: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = FTypeError::Mismatch {
            expected: Type::int(),
            found: Type::bool(),
        };
        assert!(e.to_string().contains("Int"));
        assert!(e.to_string().contains("Bool"));
        let ev = EvalError::BuiltinMisuse {
            builtin: "head".into(),
            message: "empty list".into(),
        };
        assert!(ev.to_string().contains("head"));
    }
}
