//! A call-by-value, type-erasing evaluator for System F.
//!
//! Under the value restriction, type abstraction and application have no
//! operational content — `(Λa.V) A ≃ V[A/a]` and erasure is sound — so the
//! evaluator simply skips them. Prelude constants (Figure 2) are realised as
//! [`Value::Builtin`]s that accumulate arguments until saturated; see
//! [`crate::prelude`].

use crate::error::EvalError;
use crate::term::FTerm;
use freezeml_core::{Lit, Var};
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A closure.
    Closure {
        /// The captured environment.
        env: Env,
        /// The parameter.
        param: Var,
        /// The body.
        body: FTerm,
    },
    /// A list value.
    List(Vec<Value>),
    /// A pair value.
    Pair(Box<Value>, Box<Value>),
    /// A (possibly partially applied) builtin.
    Builtin {
        /// The builtin's name.
        name: String,
        /// Its total arity.
        arity: usize,
        /// Arguments received so far.
        args: Vec<Value>,
    },
    /// A suspended state-thread computation (`runST`/`argST`): we model an
    /// `ST s a` action as the value it produces.
    St(Box<Value>),
}

impl Value {
    /// Is this a first-order value (no closures/builtins inside)? Only
    /// ground values are meaningfully comparable across evaluations.
    pub fn is_ground(&self) -> bool {
        match self {
            Value::Int(_) | Value::Bool(_) => true,
            Value::List(vs) => vs.iter().all(Value::is_ground),
            Value::Pair(a, b) => a.is_ground() && b.is_ground(),
            Value::St(v) => v.is_ground(),
            Value::Closure { .. } | Value::Builtin { .. } => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Closure { param, .. } => write!(f, "<fun {param}>"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Builtin { name, args, .. } => {
                if args.is_empty() {
                    write!(f, "<{name}>")
                } else {
                    write!(f, "<{name}/{}>", args.len())
                }
            }
            Value::St(v) => write!(f, "<st {v}>"),
        }
    }
}

/// A runtime environment mapping term variables to values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Env {
    map: HashMap<Var, Value>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a variable.
    pub fn lookup(&self, x: &Var) -> Option<&Value> {
        self.map.get(x)
    }

    /// Bind a variable.
    pub fn push(&mut self, x: impl Into<Var>, v: Value) {
        self.map.insert(x.into(), v);
    }

    /// A copy extended with a binding.
    pub fn extended(&self, x: impl Into<Var>, v: Value) -> Self {
        let mut out = self.clone();
        out.push(x, v);
        out
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Big-step call-by-value evaluation.
///
/// # Errors
///
/// [`EvalError`] on unbound variables or ill-shaped applications (cannot
/// happen for well-typed closed programs — types are erased but sound).
pub fn eval(env: &Env, term: &FTerm) -> Result<Value, EvalError> {
    match term {
        FTerm::Var(x) => env.lookup(x).cloned().ok_or(EvalError::Unbound(*x)),
        FTerm::Lit(Lit::Int(n)) => Ok(Value::Int(*n)),
        FTerm::Lit(Lit::Bool(b)) => Ok(Value::Bool(*b)),
        FTerm::Lam(x, _, body) => Ok(Value::Closure {
            env: env.clone(),
            param: *x,
            body: (**body).clone(),
        }),
        FTerm::App(m, n) => {
            let f = eval(env, m)?;
            let a = eval(env, n)?;
            apply_value(f, a)
        }
        // Type erasure: the body of Λ is a syntactic value, so evaluating it
        // eagerly is safe and terminating.
        FTerm::TyLam(_, body) => eval(env, body),
        FTerm::TyApp(m, _) => eval(env, m),
    }
}

/// Apply one runtime value to another.
///
/// # Errors
///
/// [`EvalError::NotAFunction`] when `f` is not applicable.
pub fn apply_value(f: Value, arg: Value) -> Result<Value, EvalError> {
    match f {
        Value::Closure { env, param, body } => {
            let env2 = env.extended(param, arg);
            eval(&env2, &body)
        }
        Value::Builtin {
            name,
            arity,
            mut args,
        } => {
            args.push(arg);
            if args.len() == arity {
                crate::prelude::apply_builtin(&name, args)
            } else {
                Ok(Value::Builtin { name, arity, args })
            }
        }
        other => Err(EvalError::NotAFunction(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::runtime_env;
    use freezeml_core::Type;

    #[test]
    fn literals_and_lambdas() {
        let env = Env::new();
        assert_eq!(eval(&env, &FTerm::int(3)).unwrap(), Value::Int(3));
        let id = FTerm::lam("x", Type::int(), FTerm::var("x"));
        let v = eval(&env, &FTerm::app(id, FTerm::int(7))).unwrap();
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn type_abstraction_is_erased() {
        let env = Env::new();
        let t = FTerm::app(
            FTerm::tyapp(
                FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x"))),
                Type::int(),
            ),
            FTerm::int(5),
        );
        assert_eq!(eval(&env, &t).unwrap(), Value::Int(5));
    }

    #[test]
    fn closures_capture_their_environment() {
        // (λx. λy. x) 1 2 ⇓ 1
        let env = Env::new();
        let t = FTerm::apps(
            FTerm::lam(
                "x",
                Type::int(),
                FTerm::lam("y", Type::int(), FTerm::var("x")),
            ),
            [FTerm::int(1), FTerm::int(2)],
        );
        assert_eq!(eval(&env, &t).unwrap(), Value::Int(1));
    }

    #[test]
    fn builtins_curry() {
        let env = runtime_env();
        let t = FTerm::app(FTerm::var("plus"), FTerm::int(1));
        let v = eval(&env, &t).unwrap();
        assert!(matches!(v, Value::Builtin { ref args, .. } if args.len() == 1));
        let t2 = FTerm::apps(FTerm::var("plus"), [FTerm::int(1), FTerm::int(2)]);
        assert_eq!(eval(&env, &t2).unwrap(), Value::Int(3));
    }

    #[test]
    fn unbound_variable_errors() {
        assert!(matches!(
            eval(&Env::new(), &FTerm::var("ghost")),
            Err(EvalError::Unbound(_))
        ));
    }

    #[test]
    fn applying_an_int_fails() {
        let t = FTerm::app(FTerm::int(1), FTerm::int(2));
        assert!(matches!(
            eval(&Env::new(), &t),
            Err(EvalError::NotAFunction(_))
        ));
    }

    #[test]
    fn ground_values() {
        assert!(Value::Int(1).is_ground());
        assert!(Value::List(vec![Value::Pair(
            Box::new(Value::Int(1)),
            Box::new(Value::Bool(true))
        )])
        .is_ground());
        assert!(!Value::Builtin {
            name: "id".into(),
            arity: 1,
            args: vec![]
        }
        .is_ground());
    }
}
