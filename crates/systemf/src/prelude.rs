//! Runtime implementations of the Figure 2 prelude.
//!
//! The paper's examples are stated against a signature of list/function
//! combinators (`head`, `single`, `choose`, `poly`, `runST`, …). Their
//! *types* live in `freezeml-corpus` (the authoritative Figure 2 table);
//! this module provides matching *runtime* values so that translated
//! programs can actually be run, which the equational tests of §4.3 rely
//! on.
//!
//! Semantics chosen for the underdetermined constants:
//!
//! * `choose x y = x` (any definition of type `∀a.a→a→a` must return one of
//!   its arguments; we pick the first);
//! * `poly f = (f 42, f true)` — the standard reading of
//!   `poly : (∀a.a→a) → Int × Bool`;
//! * `auto x = x x`, `auto' x = x x` (their defining equations, F3/F4);
//! * `argST` is the `ST` action returning `0`; `runST` runs it.

use crate::error::EvalError;
use crate::eval::{apply_value, Env, Value};

/// The names and arities of all builtin functions (arity ≥ 1).
pub const BUILTIN_FUNCTIONS: &[(&str, usize)] = &[
    ("head", 1),
    ("tail", 1),
    ("cons", 2),
    ("single", 1),
    ("append", 2),
    ("length", 1),
    ("map", 2),
    ("id", 1),
    ("inc", 1),
    ("plus", 2),
    ("choose", 2),
    ("poly", 1),
    ("auto", 1),
    ("auto'", 1),
    ("app", 2),
    ("revapp", 2),
    ("runST", 1),
    ("pair", 2),
    ("pair'", 2),
    ("fst", 1),
    ("snd", 1),
];

/// A runtime environment binding every Figure 2 constant.
pub fn runtime_env() -> Env {
    let mut env = Env::new();
    for (name, arity) in BUILTIN_FUNCTIONS {
        env.push(
            *name,
            Value::Builtin {
                name: (*name).to_string(),
                arity: *arity,
                args: Vec::new(),
            },
        );
    }
    env.push("nil", Value::List(Vec::new()));
    env.push(
        "ids",
        Value::List(vec![Value::Builtin {
            name: "id".to_string(),
            arity: 1,
            args: Vec::new(),
        }]),
    );
    env.push("argST", Value::St(Box::new(Value::Int(0))));
    env
}

fn misuse(builtin: &str, message: impl Into<String>) -> EvalError {
    EvalError::BuiltinMisuse {
        builtin: builtin.to_string(),
        message: message.into(),
    }
}

/// Apply a saturated builtin to its arguments.
///
/// # Errors
///
/// [`EvalError::BuiltinMisuse`] when arguments have the wrong shape — which
/// cannot happen for well-typed programs.
pub fn apply_builtin(name: &str, mut args: Vec<Value>) -> Result<Value, EvalError> {
    match (name, args.len()) {
        ("head", 1) => match args.remove(0) {
            Value::List(vs) if !vs.is_empty() => Ok(vs.into_iter().next().unwrap()),
            Value::List(_) => Err(misuse(name, "empty list")),
            other => Err(misuse(name, format!("expected a list, got {other}"))),
        },
        ("tail", 1) => match args.remove(0) {
            Value::List(vs) if !vs.is_empty() => Ok(Value::List(vs[1..].to_vec())),
            Value::List(_) => Err(misuse(name, "empty list")),
            other => Err(misuse(name, format!("expected a list, got {other}"))),
        },
        ("cons", 2) => {
            let tl = args.remove(1);
            let hd = args.remove(0);
            match tl {
                Value::List(mut vs) => {
                    vs.insert(0, hd);
                    Ok(Value::List(vs))
                }
                other => Err(misuse(name, format!("expected a list, got {other}"))),
            }
        }
        ("single", 1) => Ok(Value::List(vec![args.remove(0)])),
        ("append", 2) => {
            let r = args.remove(1);
            let l = args.remove(0);
            match (l, r) {
                (Value::List(mut a), Value::List(b)) => {
                    a.extend(b);
                    Ok(Value::List(a))
                }
                _ => Err(misuse(name, "expected two lists")),
            }
        }
        ("length", 1) => match args.remove(0) {
            Value::List(vs) => Ok(Value::Int(vs.len() as i64)),
            other => Err(misuse(name, format!("expected a list, got {other}"))),
        },
        ("map", 2) => {
            let xs = args.remove(1);
            let f = args.remove(0);
            match xs {
                Value::List(vs) => {
                    let mut out = Vec::with_capacity(vs.len());
                    for v in vs {
                        out.push(apply_value(f.clone(), v)?);
                    }
                    Ok(Value::List(out))
                }
                other => Err(misuse(name, format!("expected a list, got {other}"))),
            }
        }
        ("id", 1) => Ok(args.remove(0)),
        ("inc", 1) => match args.remove(0) {
            Value::Int(n) => Ok(Value::Int(n + 1)),
            other => Err(misuse(name, format!("expected an Int, got {other}"))),
        },
        ("plus", 2) => match (args.remove(0), args.remove(0)) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            _ => Err(misuse(name, "expected two Ints")),
        },
        ("choose", 2) => Ok(args.remove(0)),
        ("poly", 1) => {
            let f = args.remove(0);
            let a = apply_value(f.clone(), Value::Int(42))?;
            let b = apply_value(f, Value::Bool(true))?;
            Ok(Value::Pair(Box::new(a), Box::new(b)))
        }
        ("auto", 1) | ("auto'", 1) => {
            let x = args.remove(0);
            apply_value(x.clone(), x)
        }
        ("app", 2) => {
            let x = args.remove(1);
            let f = args.remove(0);
            apply_value(f, x)
        }
        ("revapp", 2) => {
            let f = args.remove(1);
            let x = args.remove(0);
            apply_value(f, x)
        }
        ("runST", 1) => match args.remove(0) {
            Value::St(v) => Ok(*v),
            other => Err(misuse(name, format!("expected an ST action, got {other}"))),
        },
        ("pair", 2) | ("pair'", 2) => {
            let b = args.remove(1);
            let a = args.remove(0);
            Ok(Value::Pair(Box::new(a), Box::new(b)))
        }
        ("fst", 1) => match args.remove(0) {
            Value::Pair(a, _) => Ok(*a),
            other => Err(misuse(name, format!("expected a pair, got {other}"))),
        },
        ("snd", 1) => match args.remove(0) {
            Value::Pair(_, b) => Ok(*b),
            other => Err(misuse(name, format!("expected a pair, got {other}"))),
        },
        _ => Err(misuse(name, "unknown builtin or wrong arity")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::term::FTerm;

    fn run(t: &FTerm) -> Value {
        eval(&runtime_env(), t).unwrap()
    }

    #[test]
    fn list_operations() {
        // length (cons 1 (single 2)) = 2
        let t = FTerm::app(
            FTerm::var("length"),
            FTerm::apps(
                FTerm::var("cons"),
                [
                    FTerm::int(1),
                    FTerm::app(FTerm::var("single"), FTerm::int(2)),
                ],
            ),
        );
        assert_eq!(run(&t), Value::Int(2));
        // head (append (single 1) (single 2)) = 1
        let t2 = FTerm::app(
            FTerm::var("head"),
            FTerm::apps(
                FTerm::var("append"),
                [
                    FTerm::app(FTerm::var("single"), FTerm::int(1)),
                    FTerm::app(FTerm::var("single"), FTerm::int(2)),
                ],
            ),
        );
        assert_eq!(run(&t2), Value::Int(1));
        // tail (single 9) = []
        let t3 = FTerm::app(
            FTerm::var("tail"),
            FTerm::app(FTerm::var("single"), FTerm::int(9)),
        );
        assert_eq!(run(&t3), Value::List(vec![]));
    }

    #[test]
    fn poly_produces_int_bool_pair() {
        let t = FTerm::app(FTerm::var("poly"), FTerm::var("id"));
        assert_eq!(
            run(&t),
            Value::Pair(Box::new(Value::Int(42)), Box::new(Value::Bool(true)))
        );
    }

    #[test]
    fn choose_takes_first() {
        let t = FTerm::apps(FTerm::var("choose"), [FTerm::int(1), FTerm::int(2)]);
        assert_eq!(run(&t), Value::Int(1));
    }

    #[test]
    fn map_applies() {
        // map inc ids? — map inc (single 1) = [2]
        let t = FTerm::apps(
            FTerm::var("map"),
            [
                FTerm::var("inc"),
                FTerm::app(FTerm::var("single"), FTerm::int(1)),
            ],
        );
        assert_eq!(run(&t), Value::List(vec![Value::Int(2)]));
    }

    #[test]
    fn runst_runs() {
        let t = FTerm::app(FTerm::var("runST"), FTerm::var("argST"));
        assert_eq!(run(&t), Value::Int(0));
    }

    #[test]
    fn auto_self_applies() {
        // auto id = id id = id; (auto id) 3 = 3.
        let t = FTerm::app(
            FTerm::app(FTerm::var("auto"), FTerm::var("id")),
            FTerm::int(3),
        );
        assert_eq!(run(&t), Value::Int(3));
    }

    #[test]
    fn revapp_reverses() {
        let t = FTerm::apps(FTerm::var("revapp"), [FTerm::int(1), FTerm::var("inc")]);
        assert_eq!(run(&t), Value::Int(2));
    }

    #[test]
    fn head_of_ids_is_identity() {
        let t = FTerm::app(
            FTerm::app(FTerm::var("head"), FTerm::var("ids")),
            FTerm::int(11),
        );
        assert_eq!(run(&t), Value::Int(11));
    }

    #[test]
    fn misuse_is_reported() {
        let t = FTerm::app(FTerm::var("head"), FTerm::int(1));
        assert!(matches!(
            eval(&runtime_env(), &t),
            Err(EvalError::BuiltinMisuse { .. })
        ));
        let t2 = FTerm::app(FTerm::var("head"), FTerm::var("nil"));
        assert!(matches!(
            eval(&runtime_env(), &t2),
            Err(EvalError::BuiltinMisuse { .. })
        ));
    }

    #[test]
    fn pairs_project() {
        let p = FTerm::apps(FTerm::var("pair"), [FTerm::int(1), FTerm::bool(false)]);
        assert_eq!(
            run(&FTerm::app(FTerm::var("fst"), p.clone())),
            Value::Int(1)
        );
        assert_eq!(run(&FTerm::app(FTerm::var("snd"), p)), Value::Bool(false));
    }
}
