//! # Call-by-value System F (paper Appendix B.1)
//!
//! The substrate FreezeML is measured against: explicitly typed polymorphic
//! lambda calculus with the ML value restriction (type abstractions may only
//! enclose syntactic values), Figures 17–19 of the paper.
//!
//! This crate provides:
//!
//! * [`FTerm`] — the term syntax, with `let` as sugar (`let x^A = M in N ≡
//!   (λx:A.N) M`) and n-ary type abstraction/application helpers;
//! * [`typecheck`] — the typing judgement `∆; Γ ⊢ M : A` (Figure 18),
//!   including the value restriction on `Λ`;
//! * [`eval()`](eval()) — a type-erasing, environment-based call-by-value evaluator,
//!   with runtime implementations of every Figure 2 prelude constant
//!   ([`prelude::runtime_env`]);
//! * equational smoke tests for the β/η rules of Figure 19.
//!
//! Types are shared with [`freezeml_core`] — FreezeML uses *exactly* the
//! System F type language, which is one of the paper's design goals.
//!
//! ```
//! use freezeml_systemf::{FTerm, typecheck, eval, prelude};
//! use freezeml_core::{KindEnv, TypeEnv, Type};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Λa. λ(x:a). x  :  ∀a. a → a
//! let id = FTerm::tylam("a", FTerm::lam("x", Type::var("a"), FTerm::var("x")));
//! let ty = typecheck(&KindEnv::new(), &TypeEnv::new(), &id)?;
//! assert_eq!(ty.to_string(), "forall a. a -> a");
//!
//! // (Λa.λ(x:a).x) [Int] 42  ⇓  42
//! let app = FTerm::app(FTerm::tyapp(id, Type::int()), FTerm::int(42));
//! let v = eval(&prelude::runtime_env(), &app)?;
//! assert_eq!(v, freezeml_systemf::Value::Int(42));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod eval;
pub mod prelude;
pub mod reduce;
pub mod smallstep;
pub mod term;
pub mod typing;

pub use error::{EvalError, FTypeError};
pub use eval::{apply_value, eval, Env, Value};
pub use reduce::admin_reduce;
pub use smallstep::{normalize, step, Outcome};
pub use term::FTerm;
pub use typing::typecheck;
