//! A vendored, dependency-free stand-in for the parts of the [`rand`]
//! crate this workspace uses (the build environment is offline; see
//! `crates/shims/README.md`).
//!
//! Provided surface:
//!
//! * [`Rng`] with [`Rng::gen_range`] over half-open integer ranges and
//!   [`Rng::gen_bool`];
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a fixed, documented algorithm
//!   (SplitMix64-seeded xoshiro256**) so seeded test corpora are stable
//!   across platforms and releases — which is all the test suite relies
//!   on. It is **not** the real `StdRng` (ChaCha12) and produces a
//!   different stream for the same seed; it is not cryptographically
//!   secure.
//!
//! [`rand`]: https://docs.rs/rand/0.8

use std::ops::Range;

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using the given 64-bit source.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain widening multiply is irrelevant for
                // test-corpus generation and keeps the stream stable.
                let r = rng.next_u64() as u128;
                let bounded = (r * span) >> 64;
                (low as i128 + bounded as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The raw 64-bit generator interface (object-safe core of [`Rng`]).
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing random-number interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open integer range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self, range.start, range.end)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 random bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, fixed-algorithm generator (xoshiro256** seeded via
    /// SplitMix64). Stands in for `rand::rngs::StdRng`; the stream
    /// differs from the real crate's but is stable here forever.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the rand_core docs recommend for
            // seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain reference
            // implementation, transliterated).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17i64);
            assert!((3..17).contains(&v));
        }
        for _ in 0..10_000 {
            let v = rng.gen_range(0..1usize);
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "suspicious coin: {heads}");
    }
}
