//! A vendored, dependency-free stand-in for the `fxhash` / `rustc-hash`
//! crates (the build environment is offline; see `crates/shims/README.md`).
//!
//! [`FxHasher`] is the multiply-rotate word hasher rustc uses for its
//! interned-index maps: for small keys (interned symbols, arena ids,
//! `u32`/`u64` newtypes) it is one multiply per word, roughly an order of
//! magnitude cheaper than the DoS-resistant SipHash that
//! `std::collections::HashMap` defaults to. It is **not** DoS-resistant
//! and must only key maps whose inputs the program itself generates —
//! exactly the inference-path maps this workspace uses it for.
//!
//! The constant is the golden-ratio multiplier (2⁶⁴/φ); the finish step
//! is a SplitMix64-style avalanche so that sequential ids (the common
//! case for arena indices) spread over the table.

use std::hash::{BuildHasherDefault, Hasher};

/// Build-hasher plumbing for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word hasher. See the module docs.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            tail[7] = rest.len() as u8 | 0x80;
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Avalanche: arena ids are sequential; without this the low bits
        // (the ones `HashMap` masks with) would barely differ.
        let mut z = self.hash;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One-shot hash of any hashable value with [`FxHasher`].
pub fn hash<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&17), Some(&"v"));
        assert_eq!(m.get(&1000), None);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn hashing_is_deterministic_and_input_sensitive() {
        assert_eq!(hash(&12345u64), hash(&12345u64));
        assert_ne!(hash(&12345u64), hash(&12346u64));
        assert_ne!(hash("a"), hash("b"));
        assert_ne!(hash("a"), hash("a\0"));
        assert_ne!(hash(&(1u32, 2u32)), hash(&(2u32, 1u32)));
    }

    #[test]
    fn sequential_ids_spread_over_low_bits() {
        // The avalanche step must spread consecutive ids across the low
        // byte, or arena-indexed maps would degenerate into one bucket.
        let mut low = FxHashSet::default();
        for i in 0..256u32 {
            low.insert(hash(&i) & 0xff);
        }
        assert!(low.len() > 128, "only {} distinct low bytes", low.len());
    }
}
