//! A vendored, dependency-free stand-in for the parts of [`criterion`]
//! this workspace uses (the build environment is offline; see
//! `crates/shims/README.md`).
//!
//! It reproduces the *interface* of `Criterion`/`BenchmarkGroup`/`Bencher`
//! and the wall-clock measurement loop, not the statistics: each benchmark
//! is warmed up, then timed over `sample_size` samples with a per-sample
//! iteration count calibrated from the warm-up, and the per-iteration
//! mean, **min-of-samples**, median, max, and sample standard deviation
//! are printed. The min-of-samples figure is the one to quote when
//! comparing implementations: it is the least noise-contaminated estimate
//! this shim can produce (any slower sample ran the same code plus
//! interference), whereas the mean absorbs scheduler noise. There are no
//! plots, no saved baselines, and no outlier analysis.
//!
//! Runtime budget: the configured `measurement_time` is honoured up to the
//! cap in `CRITERION_SHIM_BUDGET_MS` (default 250 ms per benchmark) so
//! `cargo bench` stays fast; raise it for real measurements. Under
//! `cargo test` (the harness receives `--test`) every benchmark runs
//! exactly one iteration, mirroring the real crate's test mode.
//!
//! Machine-readable results: set `CRITERION_SHIM_JSON=<path>` and every
//! measured benchmark is recorded in a JSON document at that path —
//! `{"schema":"criterion-shim/v1","budget_ms":…,"results":[{id, min_ns,
//! mean_ns, median_ns, max_ns, stddev_ns, samples, iters_per_sample},…]}`
//! — rewritten after each benchmark so the file is valid JSON even if
//! the run is interrupted. Rows **merge by id**: `cargo bench` runs each
//! bench target as a separate process, so a shared sink path updates
//! matching rows in place and preserves the rest (delete the file first
//! for a from-scratch record, as `freezeml bench-json` does). That
//! subcommand produces the checked-in `BENCH_engine.json` /
//! `BENCH_service.json`; the CI perf-smoke job validates the schema at
//! a small budget.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Fewest timed samples any measurement may take. A single-sample row
/// has no spread at all — its min *is* its mean — so recorded numbers
/// become pure noise; `Bencher::iter` clamps the configured
/// `sample_size` up to this floor, and the CI perf-smoke schema check
/// rejects recorded rows below it.
pub const MIN_SAMPLES: usize = 5;

/// Accumulated JSON entries, keyed by benchmark id (all groups share
/// the file, so the sink is global).
struct JsonSink {
    path: String,
    budget_ms: u64,
    entries: Vec<(String, String)>,
}

/// Entries already in a sink document this process did not write: a
/// `cargo bench` run executes each bench target as its own process, so
/// a shared sink path must merge, not clobber — an id written by this
/// process replaces the stale row, everything else is preserved.
fn load_existing(path: &str) -> Vec<(String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    if !text.starts_with("{\"schema\":\"criterion-shim/v1\"") {
        return Vec::new(); // unknown file: do not import, will overwrite
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("{\"id\":\"") {
            // Benchmark ids contain no JSON escapes (they are
            // group/function/parameter names), so the id ends at the
            // next quote.
            if let Some(end) = rest.find('\"') {
                out.push((rest[..end].to_string(), line.to_string()));
            }
        }
    }
    out
}

fn json_sink() -> &'static Option<Mutex<JsonSink>> {
    static SINK: OnceLock<Option<Mutex<JsonSink>>> = OnceLock::new();
    SINK.get_or_init(|| {
        let path = std::env::var("CRITERION_SHIM_JSON").ok()?;
        let budget_ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(250);
        let entries = load_existing(&path);
        Some(Mutex::new(JsonSink {
            path,
            budget_ms,
            entries,
        }))
    })
}

/// Record one measured result (replacing any earlier row with the same
/// id) and rewrite the document — small files; rewriting keeps the
/// output valid JSON at every point, even mid-run.
fn json_record(id: &str, r: &Report) {
    let Some(sink) = json_sink() else { return };
    let mut sink = sink.lock().expect("json sink poisoned");
    let line = format!(
        "{{\"id\":{id:?},\"min_ns\":{:.1},\"mean_ns\":{:.1},\"median_ns\":{:.1},\
         \"max_ns\":{:.1},\"stddev_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
        r.min_ns, r.mean_ns, r.median_ns, r.max_ns, r.stddev_ns, r.samples, r.iters_per_sample
    );
    sink.entries.retain(|(eid, _)| eid != id);
    sink.entries.push((id.to_string(), line));
    let body: Vec<&str> = sink.entries.iter().map(|(_, l)| l.as_str()).collect();
    let doc = format!(
        "{{\"schema\":\"criterion-shim/v1\",\"budget_ms\":{},\"results\":[\n{}\n]}}\n",
        sink.budget_ms,
        body.join(",\n")
    );
    if let Err(e) = std::fs::write(&sink.path, doc) {
        eprintln!("criterion shim: cannot write {}: {e}", sink.path);
    }
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo test` invokes custom-harness bench binaries with
        // `--test`; `cargo bench` passes `--bench`. Any bare argument is a
        // name filter, as with the real harness.
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with("--")).cloned();
        let budget_ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(250);
        Criterion {
            test_mode,
            budget: Duration::from_millis(budget_ms),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for groups whose name already identifies the
    /// function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the target measurement time (capped by the shim's budget).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Mark the group complete (a no-op here; kept for API fidelity).
    pub fn finish(self) {}

    fn run<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            measurement_time: self.measurement_time.min(self.criterion.budget),
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            _ if bencher.test_mode => println!("test-mode {full}: ok (1 iteration)"),
            Some(r) => {
                json_record(&full, &r);
                println!(
                    "bench {full}: min {} (mean {}, median {}, max {}, stddev {}) \
                     over {} samples x {} iters",
                    fmt_ns(r.min_ns),
                    fmt_ns(r.mean_ns),
                    fmt_ns(r.median_ns),
                    fmt_ns(r.max_ns),
                    fmt_ns(r.stddev_ns),
                    r.samples,
                    r.iters_per_sample,
                );
            }
            None => println!("bench {full}: no measurement (b.iter never called)"),
        }
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
    stddev_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Per-sample statistics: `(mean, min, median, max, sample stddev)`.
/// The min is the figure speedup claims should quote (see module docs).
fn stats(samples: &[f64]) -> (f64, f64, f64, f64, f64) {
    let n = samples.len();
    assert!(n > 0, "stats over an empty sample set");
    let mean = samples.iter().sum::<f64>() / n as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0, f64::max);
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = if n.is_multiple_of(2) {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    } else {
        sorted[n / 2]
    };
    let stddev = if n < 2 {
        0.0
    } else {
        (samples
            .iter()
            .map(|&s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (n - 1) as f64)
            .sqrt()
    };
    (mean, min, median, max, stddev)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Time the routine. The return value is passed through
    /// `std::hint::black_box` so the computation is not optimised away.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let warmup_budget = self.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget || warmup_iters == 0 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Calibrate so `sample_size` samples fill the measurement
        // budget. The sample count is clamped to [`MIN_SAMPLES`]: below
        // that there is no spread to report and the row is untrustworthy.
        let sample_size = self.sample_size.max(MIN_SAMPLES);
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample = ((budget_ns / sample_size as f64 / est_ns).floor() as u64).max(1);

        let mut sample_ns = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        let (mean_ns, min_ns, median_ns, max_ns, stddev_ns) = stats(&sample_ns);
        self.report = Some(Report {
            mean_ns,
            min_ns,
            median_ns,
            max_ns,
            stddev_ns,
            samples: sample_size,
            iters_per_sample,
        });
    }
}

/// Bundle benchmark functions into a group runner, as in the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn existing_sink_documents_merge_by_id() {
        let dir = std::env::temp_dir().join(format!("shim-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.json");
        let doc = "{\"schema\":\"criterion-shim/v1\",\"budget_ms\":250,\"results\":[\n\
                   {\"id\":\"a/core/1\",\"min_ns\":1.0,\"samples\":3},\n\
                   {\"id\":\"b/uf/2\",\"min_ns\":2.0,\"samples\":3}\n]}\n";
        std::fs::write(&path, doc).unwrap();
        let entries = load_existing(path.to_str().unwrap());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a/core/1");
        assert_eq!(entries[1].0, "b/uf/2");
        assert!(entries[1].1.starts_with("{\"id\":\"b/uf/2\""));
        // A non-shim file is not imported (it would be overwritten).
        std::fs::write(&path, "{\"something\":\"else\"}").unwrap();
        assert!(load_existing(path.to_str().unwrap()).is_empty());
        // A missing file yields an empty sink.
        assert!(load_existing(dir.join("absent.json").to_str().unwrap()).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn measurement_produces_a_report() {
        let mut c = Criterion {
            test_mode: false,
            budget: Duration::from_millis(5),
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(5);
        let mut ran = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            budget: Duration::from_millis(5),
            filter: None,
        };
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("id", 1), &3u64, |b, x| {
            b.iter(|| {
                ran += 1;
                x + 1
            })
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn sample_counts_are_clamped_to_the_floor() {
        let mut b = Bencher {
            test_mode: false,
            measurement_time: Duration::from_millis(2),
            sample_size: 1,
            report: None,
        };
        b.iter(|| std::hint::black_box(2u64) + 2);
        assert_eq!(b.report.as_ref().unwrap().samples, MIN_SAMPLES);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("deep").id, "deep");
    }

    #[test]
    fn stats_report_min_of_samples_and_spread() {
        let (mean, min, median, max, stddev) = stats(&[4.0, 2.0, 6.0, 8.0]);
        assert_eq!(mean, 5.0);
        assert_eq!(min, 2.0);
        assert_eq!(median, 5.0);
        assert_eq!(max, 8.0);
        // Sample variance of {4,2,6,8} is 20/3.
        assert!((stddev - (20.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (_, min1, median1, _, stddev1) = stats(&[7.0, 3.0, 5.0]);
        assert_eq!(min1, 3.0);
        assert_eq!(median1, 5.0);
        assert!(stddev1 > 0.0);
        let (_, _, _, _, stddev_single) = stats(&[42.0]);
        assert_eq!(stddev_single, 0.0);
    }
}
