//! The strategy combinators: deterministic generation, no shrinking.

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of values for property tests.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy is just a pure sampling function over a seeded RNG.
pub trait Strategy {
    /// The type of generated values (`Debug` so failures can print them).
    type Value: Debug + 'static;

    /// Sample one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + 'static,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps a strategy for subtrees into one for whole trees.
    /// `depth` bounds the recursion; `_desired_size` and `_expected_branch`
    /// are accepted for source compatibility but unused (the real crate
    /// uses them to tune termination probabilities).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // At every level allow falling back to a leaf so generated
            // shapes vary between depth 0 and `depth`.
            let rec = recurse(strat).boxed();
            strat = Union::new_weighted(vec![(1, leaf.clone()), (3, rec)]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cheaply cloneable, like the real crate's).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + 'static,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of a common value type.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Debug + 'static> Union<T> {
    /// Uniform choice over the given strategies.
    pub fn new<I>(variants: I) -> Self
    where
        I: IntoIterator,
        I::Item: Strategy<Value = T> + 'static,
    {
        Self::new_weighted(variants.into_iter().map(|s| (1, s.boxed())).collect())
    }

    /// Weighted choice; weights need not be normalised.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "Union of no strategies");
        let total_weight = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "Union weights sum to zero");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<T: Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, strat) in &self.variants {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// `Vec`s of an exact length — see [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Half-open `usize` ranges are strategies, as in the real crate.
impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
