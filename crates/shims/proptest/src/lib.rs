//! A vendored, dependency-free stand-in for the parts of [`proptest`] this
//! workspace uses (the build environment is offline; see
//! `crates/shims/README.md`).
//!
//! Semantics relative to the real crate:
//!
//! * **Generation** is supported: [`strategy::Strategy`], [`strategy::Just`],
//!   tuples, [`strategy::Union`] (weighted unions / `prop_oneof!`),
//!   `prop_map`, `prop_recursive`, `boxed`, [`collection::vec`], and
//!   `usize` ranges as strategies.
//! * **Shrinking is not implemented.** A failing case reports the seed,
//!   case number, and the `Debug` rendering of every generated input, but
//!   does not minimise it.
//! * Each `proptest!` test runs a **deterministic** stream seeded from the
//!   test's name, so failures reproduce exactly across runs and machines.
//!   Set `PROPTEST_SEED=<u64>` to explore a different stream, and
//!   `PROPTEST_CASES=<n>` to override the case count globally.
//!
//! [`proptest`]: https://docs.rs/proptest

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection {
    //! Strategies for collections (only `vec` with an exact length is
    //! needed here).

    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy producing `Vec`s of exactly `len` elements of `element`.
    ///
    /// (The real crate accepts any size range; the workspace only uses
    /// exact lengths.)
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!` — try another input.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a, for deriving a stable per-test seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drive one property: repeatedly generate inputs and run the body until
/// `config.cases` cases pass. Called by the `proptest!` macro — not public
/// API in the real crate, but harmless here.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> (Result<(), TestCaseError>, String),
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let max_rejects = cases.saturating_mul(16).max(1024);
    while passed < cases {
        let attempt = passed + rejected;
        match case(&mut rng) {
            (Ok(()), _) => passed += 1,
            (Err(TestCaseError::Reject(_)), _) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: `prop_assume!` rejected {rejected} \
                     inputs before {cases} cases passed (seed {seed})"
                );
            }
            (Err(TestCaseError::Fail(msg)), inputs) => panic!(
                "property `{name}` failed at case {attempt} (seed {seed}):\n\
                 {msg}\nminimal failing input not computed (no shrinking); \
                 generated inputs were:\n{inputs}"
            ),
        }
    }
}

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body (values must be `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($lhs),
                    stringify!($rhs),
                    lhs,
                    rhs
                ),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Weighted or unweighted choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declare property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running [`run_property`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg
                    ));)*
                    s
                };
                let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                (body(), inputs)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2u32), Just(3u32)]
    }

    proptest! {
        #[test]
        fn union_stays_in_pool(x in small()) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn tuples_and_map_compose(p in (small(), small()).prop_map(|(a, b)| a + b)) {
            prop_assert!((2..=6).contains(&p), "sum out of range: {}", p);
        }

        #[test]
        fn assume_filters(x in small()) {
            prop_assume!(x != 2);
            prop_assert!(x == 1 || x == 3);
        }

        #[test]
        fn ranges_are_strategies(i in 0..7usize) {
            prop_assert!(i < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_form_parses(x in small()) {
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn recursion_terminates_and_varies() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let depths: Vec<usize> = (0..200).map(|_| depth(&strat.generate(&mut rng))).collect();
        assert!(depths.contains(&0), "never generated a leaf");
        assert!(depths.iter().any(|d| *d >= 2), "never recursed twice");
        assert!(depths.iter().all(|d| *d <= 4), "exceeded recursion depth");
    }

    #[test]
    fn collection_vec_has_exact_len() {
        let strat = crate::collection::vec(small(), 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 5);
        }
    }

    proptest! {
        // Deliberately not `#[test]`: driven by the `should_panic` wrapper
        // below to check the failure report.
        fn always_fails(x in small()) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_inputs() {
        always_fails();
    }

    use rand::SeedableRng;
}
