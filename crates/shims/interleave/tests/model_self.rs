//! Self-tests for the model checker: seeded known-buggy patterns it
//! MUST catch (so the tool cannot silently rot), and known-correct
//! patterns it must pass. Only meaningful under `--cfg interleave`;
//! compiled to an empty test binary otherwise.
#![cfg(interleave)]

use interleave::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use interleave::sync::{Arc, Condvar, Mutex};
use interleave::{thread, Builder, FailureKind};

/// Seeded bug #1: message passing with a Relaxed flag. The data write
/// is not ordered before the flag write, so the reader can observe
/// `flag == 1` while still reading the stale `data == 0`. The weak
/// memory simulation must find this.
#[test]
fn catches_relaxed_message_passing_reorder() {
    let start = std::time::Instant::now();
    let fail = Builder::default()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "stale data behind relaxed flag"
                );
            }
            t.join().unwrap();
        })
        .expect_err("the relaxed message-passing reorder must be caught");
    assert_eq!(fail.kind, FailureKind::Panic);
    assert!(
        fail.message.contains("stale data"),
        "unexpected failure: {}",
        fail.message
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(1),
        "must be caught in <1s"
    );
}

/// The same protocol with Release/Acquire is correct and must pass.
#[test]
fn passes_release_acquire_message_passing() {
    let stats = Builder::default()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        })
        .expect("release/acquire message passing is correct");
    assert!(stats.execs > 1, "should explore more than one schedule");
}

/// Seeded bug #2: the classic AB/BA lock-order inversion. Some
/// interleaving acquires A then blocks on B while the other thread
/// holds B and blocks on A — a deadlock the scheduler must detect.
#[test]
fn catches_ab_ba_deadlock() {
    let start = std::time::Instant::now();
    let fail = Builder::default()
        .check(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join().unwrap();
        })
        .expect_err("the AB/BA deadlock must be caught");
    assert_eq!(fail.kind, FailureKind::Deadlock);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(1),
        "must be caught in <1s"
    );
}

/// Sanity: racing increments through an RMW never lose updates, across
/// every explored schedule.
#[test]
fn rmw_increments_never_lost() {
    interleave::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..3)
            .map(|_| {
                let c2 = Arc::clone(&c);
                thread::spawn(move || {
                    c2.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // join() establishes happens-before, so the final load is exact.
        assert_eq!(c.load(Ordering::Relaxed), 3);
    });
}

/// Sanity: mutex-guarded counter is exact under every schedule.
#[test]
fn mutex_exclusion_holds() {
    interleave::model(|| {
        let c = Arc::new(Mutex::new(0u32));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c2 = Arc::clone(&c);
                thread::spawn(move || {
                    let mut g = c2.lock().unwrap();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

/// A condvar wait whose only wakeup is its own timeout: with
/// `timeouts_fire = true` this terminates, with `timeouts_fire = false`
/// the checker must report it as a deadlock — the lost-wakeup detector.
#[test]
fn lost_wakeup_is_a_deadlock_when_timeouts_disabled() {
    let run = |timeouts_fire: bool| {
        Builder {
            timeouts_fire,
            ..Builder::default()
        }
        .check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cvar) = &*p2;
                let mut done = lock.lock().unwrap();
                while !*done {
                    let (g, timed_out) = cvar
                        .wait_timeout(done, std::time::Duration::from_millis(10))
                        .unwrap();
                    done = g;
                    if timed_out.timed_out() {
                        // Nobody will ever notify; bail on the timeout path.
                        return;
                    }
                }
            });
            t.join().unwrap();
        })
    };
    run(true).expect("timeout path terminates the wait");
    let fail = run(false).expect_err("without timeouts the un-notified wait is a lost wakeup");
    assert_eq!(fail.kind, FailureKind::Deadlock);
}

/// The notify path needs no timeout: a properly signalled condvar wait
/// terminates even with timeouts disabled.
#[test]
fn notified_wait_needs_no_timeout() {
    Builder {
        timeouts_fire: false,
        ..Builder::default()
    }
    .check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut done = lock.lock().unwrap();
            while !*done {
                done = cvar.wait(done).unwrap();
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    })
    .expect("signal-then-wait protocol has no lost wakeup");
}

/// Replay determinism: re-running a failing schedule reproduces it.
#[test]
fn failing_schedule_is_replayable() {
    let fail = Builder::default()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
            });
            assert_eq!(x.load(Ordering::Relaxed), 0, "saw the racing store");
            t.join().unwrap();
        })
        .expect_err("the racing store is visible in some schedule");
    // The recorded schedule replays to the same failure via the decision
    // prefix mechanism (same entry point INTERLEAVE_REPLAY uses).
    assert!(!fail.schedule.is_empty());
    assert!(
        fail.trace.iter().any(|l| l.contains("choice")),
        "trace records decisions"
    );
}
