//! The drop-in contract: outside a model run (and in normal builds,
//! always) the wrappers behave exactly like `std::sync`. These tests
//! compile and pass under BOTH cfgs — under `--cfg interleave` they
//! exercise the direct-mode fallback of the modeled types.

use interleave::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use interleave::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

#[test]
fn atomics_behave_like_std() {
    let u = AtomicU64::new(5);
    assert_eq!(u.fetch_add(2, Ordering::Relaxed), 5);
    assert_eq!(u.fetch_sub(1, Ordering::Relaxed), 7);
    assert_eq!(u.swap(100, Ordering::SeqCst), 6);
    assert_eq!(u.fetch_max(50, Ordering::Relaxed), 100);
    assert_eq!(u.load(Ordering::Acquire), 100);
    assert_eq!(
        u.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(40)),
        Ok(100)
    );
    assert_eq!(u.load(Ordering::Relaxed), 60);

    let s = AtomicUsize::new(1);
    s.store(9, Ordering::Release);
    assert_eq!(s.load(Ordering::Relaxed), 9);

    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::Relaxed));
    assert!(b.load(Ordering::Relaxed));
}

#[test]
fn locks_behave_like_std() {
    let m = Mutex::new(1u32);
    *m.lock().unwrap() += 1;
    assert_eq!(*m.lock().unwrap(), 2);

    let rw = RwLock::new(vec![1, 2]);
    assert_eq!(rw.read().unwrap().len(), 2);
    rw.write().unwrap().push(3);
    assert_eq!(rw.read().unwrap().len(), 3);
}

#[test]
fn condvar_timeout_and_notify_work() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));

    // Timeout path.
    {
        let (lock, cvar) = &*pair;
        let g = lock.lock().unwrap();
        let (_g, t) = cvar.wait_timeout(g, Duration::from_millis(5)).unwrap();
        assert!(t.timed_out());
    }

    // Notify path across a real thread.
    let p2 = Arc::clone(&pair);
    let h = std::thread::spawn(move || {
        let (lock, cvar) = &*p2;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    });
    let (lock, cvar) = &*pair;
    let mut done = lock.lock().unwrap();
    while !*done {
        let (g, _t) = cvar.wait_timeout(done, Duration::from_millis(50)).unwrap();
        done = g;
    }
    drop(done);
    h.join().unwrap();
}

#[test]
fn model_runs_closure_and_spawn_joins() {
    // In normal builds `model` runs once; under --cfg interleave it
    // explores. Either way the invariant must hold.
    interleave::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let h = interleave::thread::spawn(move || c2.fetch_add(1, Ordering::Relaxed));
        h.join().unwrap();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    });
    assert!(interleave::thread::model_tid().is_none());
}
