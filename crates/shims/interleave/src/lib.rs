//! Deterministic concurrency model checking with drop-in `std::sync`
//! wrappers, in the spirit of [loom](https://docs.rs/loom) and
//! CDSChecker/CHESS-style stateless model checkers.
//!
//! The crate has two personalities, switched by the custom rustc cfg
//! `interleave` (`RUSTFLAGS='--cfg interleave'`):
//!
//! * **Normal builds** (`cfg(not(interleave))`): [`sync`] and [`thread`]
//!   are *literal* re-exports of `std::sync` and `std::thread`. A crate
//!   that writes `use interleave::sync::Mutex` compiles to exactly the
//!   code it would with `use std::sync::Mutex` — same types, same
//!   monomorphizations, zero overhead. This is what makes the wrappers
//!   safe to leave in production paths.
//!
//! * **Model builds** (`cfg(interleave)`): the same names resolve to
//!   instrumented primitives that route every operation through a
//!   cooperative scheduler. [`model`] (or [`Builder::check`]) runs a
//!   closure under depth-first exploration of thread interleavings:
//!
//!   - every synchronization operation (atomic load/store/RMW, lock,
//!     unlock, condvar wait/notify, spawn, join) is a *schedule point*
//!     where the scheduler picks which thread runs next;
//!   - exploration is exhaustive up to a **preemption bound**
//!     (CHESS-style): schedules with more than `preemption_bound`
//!     involuntary context switches are pruned, which keeps the space
//!     tractable while catching the overwhelming majority of real bugs;
//!   - non-`SeqCst` atomic loads model **weak memory**: a per-location
//!     store history plus vector clocks determines the set of stores a
//!     load may legally observe (coherence + happens-before), and the
//!     checker branches over every member of that set. `Relaxed` reads
//!     really can see stale values; `Acquire` loads synchronize with
//!     `Release` stores;
//!   - a blocked cycle (every live thread waiting on a lock, a join, or
//!     an un-notified condvar) is reported as a **deadlock**, and a
//!     `Condvar::wait_timeout` whose timeout is the only wakeup is a
//!     **lost wakeup** detectable by running with
//!     [`Builder::timeouts_fire`]` = false`;
//!   - failures replay deterministically: the report carries the
//!     decision schedule and a per-step trace, and setting
//!     `INTERLEAVE_REPLAY=<schedule>` re-runs exactly the failing
//!     interleaving.
//!
//! Model-mode primitives used *outside* a [`model`] run (for example by
//! ordinary unit tests compiled with `--cfg interleave`) fall back to
//! the real `std` primitives, so a model build of a crate still passes
//! its regular test-suite.
//!
//! # What is modeled
//!
//! `Mutex`, `RwLock`, `Condvar` (with timeout), `AtomicU64`,
//! `AtomicUsize`, `AtomicBool`, `thread::{spawn, JoinHandle, yield_now}`.
//!
//! # What is not modeled
//!
//! `mpsc` channels, `Once`/`OnceLock`, scoped threads, spurious condvar
//! wakeups, `sleep`-based timing, and panics used for control flow
//! inside a model. Code under test should drive the modeled primitives
//! directly. `sync::mpsc` et al. are re-exported from `std` unmodified
//! so that production code compiles under both cfgs.

#[cfg(not(interleave))]
mod passthrough {
    /// `std::sync`, verbatim. See the crate docs: in normal builds the
    /// alias modules downstream crates declare resolve to the real
    /// standard-library types with zero indirection.
    pub mod sync {
        pub use std::sync::*;
    }

    /// `std::thread`, verbatim, plus [`model_tid`].
    pub mod thread {
        pub use std::thread::*;

        /// Index of the current model thread, or `None` outside a model
        /// run. Always `None` in normal builds; lets shared code (e.g.
        /// deterministic shard selection) ask cheaply.
        #[inline(always)]
        pub fn model_tid() -> Option<usize> {
            None
        }
    }

    /// Normal builds: run the closure once, directly. The exhaustive
    /// exploration only exists under `--cfg interleave`.
    pub fn model<F>(f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        f();
    }

    /// Configuration for a model run. In normal builds checking
    /// degenerates to a single direct execution.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum involuntary context switches per schedule (unused in
        /// normal builds).
        pub preemption_bound: u32,
        /// Cap on explored executions (unused in normal builds).
        pub max_execs: u64,
        /// Whether `Condvar::wait_timeout` timeouts may fire (unused in
        /// normal builds).
        pub timeouts_fire: bool,
        /// Maximum threads a model may spawn (unused in normal builds).
        pub max_threads: usize,
    }

    impl Default for Builder {
        fn default() -> Self {
            Builder {
                preemption_bound: 2,
                max_execs: 100_000,
                timeouts_fire: true,
                max_threads: 8,
            }
        }
    }

    impl Builder {
        /// Run `f` once. Reported as a single explored execution.
        pub fn check<F>(&self, f: F) -> Result<Stats, Failure>
        where
            F: Fn() + Send + Sync + 'static,
        {
            f();
            Ok(Stats {
                execs: 1,
                max_decision_depth: 0,
            })
        }
    }

    /// Exploration statistics.
    #[derive(Debug, Clone, Copy)]
    pub struct Stats {
        /// Number of complete executions explored.
        pub execs: u64,
        /// Deepest decision sequence seen.
        pub max_decision_depth: usize,
    }

    /// Why a model run failed (see the `cfg(interleave)` docs; normal
    /// builds never construct one).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailureKind {
        /// A model thread panicked.
        Panic,
        /// Every live thread was blocked.
        Deadlock,
        /// The execution budget was exhausted.
        TooManyExecs,
        /// One execution exceeded the operation cap.
        TooLong,
        /// The closure spawned more threads than `max_threads`.
        TooManyThreads,
    }

    /// A model-checking failure (never produced in normal builds, where
    /// `check` runs the closure directly and panics propagate).
    #[derive(Debug, Clone)]
    pub struct Failure {
        /// What went wrong.
        pub kind: FailureKind,
        /// Human-readable description.
        pub message: String,
        /// Decision schedule to replay via `INTERLEAVE_REPLAY`.
        pub schedule: Vec<u32>,
        /// Per-step event trace of the failing execution.
        pub trace: Vec<String>,
    }

    impl std::fmt::Display for Failure {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

#[cfg(not(interleave))]
pub use passthrough::{model, sync, thread, Builder, Failure, FailureKind, Stats};

#[cfg(interleave)]
mod model_impl;

#[cfg(interleave)]
pub use model_impl::{model, sync, thread, Builder, Failure, FailureKind, Stats};
