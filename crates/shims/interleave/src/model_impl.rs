//! The `cfg(interleave)` personality: a stateless model checker.
//!
//! # Architecture
//!
//! One *model run* ([`Builder::check`]) explores many *executions* of
//! the user closure. Each execution spawns real OS threads, but they
//! never run concurrently: a single global `(Mutex<Option<Exec>>,
//! Condvar)` pair passes a token between the scheduler and exactly one
//! model thread. User code runs only while its thread holds the token;
//! every synchronization operation hands the token back to the
//! scheduler, which consults the decision prefix (DFS replay) or
//! defaults to the first option, records `(pick, n_options)`, and hands
//! the token to the chosen thread.
//!
//! Backtracking is classic stateless DFS: after an execution finishes,
//! the deepest decision with an unexplored alternative is incremented,
//! everything after it is discarded, and the next execution replays
//! that prefix. No state snapshots — executions must be deterministic
//! given the decision sequence, which is why model closures must not
//! consult wall-clock time or OS randomness.
//!
//! # Weak memory
//!
//! Each atomic location keeps a bounded history of stores
//! `{value, writer-tid, writer-tick, release-clock}` plus a
//! monotonically increasing sequence number (the modification order).
//! Vector clocks track happens-before. A non-SeqCst load may read any
//! store that (a) is not older than the thread's per-location coherence
//! floor (its last read/write of that location) and (b) is not hidden
//! by a *newer* store the thread already knows happened-before now.
//! When several stores qualify, the choice is a scheduler decision —
//! i.e. the checker branches over stale reads. `Acquire` loads join the
//! release clock of the store they read; RMWs always read the newest
//! store in modification order (C11 atomicity).

use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

// ---------------------------------------------------------------- public API

/// Exploration statistics for a passing model run.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of complete executions explored.
    pub execs: u64,
    /// Deepest decision sequence seen across executions.
    pub max_decision_depth: usize,
}

/// Why a model run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the closure).
    Panic,
    /// Every live thread was blocked.
    Deadlock,
    /// The execution budget was exhausted before the space was covered.
    TooManyExecs,
    /// One execution exceeded the per-execution operation cap
    /// (almost always a spin loop that never yields).
    TooLong,
    /// The closure spawned more threads than `max_threads`.
    TooManyThreads,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description (panic payload, blocked-thread list…).
    pub message: String,
    /// The decision schedule; feed to `INTERLEAVE_REPLAY` to re-run it.
    pub schedule: Vec<u32>,
    /// Per-step event trace of the failing execution.
    pub trace: Vec<String>,
    /// Executions explored before the failure surfaced.
    pub execs: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "interleave: {:?} after {} execution(s): {}",
            self.kind, self.execs, self.message
        )?;
        writeln!(f, "--- failing schedule trace ---")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        let sched: Vec<String> = self.schedule.iter().map(|p| p.to_string()).collect();
        writeln!(
            f,
            "--- replay with INTERLEAVE_REPLAY={} ---",
            sched.join(",")
        )
    }
}

/// Configuration for a model run.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per schedule (CHESS bound).
    pub preemption_bound: u32,
    /// Cap on explored executions (`INTERLEAVE_MAX_EXECS` overrides).
    pub max_execs: u64,
    /// When `false`, `Condvar::wait_timeout` timeouts never fire, so a
    /// waiter whose only wakeup is its timeout deadlocks — this is the
    /// switch that turns lost wakeups into hard failures.
    pub timeouts_fire: bool,
    /// Maximum threads one execution may have live (including main).
    pub max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let max_execs = std::env::var("INTERLEAVE_MAX_EXECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        Builder {
            preemption_bound: 2,
            max_execs,
            timeouts_fire: true,
            max_threads: 8,
        }
    }
}

/// Run `f` under exhaustive bounded exploration; panic with the full
/// trace report on the first failing schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(fail) = Builder::default().check(f) {
        panic!("{fail}");
    }
}

impl Builder {
    /// Explore `f`; `Err` carries the failing schedule instead of
    /// panicking, so tests can assert on seeded bugs.
    pub fn check<F>(&self, f: F) -> Result<Stats, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            cur_tid().is_none(),
            "nested interleave::model runs are not supported"
        );
        let _serial = MODEL_MUTEX.lock().unwrap_or_else(|p| p.into_inner());
        install_quiet_panic_hook();
        let f: SharedFn = std::sync::Arc::new(f);
        let cfg = Cfg {
            preemption_bound: self.preemption_bound,
            timeouts_fire: self.timeouts_fire,
            max_threads: self.max_threads,
        };

        if let Ok(replay) = std::env::var("INTERLEAVE_REPLAY") {
            let prefix: Vec<u32> = replay
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| s.trim().parse().expect("INTERLEAVE_REPLAY: not a number"))
                .collect();
            let out = run_one(&f, &prefix, cfg);
            return match out.failure {
                Some((kind, message)) => Err(Failure {
                    kind,
                    message,
                    schedule: out.decisions.iter().map(|d| d.0).collect(),
                    trace: out.trace,
                    execs: 1,
                }),
                None => Ok(Stats {
                    execs: 1,
                    max_decision_depth: out.decisions.len(),
                }),
            };
        }

        let mut prefix: Vec<u32> = Vec::new();
        let mut execs = 0u64;
        let mut max_depth = 0usize;
        loop {
            let out = run_one(&f, &prefix, cfg);
            execs += 1;
            max_depth = max_depth.max(out.decisions.len());
            if let Some((kind, message)) = out.failure {
                return Err(Failure {
                    kind,
                    message,
                    schedule: out.decisions.iter().map(|d| d.0).collect(),
                    trace: out.trace,
                    execs,
                });
            }
            // Backtrack: bump the deepest decision with room left.
            let mut d = out.decisions;
            loop {
                match d.last().copied() {
                    None => {
                        return Ok(Stats {
                            execs,
                            max_decision_depth: max_depth,
                        })
                    }
                    Some((pick, n)) if pick + 1 < n => {
                        let k = d.len() - 1;
                        prefix = d[..k].iter().map(|x| x.0).collect();
                        prefix.push(pick + 1);
                        break;
                    }
                    Some(_) => {
                        d.pop();
                    }
                }
            }
            if execs >= self.max_execs {
                return Err(Failure {
                    kind: FailureKind::TooManyExecs,
                    message: format!(
                        "exploration budget exhausted ({execs} executions); shrink the model \
                         or raise INTERLEAVE_MAX_EXECS"
                    ),
                    schedule: prefix,
                    trace: Vec::new(),
                    execs,
                });
            }
        }
    }
}

// -------------------------------------------------------------- global state

type SharedFn = std::sync::Arc<dyn Fn() + Send + Sync + 'static>;

struct Global {
    state: StdMutex<Option<Exec>>,
    cv: StdCondvar,
}

static GLOBAL: Global = Global {
    state: StdMutex::new(None),
    cv: StdCondvar::new(),
};
/// One model run at a time per process.
static MODEL_MUTEX: StdMutex<()> = StdMutex::new(());

thread_local! {
    static CUR_TID: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Model-thread index of the calling thread, `None` outside a model.
pub(crate) fn cur_tid() -> Option<usize> {
    CUR_TID.with(|c| c.get())
}

/// Unwind payload used to tear threads down without reporting a panic.
struct CancelToken;

fn cancel_unwind() -> ! {
    resume_unwind(Box::new(CancelToken))
}

/// Keep failing non-final executions from spamming stderr: panics on
/// interleave-named threads are captured into the `Failure` report
/// instead. Installed once; chains to the previous hook for everything
/// else.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("interleave-"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

// ---------------------------------------------------------- execution state

#[derive(Clone, Copy)]
struct Cfg {
    preemption_bound: u32,
    timeouts_fire: bool,
    max_threads: usize,
}

/// Per-execution operation cap; hitting it means a modeled spin loop.
const MAX_OPS: u64 = 200_000;
/// Per-location store history bound (older stores become unreadable,
/// which only ever shrinks the branch set — sound, not complete).
const MAX_STORES: usize = 16;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Active {
    Scheduler,
    Thread(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockOn {
    Lock { lock: usize },
    Cvar { cvar: usize, timeout: bool },
    Join { target: usize },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RunState {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Default, Debug)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }
    fn bump(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }
    fn join(&mut self, o: &VClock) {
        if self.0.len() < o.0.len() {
            self.0.resize(o.0.len(), 0);
        }
        for (i, v) in o.0.iter().enumerate() {
            if *v > self.0[i] {
                self.0[i] = *v;
            }
        }
    }
    /// Does a thread with this clock know about tick `tick` of `tid`?
    fn knows(&self, tid: usize, tick: u64) -> bool {
        self.get(tid) >= tick
    }
}

struct ThreadSt {
    state: RunState,
    clock: VClock,
    /// Coherence floor per atomic location: seq of the newest store this
    /// thread has read or written there.
    last_read: HashMap<usize, u64>,
    /// Set when a cvar wait was ended by its timeout firing.
    wake_timed_out: bool,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        ThreadSt {
            state: RunState::Runnable,
            clock,
            last_read: HashMap::new(),
            wake_timed_out: false,
        }
    }
}

struct Store {
    val: u64,
    tid: usize,
    tick: u64,
    seq: u64,
    /// Release clock: present iff the store had Release semantics.
    sync: Option<VClock>,
}

struct Loc {
    stores: Vec<Store>,
    next_seq: u64,
}

struct LockSt {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Release clock of the last unlocker(s); joined on acquire.
    clock: VClock,
}

struct Exec {
    cfg: Cfg,
    threads: Vec<ThreadSt>,
    locs: Vec<Loc>,
    loc_map: HashMap<usize, usize>,
    locks: Vec<LockSt>,
    lock_map: HashMap<usize, usize>,
    cvar_map: HashMap<usize, usize>,
    n_cvars: usize,
    active: Active,
    prefix: Vec<u32>,
    decisions: Vec<(u32, u32)>,
    preemptions: u32,
    last_run: Option<usize>,
    cancelling: bool,
    failure: Option<(FailureKind, String)>,
    trace: Vec<String>,
    ops: u64,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Exec {
    fn new(prefix: &[u32], cfg: Cfg) -> Self {
        Exec {
            cfg,
            threads: Vec::new(),
            locs: Vec::new(),
            loc_map: HashMap::new(),
            locks: Vec::new(),
            lock_map: HashMap::new(),
            cvar_map: HashMap::new(),
            n_cvars: 0,
            active: Active::Scheduler,
            prefix: prefix.to_vec(),
            decisions: Vec::new(),
            preemptions: 0,
            last_run: None,
            cancelling: false,
            failure: None,
            trace: Vec::new(),
            ops: 0,
            os_handles: Vec::new(),
        }
    }

    /// Record a scheduler/value decision. Single-option "decisions" are
    /// not recorded (nothing to backtrack over), which keeps the
    /// decision vector — and the replay schedule — small.
    fn decide(&mut self, n: u32, what: &str) -> u32 {
        if n <= 1 {
            return 0;
        }
        let i = self.decisions.len();
        let pick = self.prefix.get(i).copied().unwrap_or(0).min(n - 1);
        self.decisions.push((pick, n));
        self.trace
            .push(format!("choice {i}: {what} -> option {pick} of {n}"));
        pick
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some((kind, message));
        }
        self.cancelling = true;
    }

    fn loc_id(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&id) = self.loc_map.get(&addr) {
            return id;
        }
        let id = self.locs.len();
        // The initial value is a store by a pseudo-writer every thread
        // knows (tick 0), so it terminates every visibility scan.
        self.locs.push(Loc {
            stores: vec![Store {
                val: init,
                tid: 0,
                tick: 0,
                seq: 0,
                sync: None,
            }],
            next_seq: 1,
        });
        self.loc_map.insert(addr, id);
        id
    }

    fn lock_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.lock_map.get(&addr) {
            return id;
        }
        let id = self.locks.len();
        self.locks.push(LockSt {
            writer: None,
            readers: Vec::new(),
            clock: VClock::default(),
        });
        self.lock_map.insert(addr, id);
        id
    }

    fn cvar_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.cvar_map.get(&addr) {
            return id;
        }
        let id = self.n_cvars;
        self.n_cvars += 1;
        self.cvar_map.insert(addr, id);
        id
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.state, RunState::Finished))
    }

    /// Unblock threads whose wakeup condition `pred` matches; they
    /// re-attempt their operation when next scheduled.
    fn wake_where(&mut self, pred: impl Fn(&BlockOn) -> bool) {
        for t in &mut self.threads {
            if let RunState::Blocked(on) = t.state {
                if pred(&on) {
                    t.state = RunState::Runnable;
                }
            }
        }
    }
}

type Guard = StdMutexGuard<'static, Option<Exec>>;

// ------------------------------------------------------------- turn passing

/// Running thread: hand the token to the scheduler, wait to be picked
/// again. Returns holding the global lock, with the turn.
fn yield_and_wait(tid: usize) -> Guard {
    let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
    {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        if ex.cancelling {
            drop(g);
            cancel_unwind();
        }
        ex.ops += 1;
        if ex.ops > MAX_OPS {
            ex.fail(
                FailureKind::TooLong,
                format!("execution exceeded {MAX_OPS} operations (spin loop in modeled code?)"),
            );
            GLOBAL.cv.notify_all();
            drop(g);
            cancel_unwind();
        }
        ex.active = Active::Scheduler;
    }
    GLOBAL.cv.notify_all();
    wait_turn_locked(tid, g)
}

/// Wait (already holding the global lock) until it is `tid`'s turn.
fn wait_turn_locked(tid: usize, mut g: Guard) -> Guard {
    loop {
        {
            let ex = g.as_mut().expect("interleave: no execution in progress");
            if ex.cancelling {
                drop(g);
                cancel_unwind();
            }
            if ex.active == Active::Thread(tid) {
                return g;
            }
        }
        g = GLOBAL.cv.wait(g).unwrap_or_else(|p| p.into_inner());
    }
}

/// Block the calling thread on `on` and wait to be woken *and* picked.
fn block_and_wait(tid: usize, on: BlockOn, mut g: Guard) -> Guard {
    {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        ex.threads[tid].state = RunState::Blocked(on);
        ex.active = Active::Scheduler;
    }
    GLOBAL.cv.notify_all();
    wait_turn_locked(tid, g)
}

// ---------------------------------------------------------------- scheduler

fn scheduler_loop() {
    let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
    loop {
        loop {
            let ex = g.as_ref().expect("interleave: no execution in progress");
            if ex.active == Active::Scheduler || ex.all_finished() {
                break;
            }
            g = GLOBAL.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        let ex = g.as_mut().expect("interleave: no execution in progress");
        if ex.all_finished() {
            return;
        }
        if ex.cancelling {
            // Wake everything so blocked threads can unwind, then wait
            // for the remaining finish() notifications.
            GLOBAL.cv.notify_all();
            g = GLOBAL.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            continue;
        }

        // Schedulable set: runnable threads, plus (when timeouts may
        // fire) threads blocked in a timed condvar wait.
        let mut opts: Vec<usize> = Vec::new();
        for (i, t) in ex.threads.iter().enumerate() {
            match t.state {
                RunState::Runnable => opts.push(i),
                RunState::Blocked(BlockOn::Cvar { timeout: true, .. }) if ex.cfg.timeouts_fire => {
                    opts.push(i)
                }
                _ => {}
            }
        }
        if opts.is_empty() {
            let mut blocked: Vec<String> = Vec::new();
            for (i, t) in ex.threads.iter().enumerate() {
                if let RunState::Blocked(on) = t.state {
                    blocked.push(format!("t{i} blocked on {on:?}"));
                }
            }
            ex.fail(
                FailureKind::Deadlock,
                format!("deadlock: {}", blocked.join("; ")),
            );
            GLOBAL.cv.notify_all();
            continue;
        }

        // CHESS preemption bounding: continuing the last-run thread is
        // free; switching away from it while it could still run costs a
        // preemption, and once the bound is spent it is forced.
        let lr = ex.last_run.filter(|l| opts.contains(l));
        if let Some(l) = lr {
            if ex.preemptions >= ex.cfg.preemption_bound {
                opts = vec![l];
            } else {
                opts.retain(|&x| x != l);
                opts.insert(0, l);
            }
        }
        let pick_i = ex.decide(
            opts.len() as u32,
            &format!("schedule one of threads {opts:?}"),
        );
        let pick = opts[pick_i as usize];
        if let Some(l) = lr {
            if pick != l {
                ex.preemptions += 1;
            }
        }
        if let RunState::Blocked(BlockOn::Cvar { .. }) = ex.threads[pick].state {
            // Scheduling a timed waiter = its timeout fires now.
            ex.threads[pick].wake_timed_out = true;
            ex.threads[pick].state = RunState::Runnable;
            ex.trace.push(format!("t{pick}: wait_timeout expires"));
        }
        ex.last_run = Some(pick);
        ex.active = Active::Thread(pick);
        GLOBAL.cv.notify_all();
    }
}

struct Outcome {
    failure: Option<(FailureKind, String)>,
    decisions: Vec<(u32, u32)>,
    trace: Vec<String>,
}

fn run_one(f: &SharedFn, prefix: &[u32], cfg: Cfg) -> Outcome {
    {
        let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
        assert!(g.is_none(), "interleave: overlapping executions");
        let mut ex = Exec::new(prefix, cfg);
        let mut clock = VClock::default();
        clock.bump(0);
        ex.threads.push(ThreadSt::new(clock));
        *g = Some(ex);
    }
    let f2 = std::sync::Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("interleave-0".into())
        .spawn(move || run_model_thread(0, Box::new(move || f2())))
        .expect("interleave: cannot spawn model thread");
    scheduler_loop();
    let (outcome, handles) = {
        let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
        let ex = g.take().expect("interleave: execution vanished");
        (
            Outcome {
                failure: ex.failure,
                decisions: ex.decisions,
                trace: ex.trace,
            },
            ex.os_handles,
        )
    };
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
    outcome
}

fn run_model_thread(tid: usize, body: Box<dyn FnOnce() + Send>) {
    CUR_TID.with(|c| c.set(Some(tid)));
    let r = catch_unwind(AssertUnwindSafe(move || {
        let g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
        drop(wait_turn_locked(tid, g));
        body();
    }));
    finish(tid, r.err());
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn finish(tid: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
    let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(ex) = g.as_mut() {
        ex.threads[tid].state = RunState::Finished;
        ex.wake_where(|on| matches!(on, BlockOn::Join { target } if *target == tid));
        if let Some(p) = panic_payload {
            if !p.is::<CancelToken>() {
                ex.trace
                    .push(format!("t{tid}: panicked: {}", payload_msg(p.as_ref())));
                ex.fail(FailureKind::Panic, payload_msg(p.as_ref()));
            }
        } else {
            ex.trace.push(format!("t{tid}: finished"));
        }
        if ex.active == Active::Thread(tid) {
            ex.active = Active::Scheduler;
        }
    }
    GLOBAL.cv.notify_all();
}

// ------------------------------------------------------------- modeled ops

fn acquiring(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releasing(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn atomic_load(addr: usize, init: u64, tid: usize, ord: Ordering) -> u64 {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    let lid = ex.loc_id(addr, init);
    // Visible-store scan, newest first: stop at the coherence floor,
    // and at the first store this thread already knows about (anything
    // older is hidden behind it).
    let floor = ex.threads[tid].last_read.get(&lid).copied().unwrap_or(0);
    let n = ex.locs[lid].stores.len();
    let mut cand: Vec<usize> = Vec::new();
    if ord == Ordering::SeqCst {
        cand.push(n - 1);
    } else {
        for k in (0..n).rev() {
            let s = &ex.locs[lid].stores[k];
            if s.seq < floor {
                break;
            }
            cand.push(k);
            if ex.threads[tid].clock.knows(s.tid, s.tick) {
                break;
            }
        }
    }
    let pick = ex.decide(
        cand.len() as u32,
        &format!("t{tid} load a{lid}: visible stores"),
    );
    let k = cand[pick as usize];
    let (val, seq, sync) = {
        let s = &ex.locs[lid].stores[k];
        (s.val, s.seq, s.sync.clone())
    };
    if acquiring(ord) {
        if let Some(c) = &sync {
            ex.threads[tid].clock.join(c);
        }
    }
    ex.threads[tid].last_read.insert(lid, seq);
    ex.trace
        .push(format!("t{tid}: load a{lid} -> {val} ({ord:?})"));
    val
}

fn push_store(ex: &mut Exec, lid: usize, tid: usize, val: u64, ord: Ordering) {
    ex.threads[tid].clock.bump(tid);
    let tick = ex.threads[tid].clock.get(tid);
    let sync = releasing(ord).then(|| ex.threads[tid].clock.clone());
    let seq = ex.locs[lid].next_seq;
    ex.locs[lid].next_seq += 1;
    ex.locs[lid].stores.push(Store {
        val,
        tid,
        tick,
        seq,
        sync,
    });
    if ex.locs[lid].stores.len() > MAX_STORES {
        ex.locs[lid].stores.remove(0);
    }
    ex.threads[tid].last_read.insert(lid, seq);
}

fn atomic_store(addr: usize, init: u64, tid: usize, ord: Ordering, val: u64) {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    let lid = ex.loc_id(addr, init);
    push_store(ex, lid, tid, val, ord);
    ex.trace
        .push(format!("t{tid}: store a{lid} <- {val} ({ord:?})"));
}

/// RMW: reads the newest store in modification order (C11 atomicity),
/// applies `f`, writes the result. Returns the old value.
fn atomic_rmw(
    addr: usize,
    init: u64,
    tid: usize,
    ord: Ordering,
    f: &mut dyn FnMut(u64) -> u64,
) -> u64 {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    let lid = ex.loc_id(addr, init);
    let (old, sync) = {
        let s = ex.locs[lid].stores.last().expect("location has no stores");
        (s.val, s.sync.clone())
    };
    if acquiring(ord) {
        if let Some(c) = &sync {
            ex.threads[tid].clock.join(c);
        }
    }
    let new = f(old);
    push_store(ex, lid, tid, new, ord);
    ex.trace
        .push(format!("t{tid}: rmw a{lid} {old} -> {new} ({ord:?})"));
    old
}

/// `fetch_update`: like an RMW whose write is conditional. A `None`
/// from `f` degenerates to a load of the newest store with
/// `fetch_ord` (C11: a failed CAS is a load). `Ok` carries
/// `(old, new)` so the caller can mirror without re-running `f`.
fn atomic_fetch_update(
    addr: usize,
    init: u64,
    tid: usize,
    set_ord: Ordering,
    fetch_ord: Ordering,
    f: &mut dyn FnMut(u64) -> Option<u64>,
) -> Result<(u64, u64), u64> {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    let lid = ex.loc_id(addr, init);
    let (old, seq, sync) = {
        let s = ex.locs[lid].stores.last().expect("location has no stores");
        (s.val, s.seq, s.sync.clone())
    };
    match f(old) {
        Some(new) => {
            if acquiring(set_ord) {
                if let Some(c) = &sync {
                    ex.threads[tid].clock.join(c);
                }
            }
            push_store(ex, lid, tid, new, set_ord);
            ex.trace
                .push(format!("t{tid}: fetch_update a{lid} {old} -> {new}"));
            Ok((old, new))
        }
        None => {
            if acquiring(fetch_ord) {
                if let Some(c) = &sync {
                    ex.threads[tid].clock.join(c);
                }
            }
            ex.threads[tid].last_read.insert(lid, seq);
            ex.trace
                .push(format!("t{tid}: fetch_update a{lid} {old} -> (abort)"));
            Err(old)
        }
    }
}

fn mutex_lock(addr: usize, tid: usize) {
    let mut g = yield_and_wait(tid);
    loop {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        let lid = ex.lock_id(addr);
        let free = ex.locks[lid].writer.is_none() && ex.locks[lid].readers.is_empty();
        if free {
            ex.locks[lid].writer = Some(tid);
            let lc = ex.locks[lid].clock.clone();
            ex.threads[tid].clock.join(&lc);
            ex.trace.push(format!("t{tid}: lock m{lid}"));
            return;
        }
        ex.trace.push(format!("t{tid}: blocked on m{lid}"));
        g = block_and_wait(tid, BlockOn::Lock { lock: lid }, g);
    }
}

/// Release a mutex/rwlock-writer. During teardown (`cancelling`) and
/// panic unwinds, guards drop while threads unwind; release the state
/// silently then — no schedule point, no decisions, and crucially no
/// cancel-unwind from inside a `Drop` (which would abort the process).
fn mutex_unlock(addr: usize, tid: usize) {
    let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
    let silent = std::thread::panicking() || g.as_ref().is_none_or(|ex| ex.cancelling);
    if !silent {
        drop(g);
        g = yield_and_wait(tid);
    }
    let Some(ex) = g.as_mut() else { return };
    let lid = ex.lock_id(addr);
    ex.threads[tid].clock.bump(tid);
    let tc = ex.threads[tid].clock.clone();
    ex.locks[lid].clock = tc;
    ex.locks[lid].writer = None;
    ex.wake_where(|on| matches!(on, BlockOn::Lock { lock } if *lock == lid));
    ex.trace.push(format!("t{tid}: unlock m{lid}"));
}

fn rw_read_lock(addr: usize, tid: usize) {
    let mut g = yield_and_wait(tid);
    loop {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        let lid = ex.lock_id(addr);
        if ex.locks[lid].writer.is_none() {
            ex.locks[lid].readers.push(tid);
            let lc = ex.locks[lid].clock.clone();
            ex.threads[tid].clock.join(&lc);
            ex.trace.push(format!("t{tid}: read-lock m{lid}"));
            return;
        }
        ex.trace.push(format!("t{tid}: blocked on read m{lid}"));
        g = block_and_wait(tid, BlockOn::Lock { lock: lid }, g);
    }
}

fn rw_read_unlock(addr: usize, tid: usize) {
    let mut g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
    let silent = std::thread::panicking() || g.as_ref().is_none_or(|ex| ex.cancelling);
    if !silent {
        drop(g);
        g = yield_and_wait(tid);
    }
    let Some(ex) = g.as_mut() else { return };
    let lid = ex.lock_id(addr);
    ex.threads[tid].clock.bump(tid);
    let tc = ex.threads[tid].clock.clone();
    // A reader's release joins (rather than replaces) the lock clock:
    // a later writer synchronizes with *all* prior readers.
    ex.locks[lid].clock.join(&tc);
    if let Some(pos) = ex.locks[lid].readers.iter().position(|&r| r == tid) {
        ex.locks[lid].readers.remove(pos);
    }
    ex.wake_where(|on| matches!(on, BlockOn::Lock { lock } if *lock == lid));
    ex.trace.push(format!("t{tid}: read-unlock m{lid}"));
}

fn rw_write_lock(addr: usize, tid: usize) {
    // Same acquisition condition as a mutex: no writer and no readers.
    mutex_lock(addr, tid);
}

/// Condvar wait. Atomically releases the mutex and blocks; returns
/// whether the wakeup was the timeout firing. Wakeups leave the thread
/// Runnable; the reacquire loop below runs when it is next scheduled.
fn cv_wait(cv_addr: usize, lock_addr: usize, tid: usize, timeout: bool) -> bool {
    let mut g = yield_and_wait(tid);
    let (cid, lid) = {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        let cid = ex.cvar_id(cv_addr);
        let lid = ex.lock_id(lock_addr);
        // Release the mutex exactly as mutex_unlock would.
        ex.threads[tid].clock.bump(tid);
        let tc = ex.threads[tid].clock.clone();
        ex.locks[lid].clock = tc;
        ex.locks[lid].writer = None;
        ex.wake_where(|on| matches!(on, BlockOn::Lock { lock } if *lock == lid));
        ex.threads[tid].wake_timed_out = false;
        ex.trace.push(format!(
            "t{tid}: cv-wait c{cid} (releases m{lid}, timeout={timeout})"
        ));
        (cid, lid)
    };
    g = block_and_wait(tid, BlockOn::Cvar { cvar: cid, timeout }, g);
    // Woken (notify or timeout); now reacquire the mutex.
    loop {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        let free = ex.locks[lid].writer.is_none() && ex.locks[lid].readers.is_empty();
        if free {
            ex.locks[lid].writer = Some(tid);
            let lc = ex.locks[lid].clock.clone();
            ex.threads[tid].clock.join(&lc);
            let timed_out = ex.threads[tid].wake_timed_out;
            ex.trace.push(format!(
                "t{tid}: cv-wake c{cid} (relock m{lid}, timed_out={timed_out})"
            ));
            return timed_out;
        }
        g = block_and_wait(tid, BlockOn::Lock { lock: lid }, g);
    }
}

fn cv_notify(cv_addr: usize, tid: usize, all: bool) {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    let cid = ex.cvar_id(cv_addr);
    let mut waiters: Vec<usize> = Vec::new();
    for (i, t) in ex.threads.iter().enumerate() {
        if matches!(t.state, RunState::Blocked(BlockOn::Cvar { cvar, .. }) if cvar == cid) {
            waiters.push(i);
        }
    }
    if waiters.is_empty() {
        ex.trace.push(format!("t{tid}: notify c{cid} (no waiters)"));
        return;
    }
    if all {
        for w in waiters {
            ex.threads[w].state = RunState::Runnable;
            ex.trace
                .push(format!("t{tid}: notify_all wakes t{w} on c{cid}"));
        }
    } else {
        let pick = ex.decide(
            waiters.len() as u32,
            &format!("t{tid} notify_one c{cid}: pick waiter"),
        );
        let w = waiters[pick as usize];
        ex.threads[w].state = RunState::Runnable;
        ex.trace
            .push(format!("t{tid}: notify_one wakes t{w} on c{cid}"));
    }
}

fn spawn_model(parent: usize, body: Box<dyn FnOnce() + Send>) -> usize {
    let mut g = yield_and_wait(parent);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    if ex.threads.len() >= ex.cfg.max_threads {
        let max = ex.cfg.max_threads;
        ex.fail(
            FailureKind::TooManyThreads,
            format!("model spawned more than {max} threads"),
        );
        GLOBAL.cv.notify_all();
        drop(g);
        cancel_unwind();
    }
    let child = ex.threads.len();
    // Spawn edge: the child starts knowing everything the parent did.
    ex.threads[parent].clock.bump(parent);
    let clock = ex.threads[parent].clock.clone();
    ex.threads.push(ThreadSt::new(clock));
    ex.trace.push(format!("t{parent}: spawn t{child}"));
    let h = std::thread::Builder::new()
        .name(format!("interleave-{child}"))
        .spawn(move || run_model_thread(child, body))
        .expect("interleave: cannot spawn model thread");
    ex.os_handles.push(h);
    child
}

fn join_model(tid: usize, target: usize) {
    let mut g = yield_and_wait(tid);
    loop {
        let ex = g.as_mut().expect("interleave: no execution in progress");
        if matches!(ex.threads[target].state, RunState::Finished) {
            let tc = ex.threads[target].clock.clone();
            ex.threads[tid].clock.join(&tc);
            ex.trace.push(format!("t{tid}: joined t{target}"));
            return;
        }
        g = block_and_wait(tid, BlockOn::Join { target }, g);
    }
}

fn yield_op(tid: usize) {
    let mut g = yield_and_wait(tid);
    let ex = g.as_mut().expect("interleave: no execution in progress");
    ex.trace.push(format!("t{tid}: yield"));
}

// -------------------------------------------------------- primitive wrappers

mod prim {
    use super::*;

    fn addr<T: ?Sized>(r: &T) -> usize {
        r as *const T as *const () as usize
    }

    // ---- atomics -------------------------------------------------------

    fn u64_to_u64(v: u64) -> u64 {
        v
    }
    fn usize_to_u64(v: usize) -> u64 {
        v as u64
    }
    fn u64_to_usize(v: u64) -> usize {
        v as usize
    }
    fn bool_to_u64(v: bool) -> u64 {
        v as u64
    }
    fn u64_to_bool(v: u64) -> bool {
        v != 0
    }

    macro_rules! atomic_common {
        ($Outer:ident, $Std:ty, $Raw:ty, $to:path, $from:path) => {
            /// Drop-in for the std atomic of the same name; modeled
            /// inside `interleave::model`, plain std outside.
            pub struct $Outer {
                direct: $Std,
            }

            impl $Outer {
                pub const fn new(v: $Raw) -> Self {
                    Self {
                        direct: <$Std>::new(v),
                    }
                }

                fn init(&self) -> u64 {
                    $to(self.direct.load(Ordering::Relaxed))
                }

                /// Mirror a modeled store into the backing std atomic so
                /// direct-mode reads after the model run see the final value.
                fn mirror(&self, v: u64) {
                    self.direct.store($from(v), Ordering::Relaxed);
                }

                pub fn load(&self, ord: Ordering) -> $Raw {
                    match cur_tid() {
                        None => self.direct.load(ord),
                        Some(tid) => $from(atomic_load(addr(self), self.init(), tid, ord)),
                    }
                }

                pub fn store(&self, v: $Raw, ord: Ordering) {
                    match cur_tid() {
                        None => self.direct.store(v, ord),
                        Some(tid) => {
                            atomic_store(addr(self), self.init(), tid, ord, $to(v));
                            self.mirror($to(v));
                        }
                    }
                }

                pub fn swap(&self, v: $Raw, ord: Ordering) -> $Raw {
                    match cur_tid() {
                        None => self.direct.swap(v, ord),
                        Some(tid) => {
                            let old =
                                atomic_rmw(addr(self), self.init(), tid, ord, &mut |_| $to(v));
                            self.mirror($to(v));
                            $from(old)
                        }
                    }
                }
            }

            impl std::fmt::Debug for $Outer {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($Outer))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl Default for $Outer {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    macro_rules! atomic_arith {
        ($Outer:ident, $Raw:ty, $to:path, $from:path) => {
            impl $Outer {
                pub fn fetch_add(&self, v: $Raw, ord: Ordering) -> $Raw {
                    match cur_tid() {
                        None => self.direct.fetch_add(v, ord),
                        Some(tid) => {
                            let old = atomic_rmw(addr(self), self.init(), tid, ord, &mut |o| {
                                $to($from(o).wrapping_add(v))
                            });
                            self.mirror($to($from(old).wrapping_add(v)));
                            $from(old)
                        }
                    }
                }

                pub fn fetch_sub(&self, v: $Raw, ord: Ordering) -> $Raw {
                    match cur_tid() {
                        None => self.direct.fetch_sub(v, ord),
                        Some(tid) => {
                            let old = atomic_rmw(addr(self), self.init(), tid, ord, &mut |o| {
                                $to($from(o).wrapping_sub(v))
                            });
                            self.mirror($to($from(old).wrapping_sub(v)));
                            $from(old)
                        }
                    }
                }

                pub fn fetch_max(&self, v: $Raw, ord: Ordering) -> $Raw {
                    match cur_tid() {
                        None => self.direct.fetch_max(v, ord),
                        Some(tid) => {
                            let old = atomic_rmw(addr(self), self.init(), tid, ord, &mut |o| {
                                $to($from(o).max(v))
                            });
                            self.mirror($to($from(old).max(v)));
                            $from(old)
                        }
                    }
                }

                pub fn fetch_update<F>(
                    &self,
                    set_ord: Ordering,
                    fetch_ord: Ordering,
                    mut f: F,
                ) -> Result<$Raw, $Raw>
                where
                    F: FnMut($Raw) -> Option<$Raw>,
                {
                    match cur_tid() {
                        None => self.direct.fetch_update(set_ord, fetch_ord, f),
                        Some(tid) => {
                            let r = atomic_fetch_update(
                                addr(self),
                                self.init(),
                                tid,
                                set_ord,
                                fetch_ord,
                                &mut |o| f($from(o)).map($to),
                            );
                            match r {
                                Ok((old, new)) => {
                                    self.mirror(new);
                                    Ok($from(old))
                                }
                                Err(old) => Err($from(old)),
                            }
                        }
                    }
                }
            }
        };
    }

    atomic_common!(
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        u64_to_u64,
        u64_to_u64
    );
    atomic_arith!(AtomicU64, u64, u64_to_u64, u64_to_u64);

    atomic_common!(
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        usize_to_u64,
        u64_to_usize
    );
    atomic_arith!(AtomicUsize, usize, usize_to_u64, u64_to_usize);

    atomic_common!(
        AtomicBool,
        std::sync::atomic::AtomicBool,
        bool,
        bool_to_u64,
        u64_to_bool
    );

    // ---- Mutex ---------------------------------------------------------

    /// Drop-in `std::sync::Mutex`. In model mode the `direct` field is
    /// bypassed entirely (exclusion comes from the scheduler); outside
    /// a model it is the real lock guarding `data`.
    pub struct Mutex<T: ?Sized> {
        direct: StdMutex<()>,
        data: UnsafeCell<T>,
    }

    // Safety: same bounds std::sync::Mutex declares; exclusion is
    // provided either by `direct` or by the model scheduler.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        raw: Option<StdMutexGuard<'a, ()>>,
        tid: Option<usize>,
    }

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex {
                direct: StdMutex::new(()),
                data: UnsafeCell::new(value),
            }
        }

        pub fn into_inner(self) -> std::sync::LockResult<T> {
            Ok(self.data.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            match cur_tid() {
                None => match self.direct.lock() {
                    Ok(raw) => Ok(MutexGuard {
                        lock: self,
                        raw: Some(raw),
                        tid: None,
                    }),
                    Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                        lock: self,
                        raw: Some(p.into_inner()),
                        tid: None,
                    })),
                },
                Some(tid) => {
                    mutex_lock(addr(self), tid);
                    Ok(MutexGuard {
                        lock: self,
                        raw: None,
                        tid: Some(tid),
                    })
                }
            }
        }

        pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
            Ok(self.data.get_mut())
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // Safety: exclusivity is guaranteed by `raw` (direct mode)
            // or by the model's lock state (model mode).
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(tid) = self.tid {
                mutex_unlock(addr(self.lock), tid);
            }
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    // ---- RwLock --------------------------------------------------------

    /// Drop-in `std::sync::RwLock`, same dual personality as [`Mutex`].
    pub struct RwLock<T: ?Sized> {
        direct: std::sync::RwLock<()>,
        data: UnsafeCell<T>,
    }

    unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
    unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        // Held for RAII only: keeps the direct-mode read lock alive.
        _raw: Option<std::sync::RwLockReadGuard<'a, ()>>,
        tid: Option<usize>,
    }

    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        // Held for RAII only: keeps the direct-mode write lock alive.
        _raw: Option<std::sync::RwLockWriteGuard<'a, ()>>,
        tid: Option<usize>,
    }

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> Self {
            RwLock {
                direct: std::sync::RwLock::new(()),
                data: UnsafeCell::new(value),
            }
        }

        pub fn into_inner(self) -> std::sync::LockResult<T> {
            Ok(self.data.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> std::sync::LockResult<RwLockReadGuard<'_, T>> {
            match cur_tid() {
                None => match self.direct.read() {
                    Ok(raw) => Ok(RwLockReadGuard {
                        lock: self,
                        _raw: Some(raw),
                        tid: None,
                    }),
                    Err(p) => Err(std::sync::PoisonError::new(RwLockReadGuard {
                        lock: self,
                        _raw: Some(p.into_inner()),
                        tid: None,
                    })),
                },
                Some(tid) => {
                    rw_read_lock(addr(self), tid);
                    Ok(RwLockReadGuard {
                        lock: self,
                        _raw: None,
                        tid: Some(tid),
                    })
                }
            }
        }

        pub fn write(&self) -> std::sync::LockResult<RwLockWriteGuard<'_, T>> {
            match cur_tid() {
                None => match self.direct.write() {
                    Ok(raw) => Ok(RwLockWriteGuard {
                        lock: self,
                        _raw: Some(raw),
                        tid: None,
                    }),
                    Err(p) => Err(std::sync::PoisonError::new(RwLockWriteGuard {
                        lock: self,
                        _raw: Some(p.into_inner()),
                        tid: None,
                    })),
                },
                Some(tid) => {
                    rw_write_lock(addr(self), tid);
                    Ok(RwLockWriteGuard {
                        lock: self,
                        _raw: None,
                        tid: Some(tid),
                    })
                }
            }
        }

        pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
            Ok(self.data.get_mut())
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(tid) = self.tid {
                rw_read_unlock(addr(self.lock), tid);
            }
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(tid) = self.tid {
                mutex_unlock(addr(self.lock), tid);
            }
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RwLock").finish_non_exhaustive()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    // ---- Condvar -------------------------------------------------------

    /// Result of a timed wait; mirrors `std::sync::WaitTimeoutResult`
    /// (which cannot be constructed outside std).
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(pub(super) bool);

    impl WaitTimeoutResult {
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Drop-in `std::sync::Condvar`.
    pub struct Condvar {
        direct: StdCondvar,
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar {
                direct: StdCondvar::new(),
            }
        }

        pub fn wait<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> std::sync::LockResult<MutexGuard<'a, T>> {
            match guard.tid {
                None => {
                    let lock = guard.lock;
                    let mut shell = guard;
                    let raw = shell
                        .raw
                        .take()
                        .expect("direct-mode guard without raw lock");
                    std::mem::forget(shell);
                    match self.direct.wait(raw) {
                        Ok(r2) => Ok(MutexGuard {
                            lock,
                            raw: Some(r2),
                            tid: None,
                        }),
                        Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                            lock,
                            raw: Some(p.into_inner()),
                            tid: None,
                        })),
                    }
                }
                Some(tid) => {
                    let lock = guard.lock;
                    std::mem::forget(guard);
                    cv_wait(addr(self), addr(lock), tid, false);
                    Ok(MutexGuard {
                        lock,
                        raw: None,
                        tid: Some(tid),
                    })
                }
            }
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> std::sync::LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            match guard.tid {
                None => {
                    let lock = guard.lock;
                    let mut shell = guard;
                    let raw = shell
                        .raw
                        .take()
                        .expect("direct-mode guard without raw lock");
                    std::mem::forget(shell);
                    match self.direct.wait_timeout(raw, dur) {
                        Ok((r2, t)) => Ok((
                            MutexGuard {
                                lock,
                                raw: Some(r2),
                                tid: None,
                            },
                            WaitTimeoutResult(t.timed_out()),
                        )),
                        Err(p) => {
                            let (r2, t) = p.into_inner();
                            Err(std::sync::PoisonError::new((
                                MutexGuard {
                                    lock,
                                    raw: Some(r2),
                                    tid: None,
                                },
                                WaitTimeoutResult(t.timed_out()),
                            )))
                        }
                    }
                }
                Some(tid) => {
                    let lock = guard.lock;
                    std::mem::forget(guard);
                    let timed_out = cv_wait(addr(self), addr(lock), tid, true);
                    Ok((
                        MutexGuard {
                            lock,
                            raw: None,
                            tid: Some(tid),
                        },
                        WaitTimeoutResult(timed_out),
                    ))
                }
            }
        }

        pub fn notify_one(&self) {
            match cur_tid() {
                None => self.direct.notify_one(),
                Some(tid) => cv_notify(addr(self), tid, false),
            }
        }

        pub fn notify_all(&self) {
            match cur_tid() {
                None => self.direct.notify_all(),
                Some(tid) => cv_notify(addr(self), tid, true),
            }
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }
}

// ------------------------------------------------------------ public modules

/// Model-aware `std::sync` stand-in. Modeled: `Mutex`, `RwLock`,
/// `Condvar`, `atomic::{AtomicU64, AtomicUsize, AtomicBool}`.
/// Re-exported from std unmodified (NOT modeled — do not use inside
/// model closures): `mpsc`, `Once`, `OnceLock`, `Arc`, `Barrier`.
pub mod sync {
    pub use super::prim::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
    pub use std::sync::{
        mpsc, Arc, Barrier, LockResult, Once, OnceLock, PoisonError, TryLockError, TryLockResult,
        Weak,
    };

    pub mod atomic {
        pub use super::super::prim::{AtomicBool, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

/// Model-aware `std::thread` stand-in. `spawn`/`JoinHandle`/`yield_now`
/// are modeled; the rest passes through to std.
pub mod thread {
    use super::*;

    pub use std::thread::{current, sleep};

    /// Index of the current model thread, or `None` outside a model.
    #[inline]
    pub fn model_tid() -> Option<usize> {
        cur_tid()
    }

    /// Inside a model: a schedule point. Outside: `std::thread::yield_now`.
    pub fn yield_now() {
        match cur_tid() {
            None => std::thread::yield_now(),
            Some(tid) => yield_op(tid),
        }
    }

    enum Inner<T> {
        Os(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            cell: std::sync::Arc<StdMutex<Option<T>>>,
        },
    }

    /// Drop-in `std::thread::JoinHandle` for model-spawned threads.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Os(h) => h.join(),
                Inner::Model { tid, cell } => {
                    let me = cur_tid().expect("model JoinHandle joined outside its model run");
                    join_model(me, tid);
                    Ok(cell
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("joined model thread produced no result"))
                }
            }
        }

        pub fn is_finished(&self) -> bool {
            match &self.0 {
                Inner::Os(h) => h.is_finished(),
                Inner::Model { tid, .. } => {
                    let g = GLOBAL.state.lock().unwrap_or_else(|p| p.into_inner());
                    g.as_ref()
                        .is_none_or(|ex| matches!(ex.threads[*tid].state, RunState::Finished))
                }
            }
        }
    }

    /// Inside a model: register and schedule a new model thread.
    /// Outside: `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match cur_tid() {
            None => JoinHandle(Inner::Os(std::thread::spawn(f))),
            Some(parent) => {
                let cell = std::sync::Arc::new(StdMutex::new(None));
                let c2 = std::sync::Arc::clone(&cell);
                let tid = spawn_model(
                    parent,
                    Box::new(move || {
                        let r = f();
                        *c2.lock().unwrap_or_else(|p| p.into_inner()) = Some(r);
                    }),
                );
                JoinHandle(Inner::Model { tid, cell })
            }
        }
    }
}
