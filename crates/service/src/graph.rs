//! Dependency-graph condensation: strongly connected components
//! (iterative Tarjan) and topological waves.
//!
//! The database's dependency graph has an edge `i → j` when binding `i`'s
//! right-hand side mentions a name that resolves to binding `j`. Because
//! resolution only ever points at *earlier* declarations (ML shadowing),
//! the graph is a DAG in practice and every SCC is a singleton — but the
//! condensation is computed honestly so the scheduler stays correct if a
//! future surface (e.g. `let rec`) introduces genuine cycles; a
//! multi-member SCC is surfaced as an error by the executor rather than
//! checked.
//!
//! Waves realise the parallel schedule: wave 0 holds the components with
//! no dependencies, wave `k+1` the components all of whose dependencies
//! lie in waves `≤ k`. Components within one wave are independent and may
//! be checked concurrently.

/// The condensation of a dependency graph over nodes `0..n`.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Each component's member nodes, in dependency-respecting order
    /// (a component appears after every component it depends on).
    pub comps: Vec<Vec<usize>>,
    /// `comp_of[node]` — index into [`Condensation::comps`].
    pub comp_of: Vec<usize>,
    /// Component indices grouped into topological waves: every
    /// dependency of a component in wave `k` lives in a wave `< k`.
    pub waves: Vec<Vec<usize>>,
}

/// Condense the graph with `n` nodes and `deps[i]` = the nodes `i`
/// depends on. `deps` entries must be `< n`.
pub fn condense(n: usize, deps: &[Vec<usize>]) -> Condensation {
    assert_eq!(deps.len(), n);
    let comps = tarjan(n, deps);
    let mut comp_of = vec![0usize; n];
    for (c, members) in comps.iter().enumerate() {
        for &m in members {
            comp_of[m] = c;
        }
    }
    // Wave of a component: 1 + max wave among dependency components.
    // `comps` is already topologically sorted (dependencies first), so a
    // single left-to-right pass suffices.
    let mut wave_of = vec![0usize; comps.len()];
    for (c, members) in comps.iter().enumerate() {
        let mut w = 0;
        for &m in members {
            for &d in &deps[m] {
                let dc = comp_of[d];
                if dc != c {
                    w = w.max(wave_of[dc] + 1);
                }
            }
        }
        wave_of[c] = w;
    }
    let n_waves = wave_of.iter().map(|w| w + 1).max().unwrap_or(0);
    let mut waves = vec![Vec::new(); n_waves];
    for (c, &w) in wave_of.iter().enumerate() {
        waves[w].push(c);
    }
    Condensation {
        comps,
        comp_of,
        waves,
    }
}

/// Iterative Tarjan SCC. Returns components in topological order
/// (dependencies before dependents, for edges `node → dependency`).
fn tarjan(n: usize, deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // Explicit DFS stack of (node, next child position).
    let mut work: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        work.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < deps[v].len() {
                let w = deps[v][*ci];
                *ci += 1;
                if index[w] == UNSEEN {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        // lint: allow(unwrap) — Tarjan invariant: v is on the stack when its SCC closes
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    // Tarjan emits a component only after everything it reaches (its
    // dependencies) has been emitted, so `comps` is already dependencies-
    // first for `node → dependency` edges.
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_gives_one_comp_per_node_in_waves() {
        // 2 -> 1 -> 0
        let deps = vec![vec![], vec![0], vec![1]];
        let c = condense(3, &deps);
        assert_eq!(c.comps.len(), 3);
        assert_eq!(c.waves.len(), 3);
        for (w, comps) in c.waves.iter().enumerate() {
            assert_eq!(comps.len(), 1);
            assert_eq!(c.comps[comps[0]], vec![w]);
        }
    }

    #[test]
    fn diamond_has_three_waves() {
        // 3 depends on 1 and 2; both depend on 0.
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let c = condense(4, &deps);
        assert_eq!(c.waves.len(), 3);
        assert_eq!(c.waves[0].len(), 1);
        assert_eq!(c.waves[1].len(), 2, "the two middles are independent");
        assert_eq!(c.waves[2].len(), 1);
    }

    #[test]
    fn independent_nodes_share_wave_zero() {
        let deps = vec![vec![], vec![], vec![]];
        let c = condense(3, &deps);
        assert_eq!(c.waves.len(), 1);
        assert_eq!(c.waves[0].len(), 3);
    }

    #[test]
    fn cycles_condense_into_one_component() {
        // 0 <-> 1, and 2 depends on the cycle.
        let deps = vec![vec![1], vec![0], vec![0]];
        let c = condense(3, &deps);
        assert_eq!(c.comps.len(), 2);
        let cycle = c
            .comps
            .iter()
            .find(|m| m.len() == 2)
            .expect("cycle component");
        assert_eq!(cycle, &vec![0, 1]);
        assert_eq!(c.waves.len(), 2);
        assert_eq!(c.comp_of[0], c.comp_of[1]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // The DFS is iterative; a 100k chain must not blow the stack.
        let n = 100_000;
        let deps: Vec<Vec<usize>> = (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let c = condense(n, &deps);
        assert_eq!(c.comps.len(), n);
        assert_eq!(c.waves.len(), n);
    }

    #[test]
    fn comps_are_dependencies_first() {
        let deps = vec![vec![2], vec![0], vec![]];
        let c = condense(3, &deps);
        let pos: Vec<usize> = (0..3)
            .map(|node| c.comps.iter().position(|m| m.contains(&node)).unwrap())
            .collect();
        assert!(pos[2] < pos[0] && pos[0] < pos[1]);
    }
}
