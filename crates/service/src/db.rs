//! The program database: bindings keyed by content hash, a resolved
//! dependency graph with SCC condensation, and Merkle-style cache keys
//! that make invalidation exact.
//!
//! ## Invalidation model
//!
//! Every declaration gets a **content hash** — the FNV-1a hash of its
//! source slice (`let` through `;;`). Its **cache key** combines that
//! hash with the cache keys of the declarations its free variables
//! resolve to, plus the checker configuration:
//!
//! ```text
//! key(d) = H(slice(d), key(dep₁), …, key(depₖ), opts, engine, #use)
//! ```
//!
//! The key is therefore a fingerprint of *everything the binding's
//! scheme can depend on*: edit a declaration and exactly that
//! declaration and its transitive dependents change key; reorder,
//! insert, or delete unrelated declarations and every untouched key is
//! preserved, so the scheme cache keeps serving them. FreezeML's
//! principal-types guarantee (paper Theorem 7) is what makes caching a
//! binding's scheme sound at all: the scheme is a function of the
//! binding and its dependencies' schemes, with no cross-binding
//! inference state to leak.
//!
//! Name resolution follows ML shadowing — each free variable resolves to
//! the *latest earlier* declaration of that name, so the dependency
//! graph is a DAG; the condensation ([`crate::graph`]) is computed
//! anyway and a genuine cycle would surface as an executor error, not a
//! scheduling bug.

use crate::graph::{condense, Condensation};
use crate::hash::{hash_str, Fnv, U64Map};
use crate::sync::Arc;
use freezeml_core::{
    Decl, InstantiationStrategy, Options, ParseError, Program, Span, Symbol, Term, Type, Var,
};
use freezeml_obs::{TraceCtx, Tracer};
use fxhash::FxHashMap;

/// Which inference engine(s) the service drives — mirroring the
/// conformance harness's `ENGINE` selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineSel {
    /// The paper-literal `core` engine only.
    Core,
    /// The union-find engine only — the production configuration.
    Uf,
    /// Both, with a per-binding agreement obligation (differential runs).
    #[default]
    Both,
}

impl EngineSel {
    /// Read the selection from the `ENGINE` environment variable
    /// (`core`, `uf`, or `both`; default [`EngineSel::Both`]).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelt selector silently
    /// running the wrong engine would defeat differential runs.
    pub fn from_env() -> EngineSel {
        match std::env::var("ENGINE") {
            Err(_) => EngineSel::default(),
            Ok(v) => match v.as_str() {
                "core" => EngineSel::Core,
                "uf" => EngineSel::Uf,
                "both" | "" => EngineSel::Both,
                other => panic!("ENGINE must be core|uf|both, got `{other}`"),
            },
        }
    }

    pub(crate) fn tag(self) -> u64 {
        match self {
            EngineSel::Core => 1,
            EngineSel::Uf => 2,
            EngineSel::Both => 3,
        }
    }
}

/// The verdict on one binding.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Well typed at this (closed, canonical) scheme.
    Typed {
        /// The binding's scheme in the service's shared scheme store —
        /// an α-class id the Merkle cache keys directly; the `core::Type`
        /// tree is materialised only on demand at the protocol boundary.
        id: freezeml_engine::SchemeId,
        /// The canonical rendering, memoised per id in the scheme store
        /// (shared `Arc`, so cache hits and `type-of` clone a pointer).
        scheme: crate::sync::Arc<str>,
        /// Residual monomorphic variables that were grounded to `Int`
        /// to keep the environment closed (value restriction; same
        /// defaulting the REPL performs), by canonical name.
        defaulted: Vec<String>,
    },
    /// Ill typed.
    Error {
        /// The error class (Debug rendering of
        /// [`freezeml_engine::ErrorClass`]).
        class: String,
        /// The rendered message.
        message: String,
    },
    /// Not checked because a dependency failed.
    Blocked {
        /// The failing dependency's name.
        on: String,
    },
    /// The two engines disagreed (only under [`EngineSel::Both`]) — a
    /// checker bug, surfaced loudly rather than cached.
    Disagreement {
        /// The oracle's verdict, rendered.
        core: String,
        /// The union-find engine's verdict, rendered.
        uf: String,
    },
}

impl Outcome {
    /// Is this a successful scheme?
    pub fn is_typed(&self) -> bool {
        matches!(self, Outcome::Typed { .. })
    }

    /// One-line rendering for reports and diffs.
    pub fn display(&self) -> String {
        match self {
            Outcome::Typed {
                scheme, defaulted, ..
            } if defaulted.is_empty() => scheme.to_string(),
            Outcome::Typed {
                scheme, defaulted, ..
            } => {
                format!("{scheme}  (defaulted: {})", defaulted.join(", "))
            }
            Outcome::Error { message, .. } => format!("✕ ({message})"),
            Outcome::Blocked { on } => format!("blocked on `{on}`"),
            Outcome::Disagreement { core, uf } => {
                format!("engines disagree: core gave {core}, union-find gave {uf}")
            }
        }
    }
}

/// One analysed declaration: its position in the document plus a shared
/// handle on the parsed chunk (term, annotation, free variables). The
/// handle is an [`std::sync::Arc`] into the front-end's parse cache, so
/// re-analysing a document after an edit clones no terms for the
/// untouched declarations.
#[derive(Clone, Debug)]
pub struct DeclInfo {
    /// The whole declaration, `let` through `;;` (absolute).
    pub span: Span,
    /// The bound name (absolute).
    pub name_span: Span,
    chunk: Arc<ParsedDecl>,
}

impl DeclInfo {
    /// The bound name.
    pub fn name(&self) -> &'static str {
        self.chunk.name.as_str()
    }

    /// The bound name as an interned symbol.
    pub fn name_sym(&self) -> Symbol {
        self.chunk.name
    }

    /// The annotation, if any.
    pub fn ann(&self) -> Option<&Type> {
        self.chunk.ann.as_ref()
    }

    /// The free term variables of the right-hand side.
    pub fn free_vars(&self) -> &[Var] {
        &self.chunk.fv
    }

    /// The probe term whose type is the declaration's scheme —
    /// `let x (: A)? = M in ⌈x⌉` (see [`freezeml_core::Decl::probe_term`]).
    pub fn probe_term(&self) -> Term {
        let x = Var::from_symbol(self.chunk.name);
        match &self.chunk.ann {
            None => Term::Let(
                x,
                Box::new(self.chunk.term.clone()),
                Box::new(Term::FrozenVar(x)),
            ),
            Some(ann) => Term::LetAnn(
                x,
                ann.clone(),
                Box::new(self.chunk.term.clone()),
                Box::new(Term::FrozenVar(x)),
            ),
        }
    }
}

/// A parsed program analysed for checking: resolved dependencies,
/// condensation, and cache keys.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The source text the program was parsed from (spans index into it).
    pub src: String,
    /// Does the program request the Figure 2 prelude (`#use prelude`)?
    pub uses_prelude: bool,
    /// The declarations, in order.
    pub decls: Vec<DeclInfo>,
    /// `deps[i]` — indices of the declarations binding `i` depends on.
    pub deps: Vec<Vec<usize>>,
    /// The SCC condensation and its topological waves.
    pub cond: Condensation,
    /// `keys[i]` — the Merkle cache key of binding `i`.
    pub keys: Vec<u64>,
}

/// A database build failure: the program did not parse.
pub type AnalyzeError = ParseError;

/// Parse and analyse a program under the given configuration.
///
/// # Errors
///
/// A [`ParseError`] when the text is not a well-formed program.
pub fn analyze(src: &str, opts: &Options, engine: EngineSel) -> Result<Analysis, AnalyzeError> {
    let program = freezeml_core::parse_program(src)?;
    Ok(analyze_parsed(program, src, opts, engine))
}

// -------------------------------------------------- incremental front-end

/// A parsed declaration, shared between the parse cache and analyses.
#[derive(Debug)]
struct ParsedDecl {
    name: Symbol,
    ann: Option<Type>,
    term: Term,
    /// Slice-relative declaration span (`let` through `;;` — a chunk may
    /// carry leading comments the declaration span excludes).
    decl_rel: Span,
    /// Slice-relative name span.
    name_rel: Span,
    /// Free term variables of the right-hand side.
    fv: Vec<Var>,
}

impl ParsedDecl {
    fn from_decl(d: Decl) -> (Arc<ParsedDecl>, Span) {
        let fv = d.term.free_vars();
        let span = d.span;
        (
            Arc::new(ParsedDecl {
                name: d.name,
                ann: d.ann,
                term: d.term,
                decl_rel: d.span,
                name_rel: d.name_span,
                fv,
            }),
            span,
        )
    }
}

/// One declaration chunk, cached by the hash of its source slice.
#[derive(Clone)]
struct CachedChunk {
    /// The exact slice (collision guard for the 64-bit key).
    slice: String,
    /// Pragmas in the chunk, with slice-relative spans.
    pragmas: Vec<(String, String, Span)>,
    /// The declaration, if the chunk holds one.
    decl: Option<Arc<ParsedDecl>>,
}

/// A declaration-level parse cache: the expensive parts of analysing a
/// document — term construction and free-variable collection — are
/// cached per declaration slice and shared by `Arc`, so an edit
/// re-parses only the touched declaration(s) and clones no terms for
/// the rest. This is what keeps a warm edit's fixed costs far below a
/// cold check's (see `EXPERIMENTS.md` for numbers).
#[derive(Default)]
pub struct Frontend {
    chunks: U64Map<CachedChunk>,
    /// Chunk lookups served from the cache (observability; plain
    /// fields — the whole `Frontend` already sits behind the hub's
    /// mutex).
    hits: u64,
    /// Chunk lookups that had to re-parse.
    misses: u64,
}

impl Frontend {
    /// Number of cached declaration chunks (observability).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Chunk lookups served from the cache since process start.
    pub fn parse_hits(&self) -> u64 {
        self.hits
    }

    /// Chunk lookups that re-parsed their slice.
    pub fn parse_misses(&self) -> u64 {
        self.misses
    }

    /// The raw source slices of every cached chunk — what the
    /// persistence layer writes out. Slices, not parse trees: terms
    /// hold interned symbols that don't survive a process boundary, and
    /// re-parsing a chunk is cheap next to re-inferring it.
    pub(crate) fn export_slices(&self) -> Vec<String> {
        self.chunks.values().map(|c| c.slice.clone()).collect()
    }

    /// Re-parse and cache one persisted slice (load path). Returns
    /// whether the slice was accepted — a slice that no longer parses
    /// (e.g. persisted by a different version) is simply skipped.
    pub(crate) fn absorb_slice(&mut self, slice: &str) -> bool {
        if self.chunks.len() > 8192 {
            return false; // respect the analyze_cached cap
        }
        let key = hash_str(slice);
        if matches!(self.chunks.get(&key), Some(c) if c.slice == slice) {
            return true;
        }
        let Ok(parsed) = freezeml_core::parse_program(slice) else {
            return false;
        };
        if parsed.decls.len() > 1 {
            return false; // cached chunks hold at most one declaration
        }
        self.chunks.insert(
            key,
            CachedChunk {
                slice: slice.to_string(),
                pragmas: parsed.pragmas,
                decl: parsed
                    .decls
                    .into_iter()
                    .next()
                    .map(|d| ParsedDecl::from_decl(d).0),
            },
        );
        true
    }
}

/// The whole-document cache key: text plus the same configuration
/// fingerprint the Merkle keys mix in. Two sessions with different
/// options or engines can share one hub without serving each other's
/// reports.
pub fn doc_key(src: &str, opts: &Options, engine: EngineSel) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(u64::from(opts.value_restriction));
    h.write_u64(match opts.instantiation {
        InstantiationStrategy::Variable => 0,
        InstantiationStrategy::Eliminator => 1,
    });
    h.write_u64(engine.tag());
    h.write_str(src);
    h.finish()
}

/// An independent check digest for the whole-document cache. The
/// content hash mixes adjacent words only lightly before the final
/// avalanche, so two *structurally similar* documents (same length,
/// differing in a couple of nearby words — exactly what an edit stream
/// produces) can collide at realistic document counts. A doc-cache hit
/// therefore verifies this second digest too — seeded differently, so
/// the state-dependent collision condition of one hash is uncorrelated
/// with the other's — making a false hit require a simultaneous
/// 128-bit collision.
pub fn doc_verify(src: &str) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(0xD0C5_ECC0_5A17_ED00);
    h.write_str(src);
    h.finish()
}

/// Split source text into declaration chunks: each chunk ends at a `;;`
/// (comments are honoured — a `;;` after `--` on a line is text). The
/// scan is exact for the surface language because `;;` cannot occur
/// inside a term or type, and a final chunk without `;;` is returned
/// too (it must be pragmas-only or a parse error, which the per-chunk
/// parse reports at the right offset).
fn chunk_spans(src: &str) -> Vec<(usize, usize)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b';' if bytes.get(i + 1) == Some(&b';') => {
                out.push((start, i + 2));
                i += 2;
                start = i;
            }
            _ => i += 1,
        }
    }
    // Trim leading whitespace off every chunk (so a reindented but
    // otherwise untouched declaration still hits the cache) and keep a
    // non-empty trailer. Only the lexer's whitespace (space, tab, CR,
    // LF) is trimmed: `str::trim_start` would also eat Unicode
    // whitespace (NBSP, U+2028, …) that the lexer *rejects*, silently
    // accepting programs the plain front-end errors on.
    const LEXER_WS: [char; 4] = [' ', '\t', '\n', '\r'];
    let mut trimmed: Vec<(usize, usize)> = Vec::with_capacity(out.len() + 1);
    let shift = |s: usize, e: usize| -> (usize, usize) {
        let skipped = src[s..e].len() - src[s..e].trim_start_matches(LEXER_WS).len();
        (s + skipped, e)
    };
    for (s, e) in out {
        trimmed.push(shift(s, e));
    }
    if !src[start..].trim_matches(LEXER_WS).is_empty() {
        trimmed.push(shift(start, src.len()));
    }
    trimmed
}

/// Like [`analyze`], but with a declaration-level parse cache: only
/// chunks whose source slice changed since the last call are re-parsed.
///
/// # Errors
///
/// A [`ParseError`] (positions are absolute into `src`).
pub fn analyze_cached(
    fe: &mut Frontend,
    src: &str,
    opts: &Options,
    engine: EngineSel,
) -> Result<Analysis, AnalyzeError> {
    analyze_cached_traced(fe, src, opts, engine, &Tracer::off(), TraceCtx::default())
}

/// [`analyze_cached`] with trace context: the chunk-parsing loop and the
/// dependency-graph construction each get a span (`parse`, `dep-graph`)
/// on the given tracer, and chunk-cache hits/misses are counted on the
/// frontend.
pub fn analyze_cached_traced(
    fe: &mut Frontend,
    src: &str,
    opts: &Options,
    engine: EngineSel,
    tracer: &Tracer,
    ctx: TraceCtx,
) -> Result<Analysis, AnalyzeError> {
    if fe.chunks.len() > 8192 {
        fe.chunks.clear(); // crude cap; the scheme cache is what matters
    }
    let mut pragmas = Vec::new();
    let mut decls = Vec::new();
    let mut content = Vec::new();
    let parse_span = tracer.span("parse", ctx);
    for (start, end) in chunk_spans(src) {
        let slice = &src[start..end];
        let key = hash_str(slice);
        let hit = matches!(fe.chunks.get(&key), Some(c) if c.slice == slice);
        if hit {
            fe.hits += 1;
        } else {
            fe.misses += 1;
            let parsed = freezeml_core::parse_program(slice).map_err(|e| ParseError {
                msg: e.msg,
                pos: e.pos + start,
            })?;
            debug_assert!(parsed.decls.len() <= 1, "one `;;` per chunk");
            let chunk = CachedChunk {
                slice: slice.to_string(),
                pragmas: parsed.pragmas,
                decl: parsed
                    .decls
                    .into_iter()
                    .next()
                    .map(|d| ParsedDecl::from_decl(d).0),
            };
            fe.chunks.insert(key, chunk);
        }
        // lint: allow(unwrap) — entry inserted two lines above under the same lock
        let chunk = fe.chunks.get(&key).expect("present or just inserted");
        for (name, arg, span) in &chunk.pragmas {
            pragmas.push((
                name.clone(),
                arg.clone(),
                Span {
                    start: span.start + start,
                    end: span.end + start,
                },
            ));
        }
        if let Some(parsed) = &chunk.decl {
            let (decl_rel, name_rel) = (parsed.decl_rel, parsed.name_rel);
            let span = Span {
                start: decl_rel.start + start,
                end: decl_rel.end + start,
            };
            decls.push(DeclInfo {
                span,
                name_span: Span {
                    start: name_rel.start + start,
                    end: name_rel.end + start,
                },
                chunk: Arc::clone(parsed),
            });
            // The Merkle content hash covers exactly the declaration
            // (`let` through `;;`) — NOT the whole chunk, which may carry
            // leading comments: a comment-only edit re-parses the chunk
            // but must not invalidate the binding's scheme. This also
            // keeps [`analyze`] and [`analyze_cached`] key-compatible.
            content.push(hash_str(src.get(span.start..span.end).unwrap_or_default()));
        }
    }
    drop(parse_span);
    let _dep_span = tracer.span("dep-graph", ctx);
    Ok(build_analysis(pragmas, decls, content, src, opts, engine))
}

/// Analyse an already-parsed program (spans must index into `src`).
pub fn analyze_parsed(program: Program, src: &str, opts: &Options, engine: EngineSel) -> Analysis {
    let pragmas = program.pragmas;
    let decls: Vec<DeclInfo> = program
        .decls
        .into_iter()
        .map(|d| {
            let name_span = d.name_span;
            let (chunk, span) = ParsedDecl::from_decl(d);
            DeclInfo {
                span,
                name_span,
                chunk,
            }
        })
        .collect();
    let content = decls
        .iter()
        .map(|d| hash_str(src.get(d.span.start..d.span.end).unwrap_or_default()))
        .collect();
    build_analysis(pragmas, decls, content, src, opts, engine)
}

fn build_analysis(
    pragmas: Vec<(String, String, Span)>,
    decls: Vec<DeclInfo>,
    content: Vec<u64>,
    src: &str,
    opts: &Options,
    engine: EngineSel,
) -> Analysis {
    let n = decls.len();
    let uses_prelude = pragmas
        .iter()
        .any(|(name, arg, _)| name == "use" && arg == "prelude");

    // Resolve each free variable to the latest earlier declaration of
    // that name (ML shadowing), via an incrementally maintained
    // name → latest-index map — O(total free variables), not O(n²).
    let mut latest: FxHashMap<Symbol, usize> =
        FxHashMap::with_capacity_and_hasher(n, Default::default());
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
    for (i, d) in decls.iter().enumerate() {
        let mut ds: Vec<usize> = d
            .free_vars()
            .iter()
            .filter_map(|v| v.symbol().and_then(|name| latest.get(&name).copied()))
            .collect();
        ds.sort_unstable();
        ds.dedup();
        deps.push(ds);
        latest.insert(d.name_sym(), i);
    }
    let cond = condense(n, &deps);

    // Configuration fingerprint, mixed into every key: the same binding
    // under a different mode, engine, or prelude is a different cache
    // entry.
    let mut cfg = Fnv::new();
    cfg.write_u64(u64::from(opts.value_restriction));
    cfg.write_u64(match opts.instantiation {
        InstantiationStrategy::Variable => 0,
        InstantiationStrategy::Eliminator => 1,
    });
    cfg.write_u64(engine.tag());
    cfg.write_u64(u64::from(uses_prelude));
    let cfg = cfg.finish();

    // Keys in declaration order: dependencies point backwards, so each
    // key only needs earlier keys. The slice content enters through the
    // already-computed per-chunk content hash (one pass over the text,
    // not two).
    let mut keys = vec![0u64; n];
    for i in 0..n {
        let mut h = Fnv::new();
        h.write_u64(cfg);
        h.write_u64(content[i]);
        for &dep in &deps[i] {
            h.write_u64(keys[dep]);
        }
        keys[i] = h.finish();
    }

    Analysis {
        src: src.to_string(),
        uses_prelude,
        decls,
        deps,
        cond,
        keys,
    }
}

impl Analysis {
    /// The transitive dependents of binding `i` (excluding `i` itself) —
    /// exactly the set an edit to `i` invalidates beyond `i`.
    pub fn dependents(&self, i: usize) -> Vec<usize> {
        let n = self.decls.len();
        let mut hit = vec![false; n];
        hit[i] = true;
        // deps point backwards, so one forward pass closes the set.
        for j in i + 1..n {
            if self.deps[j].iter().any(|&d| hit[d]) {
                hit[j] = true;
            }
        }
        (i + 1..n).filter(|&j| hit[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_analysis(src: &str) -> Analysis {
        analyze(src, &Options::default(), EngineSel::Uf).unwrap()
    }

    const DIAMOND: &str = "#use prelude\n\
        let base = 1;;\n\
        let l = plus base 1;;\n\
        let r = plus base 2;;\n\
        let top = plus l r;;\n";

    #[test]
    fn diamond_waves_expose_parallelism() {
        let a = std_analysis(DIAMOND);
        assert_eq!(a.cond.waves.len(), 3);
        assert_eq!(a.cond.waves[1].len(), 2, "l and r are independent");
        assert_eq!(a.dependents(0), vec![1, 2, 3]);
        assert_eq!(a.dependents(1), vec![3]);
        assert_eq!(a.dependents(3), Vec::<usize>::new());
    }

    #[test]
    fn editing_a_binding_changes_its_key_and_its_dependents() {
        let a = std_analysis(DIAMOND);
        let b = std_analysis(&DIAMOND.replace("let l = plus base 1;;", "let l = plus base 7;;"));
        assert_ne!(a.keys[1], b.keys[1], "edited binding");
        assert_ne!(a.keys[3], b.keys[3], "transitive dependent");
        assert_eq!(a.keys[0], b.keys[0], "untouched dependency");
        assert_eq!(a.keys[2], b.keys[2], "untouched sibling");
    }

    #[test]
    fn inserting_an_unrelated_binding_preserves_keys() {
        let b = std_analysis(&DIAMOND.replace(
            "let top = plus l r;;",
            "let noise = 9;;\nlet top = plus l r;;",
        ));
        let a = std_analysis(DIAMOND);
        for (name, i_a) in [("base", 0), ("l", 1), ("r", 2)] {
            assert_eq!(a.decls[i_a].name(), name);
            assert_eq!(a.keys[i_a], b.keys[i_a], "{name} key stable");
        }
        // `top` moved but its slice and dep keys are unchanged.
        assert_eq!(a.keys[3], b.keys[4]);
    }

    #[test]
    fn shadowing_redirects_keys() {
        let a = std_analysis("let x = 1;;\nlet y = x;;\n");
        let b = std_analysis("let x = 1;;\nlet x = true;;\nlet y = x;;\n");
        // y's slice is identical but now resolves to the shadowing x.
        assert_ne!(a.keys[1], b.keys[2]);
    }

    #[test]
    fn comment_edits_do_not_invalidate_schemes() {
        let mut fe = Frontend::default();
        let opts = Options::default();
        let with_note = "-- note\nlet x = 1;;\nlet y = x;;\n";
        let a = analyze_cached(&mut fe, with_note, &opts, EngineSel::Uf).unwrap();
        let b = analyze_cached(
            &mut fe,
            "-- a completely different note\nlet x = 1;;\nlet y = x;;\n",
            &opts,
            EngineSel::Uf,
        )
        .unwrap();
        assert_eq!(a.keys, b.keys, "comment-only edits keep every key");
        // …and the cached and plain analyses produce compatible keys.
        let c = analyze(with_note, &opts, EngineSel::Uf).unwrap();
        assert_eq!(a.keys, c.keys);
        // A comment *inside* the declaration is part of its content.
        let d = analyze_cached(
            &mut fe,
            "-- note\nlet x = 1 -- inline\n;;\nlet y = x;;\n",
            &opts,
            EngineSel::Uf,
        )
        .unwrap();
        assert_ne!(a.keys[0], d.keys[0]);
    }

    #[test]
    fn configuration_is_part_of_the_key() {
        let a = std_analysis("let x = 1;;");
        let b = analyze("let x = 1;;", &Options::default(), EngineSel::Core).unwrap();
        let c = analyze("let x = 1;;", &Options::pure_freezeml(), EngineSel::Uf).unwrap();
        assert_ne!(a.keys[0], b.keys[0]);
        assert_ne!(a.keys[0], c.keys[0]);
    }

    #[test]
    fn engine_sel_from_env_default_is_both() {
        assert_eq!(EngineSel::default(), EngineSel::Both);
    }

    /// The cached front-end must agree with the plain one: same
    /// parse verdict, and on success the same declarations, spans,
    /// pragmas, and Merkle keys.
    fn assert_cached_matches_plain(src: &str) {
        let opts = Options::default();
        let mut fe = Frontend::default();
        let cached = analyze_cached(&mut fe, src, &opts, EngineSel::Uf);
        let plain = analyze(src, &opts, EngineSel::Uf);
        match (&cached, &plain) {
            (Ok(c), Ok(p)) => {
                assert_eq!(
                    c.decls.iter().map(DeclInfo::name).collect::<Vec<_>>(),
                    p.decls.iter().map(DeclInfo::name).collect::<Vec<_>>(),
                    "decl names diverge on {src:?}"
                );
                assert_eq!(
                    c.decls.iter().map(|d| d.span).collect::<Vec<_>>(),
                    p.decls.iter().map(|d| d.span).collect::<Vec<_>>(),
                    "decl spans diverge on {src:?}"
                );
                assert_eq!(c.keys, p.keys, "cache keys diverge on {src:?}");
                assert_eq!(c.uses_prelude, p.uses_prelude, "{src:?}");
            }
            (Err(_), Err(_)) => {}
            (c, p) => panic!(
                "front-ends disagree on {src:?}: cached {:?}, plain {:?}",
                c.as_ref().map(|_| "ok").map_err(|e| e.to_string()),
                p.as_ref().map(|_| "ok").map_err(|e| e.to_string())
            ),
        }
        // A second cached pass (every chunk warm) must be identical too.
        let warm = analyze_cached(&mut fe, src, &opts, EngineSel::Uf);
        match (&cached, &warm) {
            (Ok(a), Ok(b)) => assert_eq!(a.keys, b.keys, "warm pass diverges on {src:?}"),
            (Err(a), Err(b)) => assert_eq!(a, b, "warm pass diverges on {src:?}"),
            _ => panic!("warm pass flipped the verdict on {src:?}"),
        }
    }

    #[test]
    fn chunker_honours_semis_inside_comments() {
        for src in [
            // `;;` inside a line comment is text, not a terminator.
            "let x = 1 -- not yet ;;\n;;\nlet y = x;;\n",
            // …including a comment that itself contains `--` again
            // ("nested" comments collapse to one line comment).
            "let x = 1 -- outer -- inner ;; still text\n;;\nlet y = x;;\n",
            // A comment-only line with `;;` between declarations.
            "let x = 1;;\n-- interlude ;; here\nlet y = x;;\n",
            // A `;;` inside a comment after a real `;;` on one line.
            "let x = 1;; -- tail ;; comment\nlet y = x;;\n",
        ] {
            assert_cached_matches_plain(src);
            let a = std_analysis(src);
            assert_eq!(a.decls.len(), 2, "{src:?}");
            assert_eq!(a.decls[0].name(), "x");
            assert_eq!(a.decls[1].name(), "y");
        }
        // Comment at the very start, its `;;` inert.
        let src = "-- leading ;;\nlet x = 1;;\n";
        assert_cached_matches_plain(src);
        let a = std_analysis(src);
        assert_eq!(a.decls.len(), 1);
        assert_eq!(a.decls[0].name(), "x");
    }

    #[test]
    fn chunker_handles_eof_without_trailing_newline() {
        // Well-formed program, no trailing newline after the final `;;`.
        assert_cached_matches_plain("let x = 1;;\nlet y = x;;");
        // Comment (containing `;;`) runs to EOF without a newline.
        assert_cached_matches_plain("let x = 1;; -- trailing ;; to eof");
        // A comment alone, unterminated.
        assert_cached_matches_plain("-- only a comment ;;");
        // Declaration missing its `;;` at EOF: both front-ends must
        // report the parse error at the same position.
        let opts = Options::default();
        let mut fe = Frontend::default();
        let src = "let x = 1;;\nlet y = x";
        let cached = analyze_cached(&mut fe, src, &opts, EngineSel::Uf).unwrap_err();
        let plain = analyze(src, &opts, EngineSel::Uf).unwrap_err();
        assert_eq!(cached.pos, plain.pos, "error positions diverge");
        assert_eq!(cached.pos, src.len());
        // A declaration whose `;;` sits inside a comment is unterminated.
        assert_cached_matches_plain("let x = 1 -- ;;");
        // A stray `;;` after the last declaration.
        assert_cached_matches_plain("let x = 1;;;;");
    }

    #[test]
    fn chunker_trims_only_lexer_whitespace() {
        // NBSP is *not* surface whitespace: the lexer rejects it, and the
        // chunker must not silently trim it into acceptance.
        for src in [
            "let x = 1;;\u{a0}let y = 2;;",
            "let x = 1;;\u{a0}",
            "\u{2028}let x = 1;;",
        ] {
            assert_cached_matches_plain(src);
            assert!(
                analyze(src, &Options::default(), EngineSel::Uf).is_err(),
                "{src:?} should be a lex error"
            );
        }
        // Ordinary reindentation still hits the cache.
        let opts = Options::default();
        let mut fe = Frontend::default();
        let a = analyze_cached(&mut fe, "let x = 1;;\nlet y = x;;", &opts, EngineSel::Uf).unwrap();
        let b = analyze_cached(
            &mut fe,
            "let x = 1;;\n\t  let y = x;;",
            &opts,
            EngineSel::Uf,
        )
        .unwrap();
        assert_eq!(a.keys, b.keys, "reindentation keeps keys");
    }

    #[test]
    fn identical_chunks_share_one_cache_entry() {
        // ML shadowing: the same slice twice must produce two DeclInfos
        // (distinct spans) off one cached parse, with distinct keys
        // (the second resolves its deps differently — here, none — but
        // shadowing still orders them).
        let opts = Options::default();
        let mut fe = Frontend::default();
        let src = "let x = 1;;\nlet x = 1;;\nlet y = x;;\n";
        let a = analyze_cached(&mut fe, src, &opts, EngineSel::Uf).unwrap();
        assert_eq!(a.decls.len(), 3);
        assert_ne!(a.decls[0].span, a.decls[1].span, "spans are per-chunk");
        assert_eq!(a.deps[2], vec![1], "y resolves to the shadowing x");
        assert_cached_matches_plain(src);
    }
}
