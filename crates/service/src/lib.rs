//! # FreezeML program-checking service
//!
//! The paper evaluates single expressions; FreezeML's home (the Links
//! implementation, §6) checks whole programs of top-level bindings. This
//! crate turns the workspace's checkers into a **long-lived,
//! incrementally updating, parallel program-checking service** — the
//! serving layer the union-find engine's `Session` API was built for.
//!
//! Four layers:
//!
//! * **surface** — programs (`let x = M;;` sequences with `#use prelude`
//!   and span-carrying diagnostics) come from [`freezeml_core::program`];
//! * [`db`] — the program database: bindings keyed by content hash, a
//!   free-variable dependency graph with SCC condensation ([`graph`]),
//!   and Merkle-style cache keys so an edit invalidates *exactly* the
//!   dirty binding and its transitive dependents. FreezeML's principal
//!   types (paper Theorem 7) are what make per-binding scheme caching
//!   sound: a binding's scheme is a function of its text and its
//!   dependencies' schemes, nothing else;
//! * [`exec`] — the parallel executor: a pool of workers, each holding a
//!   reusable [`freezeml_engine::Session`], checking independent dirty
//!   components concurrently in topological waves (`ENGINE=core|uf|both`
//!   respected, `both` = per-binding differential agreement);
//! * [`protocol`] / [`server`] — a line-oriented JSON protocol
//!   (`open` / `edit` / `check` / `type-of` / `close`, plus the
//!   [`stats`] introspection pair `stats` / `metrics`) served over
//!   stdin/stdout by the `freezeml` binary, plus [`load`], the
//!   deterministic program generator and corpus-replay driver behind the
//!   `service_throughput` bench and the CI smoke job.
//!
//! ## Quickstart
//!
//! ```
//! use freezeml_service::{Service, ServiceConfig};
//!
//! let mut svc = Service::new(ServiceConfig::default());
//! let report = svc
//!     .open("demo", "#use prelude\nlet id' = $(fun x -> x);;\nlet p = poly ~id';;\n")
//!     .unwrap();
//! assert!(report.all_typed());
//! assert_eq!(
//!     svc.type_of("demo", "p").unwrap().unwrap().outcome.display(),
//!     "Int * Bool"
//! );
//! ```

pub mod db;
pub mod exec;
pub mod fault;
pub mod graph;
pub mod hash;
pub mod load;
pub mod persist;
pub mod protocol;
pub mod server;
pub mod service;
pub mod shared;
pub mod sock;
pub mod stats;
pub mod sync;

pub use db::{
    analyze, analyze_cached, analyze_cached_traced, doc_key, doc_verify, Analysis, EngineSel,
    Frontend, Outcome,
};
pub use exec::{BindingReport, CheckReport, DeadlineExceeded, Executor, Worker};
pub use fault::{Fault, FAILPOINTS_ENV};
pub use freezeml_engine::SchemeId;
pub use load::{backoff_ms, replay, GenProgram, ReplayStats};
pub use persist::{Checkpointer, LoadOutcome, PersistConfig, SaveOutcome};
pub use protocol::{handle_line, Json, Request};
pub use server::{serve, serve_with, ServeOptions};
pub use service::{ElabInfo, Service, ServiceConfig, ServiceError};
pub use shared::Shared;
pub use sock::SocketServer;
pub use stats::{prometheus_text, stats_json};
