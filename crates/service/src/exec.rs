//! The parallel executor: a pool of workers, each owning reusable
//! [`freezeml_engine::Session`]s, checking the dirty components of a
//! program in topological waves.
//!
//! Scheduling is wave-by-wave over the condensation ([`crate::graph`]):
//! all components in one wave are independent, so their bindings are
//! checked concurrently on scoped threads — one worker per thread, each
//! session handed off wholesale (the store is owned data, see the
//! engine's `session_hands_off_across_threads` test). Within a pass:
//!
//! * a binding whose cache key hits the scheme cache is **reused** (no
//!   inference at all);
//! * a binding with a failed or blocked dependency is **blocked**, not
//!   cascaded into a misleading unbound-variable error;
//! * everything else is **rechecked** — under `ENGINE=core`, `uf`, or
//!   `both` (per-binding differential agreement).
//!
//! Checking a binding `let x (: A)? = M;;` infers the probe term
//! `let x (: A)? = M in ⌈x⌉`, so the scheme is produced by the paper's
//! `let` rule itself. Residual monomorphic variables (value restriction)
//! are grounded to `Int` — the same defaulting the REPL performs — so
//! the scheme stored in the environment stays closed.

use crate::db::{Analysis, DeclInfo, EngineSel, Outcome};
use crate::fault::{self, Fault};
use crate::shared::Shared;

/// One inference job: a declaration index plus the scheme ids of its
/// dependencies (resolved against the shared scheme bank).
type Job = (usize, Vec<(Var, SchemeId)>);
use freezeml_core::{Options, Span, Type, TypeEnv, Var};
use freezeml_engine::differential::{class_of, types_equivalent};
use freezeml_engine::{SchemeBank, SchemeId, Session};
use freezeml_obs::{NoTrace, Record, TraceCtx, TraceSink, Val};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One worker: lazily-built engine sessions (with and without the
/// Figure 2 prelude) plus the core-engine environments.
pub struct Worker {
    opts: Options,
    engine: EngineSel,
    /// Lazily interned sessions, keyed by "uses the prelude".
    sessions: [Option<Session>; 2],
    /// Core-engine base environments, same keying.
    envs: [Option<TypeEnv>; 2],
}

impl Worker {
    /// A fresh worker for the given configuration.
    pub fn new(opts: Options, engine: EngineSel) -> Worker {
        Worker {
            opts,
            engine,
            sessions: [None, None],
            envs: [None, None],
        }
    }

    fn base_env(use_prelude: bool) -> TypeEnv {
        if use_prelude {
            freezeml_corpus::figure2()
        } else {
            TypeEnv::new()
        }
    }

    fn session(&mut self, use_prelude: bool) -> &mut Session {
        let slot = &mut self.sessions[usize::from(use_prelude)];
        if slot.is_none() {
            *slot = Some(
                Session::new(&Self::base_env(use_prelude), &self.opts)
                    // lint: allow(unwrap) — static Figure 2 prelude text; a parse failure is a build bug
                    .expect("the Figure 2 prelude is well-formed"),
            );
        }
        // lint: allow(unwrap) — slot initialised in the branch above
        slot.as_mut().expect("just initialised")
    }

    fn env(&mut self, use_prelude: bool) -> &TypeEnv {
        let slot = &mut self.envs[usize::from(use_prelude)];
        if slot.is_none() {
            *slot = Some(Self::base_env(use_prelude));
        }
        // lint: allow(unwrap) — slot initialised in the branch above
        slot.as_ref().expect("just initialised")
    }

    /// Drop the lazily-built engine sessions. Called after a contained
    /// panic: a session interrupted mid-inference may hold a polluted
    /// `Γ` or store, so it is rebuilt from scratch on next use.
    fn reset(&mut self) {
        self.sessions = [None, None];
        self.envs = [None, None];
    }

    /// Check one binding under the scheme ids of its dependencies.
    ///
    /// Under `ENGINE=uf` — the production configuration — the whole
    /// round trip is zonk-free: dependency schemes enter the session by
    /// O(DAG) interning straight from the shared scheme bank, and the
    /// result leaves as a [`SchemeId`] export; no `core::Type` tree is
    /// built. The oracle paths (`core`, differential `both`) materialise
    /// trees, as befits the configuration whose job is cross-checking.
    pub fn check(
        &mut self,
        bank: &SchemeBank,
        use_prelude: bool,
        decl: &DeclInfo,
        deps: &[(Var, SchemeId)],
    ) -> Outcome {
        let term = decl.probe_term();
        match self.engine {
            EngineSel::Uf => {
                // The bank is sharded and lock-internal: the session's
                // inference never serialises on other workers, and the
                // O(DAG) import/export crossings contend per shard only.
                match self
                    .session(use_prelude)
                    .infer_scheme_with(bank, deps, &term)
                {
                    Ok(out) => Outcome::Typed {
                        id: out.scheme,
                        scheme: bank.pretty(out.scheme),
                        defaulted: out.defaulted,
                    },
                    Err(e) => Outcome::Error {
                        class: format!("{:?}", class_of(&e)),
                        message: e.to_string(),
                    },
                }
            }
            EngineSel::Core => {
                let env = self.dep_tree_env(bank, use_prelude, deps);
                let r = freezeml_core::infer_term(&env, &term, &self.opts);
                outcome_of(bank, r.map(|o| o.ty))
            }
            EngineSel::Both => {
                let dep_env: Vec<(Var, Type)> =
                    deps.iter().map(|(x, s)| (*x, bank.to_type(*s))).collect();
                let uf = self.session(use_prelude).infer_with(&dep_env, &term);
                let mut env = self.env(use_prelude).clone();
                for (x, t) in &dep_env {
                    env.push(*x, t.clone());
                }
                let core = freezeml_core::infer_term(&env, &term, &self.opts);
                match (core, uf) {
                    (Ok(c), Ok(u)) if types_equivalent(&c.ty, &u.ty) => outcome_of(bank, Ok(c.ty)),
                    (Err(ce), Err(ue)) if class_of(&ce) == class_of(&ue) => {
                        outcome_of(bank, Err::<Type, _>(ce))
                    }
                    (c, u) => Outcome::Disagreement {
                        core: render(&c.map(|o| o.ty.canonicalize())),
                        uf: render(&u.map(|o| o.ty.canonicalize())),
                    },
                }
            }
        }
    }

    /// Materialise dependency schemes as `core::Type` trees (oracle
    /// engines only).
    fn dep_tree_env(
        &mut self,
        bank: &SchemeBank,
        use_prelude: bool,
        deps: &[(Var, SchemeId)],
    ) -> TypeEnv {
        let mut env = self.env(use_prelude).clone();
        for (x, s) in deps {
            env.push(*x, bank.to_type(*s));
        }
        env
    }
}

/// The `Outcome::Error` class reserved for contained worker panics —
/// a checker bug surfaced as a per-binding verdict instead of a dead
/// session. Never cached.
pub const INTERNAL_ERROR_CLASS: &str = "Internal";

/// Render a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

fn internal_error(name: &str, detail: &str) -> Outcome {
    Outcome::Error {
        class: INTERNAL_ERROR_CLASS.to_string(),
        message: format!("internal error while checking `{name}`: {detail}"),
    }
}

/// Check one binding with panic containment: a panicking check becomes
/// an internal-error verdict for that binding, the worker's sessions are
/// rebuilt (a panic mid-inference leaves them polluted), and the wave —
/// and the service — keep going. `inject` carries an armed
/// `infer.binding`/`infer.wave` failpoint: a `panic` fault panics
/// *inside* the contained region (exercising exactly the real-bug
/// path), `err`/`eof` short-circuit to an internal-error verdict, and
/// `delay` stalls the check.
fn check_contained(
    w: &mut Worker,
    bank: &SchemeBank,
    use_prelude: bool,
    decl: &DeclInfo,
    deps: &[(Var, SchemeId)],
    inject: Option<Fault>,
) -> Outcome {
    match inject {
        Some(Fault::Err) | Some(Fault::Eof) => {
            return internal_error(decl.name(), "injected fault (failpoint)");
        }
        _ => {}
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        match inject {
            Some(Fault::Panic) => panic!("injected panic (failpoint)"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
        w.check(bank, use_prelude, decl, deps)
    }));
    result.unwrap_or_else(|payload| {
        w.reset();
        internal_error(decl.name(), panic_message(payload.as_ref()))
    })
}

fn render(r: &Result<Type, freezeml_core::TypeError>) -> String {
    match r {
        Ok(t) => t.to_string(),
        Err(e) => format!("✕ {:?} ({e})", class_of(e)),
    }
}

/// Ground a successful tree-engine scheme's residual monomorphic
/// variables to `Int` (value restriction) and intern it into the shared
/// scheme store (α-canonical by construction), or classify the error.
/// The oracle
/// engines' outcomes land in the same α-canonical scheme space as the
/// union-find engine's, so a scheme produced under `ENGINE=both` and one
/// produced under `ENGINE=uf` share an id iff they are α-equivalent.
fn outcome_of(bank: &SchemeBank, r: Result<Type, freezeml_core::TypeError>) -> Outcome {
    match r {
        Ok(ty) => {
            let mut scheme = ty;
            let residuals = scheme.ftv();
            let grounded = residuals.len();
            for v in residuals {
                scheme = scheme.rename_free(&v, &Type::int());
            }
            let id = bank.intern_type(&scheme);
            // Residual names come from the interned scheme's own letter
            // supply — the same `defaulted_names` the union-find engine
            // uses, so all engine routes report identically.
            let defaulted = bank.defaulted_names(id, grounded);
            Outcome::Typed {
                id,
                scheme: bank.pretty(id),
                defaulted,
            }
        }
        Err(e) => Outcome::Error {
            class: format!("{:?}", class_of(&e)),
            message: e.to_string(),
        },
    }
}

/// The verdict on one binding, located in its document.
#[derive(Clone, Debug)]
pub struct BindingReport {
    /// The bound name.
    pub name: String,
    /// The declaration's source span.
    pub span: Span,
    /// The verdict.
    pub outcome: Outcome,
}

/// The result of one check pass over a program.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Per-binding verdicts, in declaration order.
    pub bindings: Vec<BindingReport>,
    /// Bindings actually re-inferred this pass (cache misses).
    pub rechecked: usize,
    /// Bindings served from the scheme cache.
    pub reused: usize,
    /// Bindings not checked this pass: a failed or blocked dependency,
    /// or membership in an (unsupported) recursive group. Every pass
    /// satisfies `rechecked + reused + blocked == bindings.len()` — the
    /// accounting invariant the metrics registry carries forward.
    pub blocked: usize,
    /// Topological waves that ran at least one inference job.
    pub waves: usize,
}

impl CheckReport {
    /// Did every binding type-check?
    pub fn all_typed(&self) -> bool {
        self.bindings.iter().all(|b| b.outcome.is_typed())
    }

    /// The latest binding of the given name (ML shadowing: the visible
    /// one at the end of the program).
    pub fn binding(&self, name: &str) -> Option<&BindingReport> {
        self.bindings.iter().rev().find(|b| b.name == name)
    }
}

/// The request's time budget ran out at a wave boundary. Verdicts
/// already computed this pass were written to the shared cache (they
/// are valid — only the *pass* is abandoned), so a retry resumes from
/// where the budget expired rather than from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExceeded;

/// The worker pool. The scheme bank and outcome cache it runs against
/// live in the [`Shared`] hub, so many executors (one per connected
/// session) share one scheme space.
pub struct Executor {
    workers: Vec<Worker>,
}

impl Executor {
    /// A pool of `n` workers (at least one).
    pub fn new(n: usize, opts: Options, engine: EngineSel) -> Executor {
        Executor {
            workers: (0..n.max(1)).map(|_| Worker::new(opts, engine)).collect(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// One check pass: walk the waves, reuse cache hits, block on failed
    /// dependencies, and run the remaining jobs concurrently. Fresh
    /// verdicts are written back to the shared cache (disagreements and
    /// internal errors excepted — those are bugs and must never be
    /// served warm). Worker panics are contained per binding
    /// ([`check_contained`]); the executor and the hub survive them.
    pub fn run(&mut self, a: &Analysis, shared: &Shared) -> CheckReport {
        self.run_traced(a, shared, TraceCtx::default())
    }

    /// [`Executor::run`] with trace context: per-wave and per-binding
    /// spans go to the hub's tracer. The body is monomorphised over the
    /// sink ([`freezeml_obs::TraceSink`]'s `ENABLED` const), so with
    /// tracing off this compiles to exactly the untraced executor — no
    /// clock reads, no record construction.
    pub fn run_traced(&mut self, a: &Analysis, shared: &Shared, ctx: TraceCtx) -> CheckReport {
        self.run_budgeted(a, shared, ctx, None)
            // lint: allow(unwrap) — run_budgeted only errs when a deadline is set; none is
            .expect("no deadline was set")
    }

    /// [`Executor::run_traced`] under a time budget: the deadline is
    /// checked **at wave boundaries** (a wave's jobs, once dispatched,
    /// run to completion — inference is not preemptible), so an
    /// exhausted budget abandons the pass before the next wave starts.
    /// Completed verdicts stay cached; the hub's `deadline_exceeded`
    /// counter records the abandonment.
    pub fn run_budgeted(
        &mut self,
        a: &Analysis,
        shared: &Shared,
        ctx: TraceCtx,
        deadline: Option<Instant>,
    ) -> Result<CheckReport, DeadlineExceeded> {
        match shared.tracer().sink() {
            Some(sink) => self.run_sink(a, shared, ctx, &**sink, deadline),
            None => self.run_sink(a, shared, ctx, &NoTrace, deadline),
        }
    }

    fn run_sink<S: TraceSink>(
        &mut self,
        a: &Analysis,
        shared: &Shared,
        ctx: TraceCtx,
        sink: &S,
        deadline: Option<Instant>,
    ) -> Result<CheckReport, DeadlineExceeded> {
        let n = a.decls.len();
        let use_prelude = a.uses_prelude;
        let bank = shared.bank();
        let cache = shared.cache();
        let metrics = shared.metrics();
        // One probe up front keeps the fault layer off the hot path:
        // when no spec is installed this is a single relaxed load and
        // every per-binding site check below is skipped entirely.
        let faults_on = fault::active();
        let mut outcomes: Vec<Option<Outcome>> = vec![None; n];
        let (mut rechecked, mut reused, mut blocked) = (0usize, 0usize, 0usize);
        let mut waves = 0usize;

        for (wave_no, wave) in a.cond.waves.iter().enumerate() {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    metrics.deadline_exceeded.inc();
                    return Err(DeadlineExceeded);
                }
            }
            // `infer.wave` failpoint: `delay` stalls the scheduler here
            // (where the deadline will catch it next wave); any other
            // fault is injected into every job of the wave, contained
            // per binding like a real worker bug.
            let wave_inject = if faults_on {
                match fault::hit_counted("infer.wave", metrics) {
                    Some(Fault::Delay(d)) => {
                        std::thread::sleep(d);
                        None
                    }
                    other => other,
                }
            } else {
                None
            };
            let wave_t0 = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            let mut jobs: Vec<Job> = Vec::new();
            for &c in wave {
                let members = &a.cond.comps[c];
                if members.len() > 1 {
                    // Unreachable through the current surface (resolution
                    // points backwards), but the scheduler stays honest.
                    let names: Vec<&str> = members.iter().map(|&i| a.decls[i].name()).collect();
                    for &i in members {
                        outcomes[i] = Some(Outcome::Error {
                            class: "RecursiveBinding".to_string(),
                            message: format!(
                                "recursive binding group {{{}}} is not supported",
                                names.join(", ")
                            ),
                        });
                    }
                    blocked += members.len();
                    continue;
                }
                let i = members[0];
                if let Some(bad) = a.deps[i]
                    .iter()
                    .find(|&&d| !outcomes[d].as_ref().is_some_and(Outcome::is_typed))
                {
                    outcomes[i] = Some(Outcome::Blocked {
                        on: a.decls[*bad].name().to_string(),
                    });
                    blocked += 1;
                    continue;
                }
                if let Some(hit) = cache.get(a.keys[i]) {
                    outcomes[i] = Some(hit);
                    reused += 1;
                    continue;
                }
                let dep_env: Vec<(Var, SchemeId)> = a.deps[i]
                    .iter()
                    .map(|&d| {
                        let Some(Outcome::Typed { id, .. }) = outcomes[d].as_ref() else {
                            unreachable!("checked typed above")
                        };
                        (Var::from_symbol(a.decls[d].name_sym()), *id)
                    })
                    .collect();
                jobs.push((i, dep_env));
            }

            if jobs.is_empty() {
                continue;
            }
            waves += 1;
            let job_count = jobs.len();
            rechecked += job_count;

            let k = self.workers.len().min(jobs.len());
            let mut chunks: Vec<Vec<Job>> = (0..k).map(|_| Vec::new()).collect();
            for (j, job) in jobs.into_iter().enumerate() {
                chunks[j % k].push(job);
            }
            // Declaration indices per chunk, kept on this side of the
            // spawn: if a worker thread dies anyway (a panic escaping
            // the per-binding containment), its chunk's bindings resolve
            // to internal errors instead of poisoning the whole pass.
            let chunk_idxs: Vec<Vec<usize>> = chunks
                .iter()
                .map(|c| c.iter().map(|j| j.0).collect())
                .collect();
            let decls = &a.decls;
            let results: Vec<(usize, Outcome)> = if k == 1 {
                let w = &mut self.workers[0];
                chunks
                    .pop()
                    // lint: allow(unwrap) — k == 1 guarantees exactly one chunk
                    .expect("k == 1")
                    .into_iter()
                    .map(|(i, env)| {
                        let t0 = if S::ENABLED {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let inject = wave_inject.or_else(|| {
                            faults_on
                                .then(|| fault::hit_counted("infer.binding", metrics))
                                .flatten()
                        });
                        let o = check_contained(w, bank, use_prelude, &decls[i], &env, inject);
                        if let Some(t0) = t0 {
                            sink.emit(
                                &Record::new("span", "infer")
                                    .ctx(ctx)
                                    .wave(wave_no as u64)
                                    .binding(i as u64)
                                    .dur(t0.elapsed()),
                            );
                        }
                        (i, o)
                    })
                    .collect()
            } else {
                let joined: Vec<std::thread::Result<Vec<(usize, Outcome)>>> =
                    std::thread::scope(|s| {
                        let handles: Vec<_> = self
                            .workers
                            .iter_mut()
                            .zip(chunks)
                            .map(|(w, chunk)| {
                                s.spawn(move || {
                                    chunk
                                        .into_iter()
                                        .map(|(i, env)| {
                                            let t0 = if S::ENABLED {
                                                Some(Instant::now())
                                            } else {
                                                None
                                            };
                                            let inject = wave_inject.or_else(|| {
                                                faults_on
                                                    .then(|| {
                                                        fault::hit_counted("infer.binding", metrics)
                                                    })
                                                    .flatten()
                                            });
                                            let o = check_contained(
                                                w,
                                                bank,
                                                use_prelude,
                                                &decls[i],
                                                &env,
                                                inject,
                                            );
                                            if let Some(t0) = t0 {
                                                sink.emit(
                                                    &Record::new("span", "infer")
                                                        .ctx(ctx)
                                                        .wave(wave_no as u64)
                                                        .binding(i as u64)
                                                        .dur(t0.elapsed()),
                                                );
                                            }
                                            (i, o)
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles.into_iter().map(|h| h.join()).collect()
                    });
                let mut out = Vec::new();
                for (wi, (res, idxs)) in joined.into_iter().zip(chunk_idxs).enumerate() {
                    match res {
                        Ok(v) => out.extend(v),
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref()).to_string();
                            self.workers[wi].reset();
                            out.extend(
                                idxs.into_iter()
                                    .map(|i| (i, internal_error(decls[i].name(), &msg))),
                            );
                        }
                    }
                }
                out
            };
            for (i, o) in results {
                let uncacheable = matches!(o, Outcome::Disagreement { .. })
                    || matches!(&o, Outcome::Error { class, .. } if class == INTERNAL_ERROR_CLASS);
                if !uncacheable {
                    cache.insert(a.keys[i], o.clone());
                }
                outcomes[i] = Some(o);
            }
            if let Some(t0) = wave_t0 {
                let extras = [("jobs", Val::U(job_count as u64))];
                sink.emit(
                    &Record::new("span", "wave")
                        .ctx(ctx)
                        .wave(wave_no as u64)
                        .dur(t0.elapsed())
                        .extras(&extras),
                );
            }
        }

        // Every cache probe either served a reuse or became a job, so
        // the pass totals are the verdict-cache hit/miss counts.
        metrics.verdict_hits.add(reused as u64);
        metrics.verdict_misses.add(rechecked as u64);

        Ok(CheckReport {
            bindings: outcomes
                .into_iter()
                .enumerate()
                .map(|(i, o)| BindingReport {
                    name: a.decls[i].name().to_string(),
                    span: a.decls[i].span,
                    // lint: allow(unwrap) — the wave loop resolves every member before this point
                    outcome: o.expect("every wave member resolved"),
                })
                .collect(),
            rechecked,
            reused,
            blocked,
            waves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::analyze;

    fn check(src: &str, engine: EngineSel) -> CheckReport {
        let a = analyze(src, &Options::default(), engine).unwrap();
        Executor::new(2, Options::default(), engine).run(&a, &Shared::new())
    }

    #[test]
    fn a_small_program_checks_on_every_engine() {
        let src = "#use prelude\n\
            let f = fun x -> x;;\n\
            let p = poly ~f;;\n\
            let n = plus (fst p) 1;;\n";
        for engine in [EngineSel::Core, EngineSel::Uf, EngineSel::Both] {
            let r = check(src, engine);
            assert!(r.all_typed(), "{engine:?}: {:?}", r.bindings);
            assert_eq!(
                r.binding("f").unwrap().outcome.display(),
                "forall a. a -> a"
            );
            assert_eq!(r.binding("p").unwrap().outcome.display(), "Int * Bool");
            assert_eq!(r.binding("n").unwrap().outcome.display(), "Int");
            assert_eq!(r.rechecked, 3);
            assert_eq!(r.reused, 0);
        }
    }

    #[test]
    fn errors_block_dependents_but_not_independents() {
        let src = "#use prelude\n\
            let bad = plus true 1;;\n\
            let child = plus bad 1;;\n\
            let fine = 42;;\n";
        let r = check(src, EngineSel::Both);
        assert!(matches!(
            r.binding("bad").unwrap().outcome,
            Outcome::Error { .. }
        ));
        assert!(matches!(
            &r.binding("child").unwrap().outcome,
            Outcome::Blocked { on } if on == "bad"
        ));
        assert_eq!(r.binding("fine").unwrap().outcome.display(), "Int");
        assert_eq!(r.rechecked, 2, "the blocked binding is never inferred");
    }

    #[test]
    fn value_restriction_defaults_are_reported() {
        // `single id` has a demoted residual variable; the stored scheme
        // grounds it to Int, mirroring the REPL.
        let src = "#use prelude\nlet xs = single id;;\n";
        let r = check(src, EngineSel::Both);
        let Outcome::Typed {
            scheme, defaulted, ..
        } = &r.binding("xs").unwrap().outcome
        else {
            panic!("xs should type: {:?}", r.bindings)
        };
        assert_eq!(scheme.to_string(), "List (Int -> Int)");
        assert_eq!(defaulted.len(), 1);
    }

    #[test]
    fn the_cache_turns_a_second_pass_into_pure_reuse() {
        let src = "#use prelude\nlet a = 1;;\nlet b = plus a 1;;\nlet c = plus b 1;;\n";
        let a = analyze(src, &Options::default(), EngineSel::Uf).unwrap();
        let shared = Shared::new();
        let mut exec = Executor::new(1, Options::default(), EngineSel::Uf);
        let cold = exec.run(&a, &shared);
        assert_eq!((cold.rechecked, cold.reused), (3, 0));
        let warm = exec.run(&a, &shared);
        assert_eq!((warm.rechecked, warm.reused), (0, 3));
        assert_eq!(warm.waves, 0);
    }

    #[test]
    fn an_edit_rechecks_exactly_the_dirty_cone() {
        let src = "#use prelude\n\
            let base = 1;;\n\
            let l = plus base 1;;\n\
            let r = plus base 2;;\n\
            let top = plus l r;;\n\
            let lone = 7;;\n";
        let shared = Shared::new();
        let mut exec = Executor::new(2, Options::default(), EngineSel::Uf);
        let a = analyze(src, &Options::default(), EngineSel::Uf).unwrap();
        exec.run(&a, &shared);
        // Edit `l`: dirties l and top; base, r, lone stay cached.
        let edited = src.replace("let l = plus base 1;;", "let l = plus base 10;;");
        let b = analyze(&edited, &Options::default(), EngineSel::Uf).unwrap();
        let warm = exec.run(&b, &shared);
        assert_eq!(warm.rechecked, 2);
        assert_eq!(warm.reused, 3);
        assert!(warm.all_typed());
    }

    #[test]
    fn frozen_reuse_across_bindings() {
        // A generalised binding's scheme survives freezing downstream.
        let src = "#use prelude\n\
            let myid = $(fun x -> x);;\n\
            let a = auto ~myid;;\n\
            let b = poly ~myid;;\n";
        let r = check(src, EngineSel::Both);
        assert!(r.all_typed(), "{:?}", r.bindings);
        assert_eq!(
            r.binding("a").unwrap().outcome.display(),
            "forall a. a -> a"
        );
        assert_eq!(r.binding("b").unwrap().outcome.display(), "Int * Bool");
    }
}
