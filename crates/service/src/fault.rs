//! Deterministic fault injection — the `FREEZEML_FAILPOINTS` registry.
//!
//! The serving stack's failure behavior is a contract, so it must be
//! *testable on demand*: a chaos run has to make the persistence layer
//! lose a write, a worker panic mid-wave, or a socket truncate a read,
//! at a precise site and a precise number of times, without recompiling
//! and without perturbing the fast path when injection is off.
//!
//! A spec is a semicolon-separated list of `site=kind:arg` triggers:
//!
//! ```text
//! FREEZEML_FAILPOINTS=persist.write=err:2;infer.wave=delay:50ms;sock.read=eof:1
//! ```
//!
//! Kinds:
//!
//! * `err:N` — the next `N` hits at the site report an injected
//!   `io::Error`;
//! * `eof:N` — the next `N` hits simulate a truncated read / early EOF;
//! * `panic:N` — the next `N` hits panic (sites inside `catch_unwind`
//!   contain it to an `Internal` outcome, exactly like a real bug);
//! * `delay:D` — every hit sleeps `D` (`50ms`, `2s`, or a bare
//!   millisecond count); an optional `*N` bounds the trip count
//!   (`delay:5ms*3`).
//!
//! Sites are free-form strings; the ones the stack wires up are
//! `persist.encode`, `persist.write`, `persist.rename`, `persist.load`,
//! `infer.wave`, `infer.binding`, `bank.absorb`, `sock.read`, and
//! `sock.write`.
//!
//! **Zero-cost when unset**, in the [`freezeml_obs::NoTrace`] sense:
//! [`hit`] is one relaxed atomic load when no spec is installed — no
//! lock, no allocation, no env probe after the first call. Each trip is
//! counted in the hub registry's `failpoint_trips{site}` label set (the
//! call sites pass their [`freezeml_obs::Registry`] to [`hit_counted`]),
//! so injected faults are first-class observable events like every
//! other failure mode.
//!
//! Tests install specs programmatically ([`install`] / [`clear`]) —
//! the state is process-global, so suites that inject keep the same
//! one-test-per-binary discipline as the old `FREEZEML_TEST_PANIC_ON`
//! hook this module replaces.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{Arc, Once, PoisonError};
use freezeml_obs::{lockrank, Registry};
use std::io;
use std::time::Duration;

/// The environment variable a spec is read from (once, on first hit).
pub const FAILPOINTS_ENV: &str = "FREEZEML_FAILPOINTS";

/// What an armed site does when tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Report an injected I/O error.
    Err,
    /// Simulate a truncated read / early EOF.
    Eof,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Panic (contained wherever the real code contains panics).
    Panic,
}

impl Fault {
    /// The generic I/O rendering of a fault: `Err` and `Eof` become
    /// `io::Error`s, `Delay` sleeps and succeeds, `Panic` panics.
    /// Sites with a more specific interpretation (e.g. a socket read
    /// turning `Eof` into `Ok(0)`) match on the variant instead.
    pub fn io_effect(self) -> io::Result<()> {
        match self {
            Fault::Err => Err(io::Error::other("injected I/O error (failpoint)")),
            Fault::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected truncation (failpoint)",
            )),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                Ok(())
            }
            Fault::Panic => panic!("injected panic (failpoint)"),
        }
    }
}

/// One armed site: the fault it injects and how many trips remain
/// (`u64::MAX` = unlimited, the default for `delay`).
struct Point {
    site: String,
    fault: Fault,
    remaining: AtomicU64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn table() -> &'static lockrank::Mutex<Option<Arc<Vec<Point>>>> {
    static TABLE: lockrank::Mutex<Option<Arc<Vec<Point>>>> =
        lockrank::Mutex::new(lockrank::FAULT_TABLE, "service.fault.table", None);
    &TABLE
}

/// Parse a duration argument: `50ms`, `2s`, or a bare millisecond
/// count.
fn parse_duration(arg: &str) -> Result<Duration, String> {
    let (digits, unit) = match arg {
        a if a.ends_with("ms") => (&a[..a.len() - 2], 1u64),
        a if a.ends_with('s') => (&a[..a.len() - 1], 1000),
        a => (a, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration `{arg}` (want e.g. `50ms`, `2s`)"))?;
    Ok(Duration::from_millis(n * unit))
}

/// Parse one `site=kind:arg` trigger.
fn parse_point(entry: &str) -> Result<Point, String> {
    let (site, action) = entry
        .split_once('=')
        .ok_or_else(|| format!("bad failpoint `{entry}` (want `site=kind:arg`)"))?;
    let site = site.trim();
    if site.is_empty() {
        return Err(format!("bad failpoint `{entry}` (empty site)"));
    }
    let (kind, arg) = match action.trim().split_once(':') {
        Some((k, a)) => (k.trim(), Some(a.trim())),
        None => (action.trim(), None),
    };
    let count = |a: Option<&str>| -> Result<u64, String> {
        match a {
            None => Ok(1),
            Some(a) => a
                .parse()
                .map_err(|_| format!("bad count `{a}` in `{entry}`")),
        }
    };
    let (fault, remaining) = match kind {
        "err" => (Fault::Err, count(arg)?),
        "eof" => (Fault::Eof, count(arg)?),
        "panic" => (Fault::Panic, count(arg)?),
        "delay" => {
            let a = arg.ok_or_else(|| format!("`delay` needs a duration in `{entry}`"))?;
            let (dur, n) = match a.split_once('*') {
                Some((d, n)) => (
                    parse_duration(d.trim())?,
                    n.trim()
                        .parse()
                        .map_err(|_| format!("bad count `{n}` in `{entry}`"))?,
                ),
                None => (parse_duration(a)?, u64::MAX),
            };
            (Fault::Delay(dur), n)
        }
        other => return Err(format!("unknown failpoint kind `{other}` in `{entry}`")),
    };
    Ok(Point {
        site: site.to_string(),
        fault,
        remaining: AtomicU64::new(remaining),
    })
}

/// Install a failpoint spec, replacing any previous one. Empty specs
/// (or all-whitespace) clear instead.
pub fn install(spec: &str) -> Result<(), String> {
    let mut points = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        points.push(parse_point(entry)?);
    }
    let mut g = table().lock().unwrap_or_else(PoisonError::into_inner);
    if points.is_empty() {
        *g = None;
        // ord: Release — pairs with the Acquire load in `hit`; see
        // the comment there.
        ACTIVE.store(false, Ordering::Release);
    } else {
        *g = Some(Arc::new(points));
        // ord: Release — pairs with the Acquire load in `hit`: a
        // thread whose fast-path probe sees `true` also sees the
        // table write above, so a freshly armed site can never probe
        // as active-but-empty. (With Relaxed, a reordered flag could
        // leak ahead of the table and silently drop the first trips.)
        ACTIVE.store(true, Ordering::Release);
    }
    Ok(())
}

/// Disarm every failpoint.
pub fn clear() {
    let mut g = table().lock().unwrap_or_else(PoisonError::into_inner);
    *g = None;
    // ord: Release — pairs with the Acquire load in `hit`.
    ACTIVE.store(false, Ordering::Release);
}

/// True if any site is currently armed.
pub fn active() -> bool {
    ENV_INIT.call_once(init_from_env);
    // ord: Acquire — same pairing as `hit`.
    ACTIVE.load(Ordering::Acquire)
}

fn init_from_env() {
    if let Ok(spec) = std::env::var(FAILPOINTS_ENV) {
        if let Err(e) = install(&spec) {
            eprintln!("freezeml: ignoring {FAILPOINTS_ENV}: {e}");
        }
    }
}

/// Probe a site. Returns the armed fault and consumes one trip, or
/// `None` when the site is unarmed (the overwhelmingly common case:
/// one relaxed atomic load).
#[inline]
pub fn hit(site: &str) -> Option<Fault> {
    ENV_INIT.call_once(init_from_env);
    // ord: Acquire — pairs with the Release store in `install`/`clear`.
    // Seeing `true` guarantees the armed table is visible to the slow
    // path, so an installer's first intended trip is never dropped.
    // (Free on x86; a plain load + barrier-on-hit elsewhere.)
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    hit_slow(site)
}

/// Probe a site and count the trip in `m.failpoint_trips{site}`.
#[inline]
pub fn hit_counted(site: &str, m: &Registry) -> Option<Fault> {
    let f = hit(site)?;
    m.failpoint_trips.inc(site);
    Some(f)
}

#[cold]
fn hit_slow(site: &str) -> Option<Fault> {
    let points = {
        let g = table().lock().unwrap_or_else(PoisonError::into_inner);
        g.as_ref().map(Arc::clone)?
    };
    for p in points.iter().filter(|p| p.site == site) {
        // ord: Relaxed — the trip budget is a pure counter; RMW
        // atomicity makes concurrent trips hand out exactly
        // `remaining` faults, and no other memory hangs off it.
        let took = p
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| match r {
                0 => None,
                u64::MAX => Some(u64::MAX),
                n => Some(n - 1),
            });
        if took.is_ok() {
            return Some(p.fault);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; serialize the tests that
    /// mutate it.
    fn lock() -> crate::sync::MutexGuard<'static, ()> {
        static GUARD: crate::sync::Mutex<()> = crate::sync::Mutex::new(());
        GUARD.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_answer_none_and_counts_run_down() {
        let _g = lock();
        clear();
        assert_eq!(hit("persist.write"), None);

        install("persist.write=err:2;sock.read=eof").unwrap();
        assert!(active());
        assert_eq!(hit("persist.rename"), None, "other sites stay unarmed");
        assert_eq!(hit("persist.write"), Some(Fault::Err));
        assert_eq!(hit("persist.write"), Some(Fault::Err));
        assert_eq!(hit("persist.write"), None, "budget of 2 is exhausted");
        assert_eq!(hit("sock.read"), Some(Fault::Eof), "bare kind means once");
        assert_eq!(hit("sock.read"), None);

        clear();
        assert_eq!(hit("persist.write"), None);
    }

    #[test]
    fn delay_parses_durations_and_optional_trip_bounds() {
        let _g = lock();
        install("infer.wave=delay:50ms").unwrap();
        assert_eq!(
            hit("infer.wave"),
            Some(Fault::Delay(Duration::from_millis(50)))
        );
        assert_eq!(
            hit("infer.wave"),
            Some(Fault::Delay(Duration::from_millis(50))),
            "delay defaults to unlimited trips"
        );
        install("infer.wave=delay:2s*1").unwrap();
        assert_eq!(
            hit("infer.wave"),
            Some(Fault::Delay(Duration::from_secs(2)))
        );
        assert_eq!(hit("infer.wave"), None, "`*1` bounds the trips");
        install("infer.wave=delay:7*2").unwrap();
        assert_eq!(
            hit("infer.wave"),
            Some(Fault::Delay(Duration::from_millis(7))),
            "a bare number is milliseconds"
        );
        clear();
    }

    #[test]
    fn bad_specs_are_rejected_with_a_reason() {
        let _g = lock();
        assert!(install("nonsense").unwrap_err().contains("site=kind:arg"));
        assert!(install("a=explode:1")
            .unwrap_err()
            .contains("unknown failpoint kind"));
        assert!(install("a=err:lots").unwrap_err().contains("bad count"));
        assert!(install("a=delay").unwrap_err().contains("needs a duration"));
        assert!(install("a=delay:fast")
            .unwrap_err()
            .contains("bad duration"));
        assert!(install("=err:1").unwrap_err().contains("empty site"));
        // A failed install never half-arms.
        assert_eq!(hit("a"), None);
        // Whitespace and empty entries are tolerated.
        install(" a=err:1 ; ; b=eof:1 ;").unwrap();
        assert_eq!(hit("a"), Some(Fault::Err));
        assert_eq!(hit("b"), Some(Fault::Eof));
        clear();
    }

    #[test]
    fn trips_are_counted_in_the_registry() {
        let _g = lock();
        install("x.site=err:1").unwrap();
        let m = Registry::new();
        assert_eq!(hit_counted("x.site", &m), Some(Fault::Err));
        assert_eq!(hit_counted("x.site", &m), None, "exhausted: not counted");
        assert_eq!(
            m.failpoint_trips.snapshot(),
            vec![("x.site".to_string(), 1)]
        );
        clear();
    }

    #[test]
    fn io_effects_render_faults_as_errors() {
        assert_eq!(
            Fault::Err.io_effect().unwrap_err().kind(),
            io::ErrorKind::Other
        );
        assert_eq!(
            Fault::Eof.io_effect().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert!(Fault::Delay(Duration::ZERO).io_effect().is_ok());
        let p = std::panic::catch_unwind(|| Fault::Panic.io_effect());
        assert!(p.is_err(), "panic faults panic");
    }
}
