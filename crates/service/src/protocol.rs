//! The line-oriented JSON protocol: one request per line on stdin, one
//! response per line on stdout.
//!
//! The build environment is offline, so this module carries its own
//! small JSON value type, parser, and serialiser (strings with full
//! escape handling including `\uXXXX` surrogate pairs; numbers as
//! `f64`). Requests:
//!
//! ```text
//! {"cmd":"open","doc":"main","text":"let x = 1;;"}
//! {"cmd":"edit","doc":"main","text":"let x = 2;;"}
//! {"cmd":"check","doc":"main"}
//! {"cmd":"type-of","doc":"main","name":"x"}
//! {"cmd":"elaborate","doc":"main","name":"x"}
//! {"cmd":"close","doc":"main"}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! `stats` answers one JSON object snapshotting the hub's metrics
//! registry (per-command latency histograms, cache hit rates, report
//! counters, persistence activity); `metrics` answers the same data as
//! Prometheus text exposition in `{"ok":true,"metrics":"…"}`. Both are
//! introspection commands and take **no** fields beyond `cmd` — any
//! extra field is answered with a structured error, line for line, so a
//! typo'd query can never be mistaken for a valid one. `shutdown` (the
//! admin command, equally strict) asks the hub to **drain**: the socket
//! server stops accepting, in-flight requests finish, a final
//! checkpoint is taken, and the process exits 0 — the same path
//! SIGTERM takes.
//!
//! A request whose check ran out of its `--request-timeout-ms` budget
//! answers the flat structured error `{"ok":false,"error":"deadline"}`
//! (distinguishable by shape from data errors, which carry an object
//! with a message and source position).
//!
//! `elaborate` serves the binding's System F image (canonical
//! rendering) with its type; the image is verified against the
//! `freezeml_systemf` typing oracle before it is served, so a success
//! response always carries `"checked":true`.
//!
//! `open`/`edit`/`check` respond with the full per-binding report plus
//! the incremental counters (`rechecked`, `reused`, `blocked`,
//! `waves`); errors
//! respond `{"ok":false,"error":{…}}` with `line`/`col` when the failure
//! has a source position.

use crate::exec::CheckReport;
use crate::service::{Service, ServiceError};
use crate::stats;
use freezeml_obs::Cmd;
use std::fmt;
use std::time::Instant;

// ------------------------------------------------------------------ JSON

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Parse one JSON value (the whole input must be consumed).
    ///
    /// # Errors
    ///
    /// A readable message with a byte offset.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/∞; the parser refuses to produce
                    // them, so this arm only guards hand-built values.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse failure.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable message.
    pub msg: String,
    /// Byte offset.
    pub pos: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn fail(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            pos: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(what))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.fail("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.fail("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    self.skip_ws();
                    let v = self.value()?;
                    fields.push((k, v));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.fail("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // lint: allow(unwrap) — scanner consumed only ASCII digit/sign/exponent bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            // Rust parses over-range literals (`1e999`) to ±∞, which the
            // serialiser could never round-trip — reject them instead.
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.fail("invalid number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.fail("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.fail("bad surrogate"))?
                                } else {
                                    return Err(self.fail("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.fail("bad escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.fail("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.fail("raw control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    // lint: allow(unwrap) — from_utf8 succeeded on a non-empty slice
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(&b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(&b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(&b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.fail("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

// -------------------------------------------------------------- requests

/// A parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open (or replace) a document.
    Open {
        /// Document id.
        doc: String,
        /// Full program text.
        text: String,
    },
    /// Replace an open document's text.
    Edit {
        /// Document id.
        doc: String,
        /// Full program text.
        text: String,
    },
    /// Recheck a document.
    Check {
        /// Document id.
        doc: String,
    },
    /// Look up the visible binding of a name.
    TypeOf {
        /// Document id.
        doc: String,
        /// Binding name.
        name: String,
    },
    /// Elaborate the visible binding of a name into System F (the image
    /// is verified against the `freezeml_systemf` typing oracle before
    /// it is served — see [`crate::service::Service::elaborate`]).
    Elaborate {
        /// Document id.
        doc: String,
        /// Binding name.
        name: String,
    },
    /// Close a document.
    Close {
        /// Document id.
        doc: String,
    },
    /// Snapshot the hub's metrics registry as one JSON object.
    Stats,
    /// Render the hub's metrics as Prometheus text exposition.
    Metrics,
    /// Ask the hub to drain: stop accepting connections, finish
    /// in-flight requests, checkpoint, exit cleanly.
    Shutdown,
}

impl Request {
    /// Parse a request line.
    ///
    /// # Errors
    ///
    /// A readable message (bad JSON, missing field, unknown command).
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        Request::from_json(&v)
    }

    /// Interpret one parsed JSON value as a request — the element-wise
    /// form `parse` and batched lines ([`handle_line`]) share.
    ///
    /// # Errors
    ///
    /// A readable message (missing field, unknown command).
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string field `cmd`")?;
        let field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{cmd}` needs a string field `{name}`"))
        };
        match cmd {
            "open" => Ok(Request::Open {
                doc: field("doc")?,
                text: field("text")?,
            }),
            "edit" => Ok(Request::Edit {
                doc: field("doc")?,
                text: field("text")?,
            }),
            "check" => Ok(Request::Check { doc: field("doc")? }),
            "type-of" => Ok(Request::TypeOf {
                doc: field("doc")?,
                name: field("name")?,
            }),
            "elaborate" => Ok(Request::Elaborate {
                doc: field("doc")?,
                name: field("name")?,
            }),
            "close" => Ok(Request::Close { doc: field("doc")? }),
            // Introspection and admin commands are strict: the
            // forgiving extra-fields-ignored stance of the data
            // commands would let a typo'd query
            // (`{"cmd":"stats","doc":…}`) silently answer something
            // the caller did not ask about.
            "stats" | "metrics" | "shutdown" => {
                if let Json::Obj(fields) = v {
                    if let Some((k, _)) = fields.iter().find(|(k, _)| k != "cmd") {
                        return Err(format!("`{cmd}` takes no field `{k}` (only `cmd`)"));
                    }
                }
                Ok(match cmd {
                    "stats" => Request::Stats,
                    "metrics" => Request::Metrics,
                    _ => Request::Shutdown,
                })
            }
            other => Err(format!("unknown cmd `{other}`")),
        }
    }

    /// Serialise (for clients and the load generator).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Open { doc, text } => Json::obj([
                ("cmd", Json::Str("open".into())),
                ("doc", Json::Str(doc.clone())),
                ("text", Json::Str(text.clone())),
            ]),
            Request::Edit { doc, text } => Json::obj([
                ("cmd", Json::Str("edit".into())),
                ("doc", Json::Str(doc.clone())),
                ("text", Json::Str(text.clone())),
            ]),
            Request::Check { doc } => Json::obj([
                ("cmd", Json::Str("check".into())),
                ("doc", Json::Str(doc.clone())),
            ]),
            Request::TypeOf { doc, name } => Json::obj([
                ("cmd", Json::Str("type-of".into())),
                ("doc", Json::Str(doc.clone())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Elaborate { doc, name } => Json::obj([
                ("cmd", Json::Str("elaborate".into())),
                ("doc", Json::Str(doc.clone())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Close { doc } => Json::obj([
                ("cmd", Json::Str("close".into())),
                ("doc", Json::Str(doc.clone())),
            ]),
            Request::Stats => Json::obj([("cmd", Json::Str("stats".into()))]),
            Request::Metrics => Json::obj([("cmd", Json::Str("metrics".into()))]),
            Request::Shutdown => Json::obj([("cmd", Json::Str("shutdown".into()))]),
        }
    }
}

// ------------------------------------------------------------- responses

/// The response to a successful `open`/`edit`/`check`: the full report.
pub fn report_json(doc: &str, report: &CheckReport, src: &str) -> Json {
    let bindings: Vec<Json> = report
        .bindings
        .iter()
        .map(|b| {
            let (line, col) = b.span.line_col(src);
            let mut fields = vec![
                ("name".to_string(), Json::Str(b.name.clone())),
                ("line".to_string(), Json::Num(line as f64)),
                ("col".to_string(), Json::Num(col as f64)),
            ];
            use crate::db::Outcome::*;
            match &b.outcome {
                Typed {
                    scheme, defaulted, ..
                } => {
                    fields.push(("status".into(), Json::Str("ok".into())));
                    fields.push(("type".into(), Json::Str(scheme.to_string())));
                    if !defaulted.is_empty() {
                        fields.push((
                            "defaulted".into(),
                            Json::Arr(defaulted.iter().cloned().map(Json::Str).collect()),
                        ));
                    }
                }
                Error { class, message } => {
                    fields.push(("status".into(), Json::Str("error".into())));
                    fields.push(("class".into(), Json::Str(class.clone())));
                    fields.push(("message".into(), Json::Str(message.clone())));
                }
                Blocked { on } => {
                    fields.push(("status".into(), Json::Str("blocked".into())));
                    fields.push(("on".into(), Json::Str(on.clone())));
                }
                Disagreement { core, uf } => {
                    fields.push(("status".into(), Json::Str("disagreement".into())));
                    fields.push(("core".into(), Json::Str(core.clone())));
                    fields.push(("uf".into(), Json::Str(uf.clone())));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    Json::obj([
        ("ok", Json::Bool(true)),
        ("doc", Json::Str(doc.to_string())),
        ("bindings", Json::Arr(bindings)),
        ("rechecked", Json::Num(report.rechecked as f64)),
        ("reused", Json::Num(report.reused as f64)),
        ("blocked", Json::Num(report.blocked as f64)),
        ("waves", Json::Num(report.waves as f64)),
    ])
}

/// An error response, with a source position when available. Deadline
/// exhaustion answers the flat shape `{"ok":false,"error":"deadline"}`
/// the resilience contract specifies — machine-matchable without
/// digging into an error object.
pub fn error_json(err: &ServiceError, src: Option<&str>) -> Json {
    if matches!(err, ServiceError::Deadline) {
        return Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::Str("deadline".into())),
        ]);
    }
    let mut fields = vec![("message".to_string(), Json::Str(err.to_string()))];
    if let (ServiceError::Parse(e), Some(src)) = (err, src) {
        let span = freezeml_core::Span {
            start: e.pos,
            end: e.pos,
        };
        let (line, col) = span.line_col(src);
        fields.push(("line".into(), Json::Num(line as f64)));
        fields.push(("col".into(), Json::Num(col as f64)));
    }
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Obj(fields))])
}

/// Handle one request against a service, producing the response value.
pub fn handle(svc: &mut Service, req: &Request) -> Json {
    match req {
        Request::Open { doc, text } | Request::Edit { doc, text } => {
            let is_open = matches!(req, Request::Open { .. });
            let r = if is_open {
                svc.open(doc, text)
            } else {
                svc.edit(doc, text)
            };
            match r {
                Ok(report) => {
                    let report = report.clone();
                    report_json(doc, &report, svc.text(doc).unwrap_or_default())
                }
                Err(e) => error_json(&e, Some(text)),
            }
        }
        Request::Check { doc } => match svc.check(doc) {
            Ok(report) => {
                let report = report.clone();
                let src = svc.text(doc).unwrap_or_default().to_string();
                report_json(doc, &report, &src)
            }
            Err(e) => {
                let src = svc.text(doc).map(str::to_string);
                error_json(&e, src.as_deref())
            }
        },
        Request::TypeOf { doc, name } => match svc.type_of(doc, name) {
            Err(e) => error_json(&e, None),
            Ok(None) => Json::obj([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.clone())),
                ("found", Json::Bool(false)),
            ]),
            Ok(Some(b)) => Json::obj([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.clone())),
                ("found", Json::Bool(true)),
                ("result", Json::Str(b.outcome.display())),
            ]),
        },
        Request::Elaborate { doc, name } => match svc.elaborate(doc, name) {
            Err(e) => error_json(&e, None),
            Ok(None) => Json::obj([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.clone())),
                ("found", Json::Bool(false)),
            ]),
            Ok(Some(info)) => Json::obj([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.clone())),
                ("found", Json::Bool(true)),
                ("fterm", Json::Str(info.fterm)),
                ("type", Json::Str(info.ty)),
                // The image passed the System F typing oracle before
                // being served — always true in a success response.
                ("checked", Json::Bool(true)),
            ]),
        },
        Request::Close { doc } => Json::obj([
            ("ok", Json::Bool(true)),
            ("closed", Json::Bool(svc.close(doc))),
        ]),
        Request::Stats => stats::stats_json(svc.shared()),
        Request::Metrics => Json::obj([
            ("ok", Json::Bool(true)),
            ("metrics", Json::Str(stats::prometheus_text(svc.shared()))),
        ]),
        Request::Shutdown => {
            // Flip the hub into draining; the socket accept loop (and
            // the foreground `join`) observe the flag and wind down.
            // The acknowledgement still goes out on this connection —
            // draining finishes in-flight work, it does not cut lines.
            svc.shared().request_drain();
            Json::obj([("ok", Json::Bool(true)), ("draining", Json::Bool(true))])
        }
    }
}

fn request_error(msg: String) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::obj([("message", Json::Str(msg))])),
    ])
}

/// Is this response an error (`"ok":false`)?
fn is_error_response(resp: &Json) -> bool {
    resp.get("ok") == Some(&Json::Bool(false))
}

fn handle_value(svc: &mut Service, v: &Json) -> Json {
    svc.begin_request();
    let t0 = Instant::now();
    let (cmd, resp) = match Request::from_json(v) {
        Ok(req) => (stats::cmd_of(&req), handle(svc, &req)),
        Err(msg) => (Cmd::Invalid, request_error(msg)),
    };
    svc.shared()
        .metrics()
        .record_request(cmd, t0.elapsed(), is_error_response(&resp));
    resp
}

/// Handle one raw request line (bad JSON / unknown commands become error
/// responses, never panics).
///
/// **Batching:** a line whose JSON value is an *array* of requests is
/// handled element by element, in order, against the same session, and
/// answered with one line holding the array of responses — one write,
/// one flush, one network round trip for a whole burst of edits. An
/// element that fails to parse gets its error response in position; the
/// rest of the batch still runs.
pub fn handle_line(svc: &mut Service, line: &str) -> Json {
    match Json::parse(line) {
        Err(e) => {
            svc.begin_request();
            svc.shared()
                .metrics()
                .record_request(Cmd::Invalid, std::time::Duration::ZERO, true);
            request_error(e.to_string())
        }
        Ok(Json::Arr(items)) => Json::Arr(items.iter().map(|v| handle_value(svc, v)).collect()),
        Ok(v) => handle_value(svc, &v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::EngineSel;
    use crate::service::ServiceConfig;
    use freezeml_core::Options;

    #[test]
    fn json_round_trips() {
        for src in [
            r#"{"cmd":"open","doc":"a","text":"let x = 1;;\n-- \"quoted\""}"#,
            r#"[1,2.5,-3,true,false,null,"\u0041\ud83d\ude00"]"#,
            r#"{}"#,
            r#"[]"#,
        ] {
            let v = Json::parse(src).unwrap();
            let v2 = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, v2, "{src}");
        }
    }

    #[test]
    fn json_rejects_malformed_input() {
        for src in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            // Surrogate-escape abuse must error, not panic or decode garbage.
            "\"\\ud800\\u0000\"",
            "\"\\ud800\"",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(src).is_err(), "{src} should fail");
        }
    }

    #[test]
    fn requests_parse_and_round_trip() {
        let line = r#"{"cmd":"type-of","doc":"m","name":"f"}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(
            req,
            Request::TypeOf {
                doc: "m".into(),
                name: "f".into()
            }
        );
        assert_eq!(Request::parse(&req.to_json().to_string()).unwrap(), req);
        assert!(Request::parse(r#"{"cmd":"zap"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"open","doc":"m"}"#).is_err());
    }

    fn svc() -> Service {
        Service::new(ServiceConfig {
            opts: Options::default(),
            engine: EngineSel::Uf,
            workers: 1,
        })
    }

    #[test]
    fn protocol_smoke_full_session() {
        let mut s = svc();
        let open = handle_line(
            &mut s,
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##,
        );
        assert_eq!(open.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(open.get("rechecked").and_then(Json::as_num), Some(2.0));
        let bindings = match open.get("bindings") {
            Some(Json::Arr(b)) => b,
            other => panic!("bindings missing: {other:?}"),
        };
        assert_eq!(bindings.len(), 2);
        assert_eq!(
            bindings[1].get("type").and_then(Json::as_str),
            Some("Int * Bool")
        );
        assert_eq!(bindings[1].get("line").and_then(Json::as_num), Some(3.0));

        let t = handle_line(&mut s, r#"{"cmd":"type-of","doc":"m","name":"f"}"#);
        assert_eq!(
            t.get("result").and_then(Json::as_str),
            Some("forall a. a -> a")
        );

        // Warm edit: only `p`'s dependency cone is rechecked.
        let edit = handle_line(
            &mut s,
            r##"{"cmd":"edit","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = pair (poly ~f) 1;;\n"}"##,
        );
        assert_eq!(edit.get("rechecked").and_then(Json::as_num), Some(1.0));
        assert_eq!(edit.get("reused").and_then(Json::as_num), Some(1.0));

        let close = handle_line(&mut s, r#"{"cmd":"close","doc":"m"}"#);
        assert_eq!(close.get("closed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn elaborate_serves_an_oracle_checked_image() {
        let mut s = svc();
        handle_line(
            &mut s,
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet f = fun x -> x;;\nlet p = poly ~f;;\n"}"##,
        );
        let r = handle_line(&mut s, r#"{"cmd":"elaborate","doc":"m","name":"f"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("found"), Some(&Json::Bool(true)));
        assert_eq!(r.get("checked"), Some(&Json::Bool(true)));
        assert_eq!(
            r.get("fterm").and_then(Json::as_str),
            Some("tyfun a -> fun (x : a) -> x")
        );
        assert_eq!(
            r.get("type").and_then(Json::as_str),
            Some("forall a. a -> a")
        );
        // A binding with dependencies elaborates under their schemes.
        let r = handle_line(&mut s, r#"{"cmd":"elaborate","doc":"m","name":"p"}"#);
        assert_eq!(r.get("type").and_then(Json::as_str), Some("Int * Bool"));
        assert!(r
            .get("fterm")
            .and_then(Json::as_str)
            .unwrap()
            .contains("poly"));
        // Unknown names report found:false; unknown docs error.
        let r = handle_line(&mut s, r#"{"cmd":"elaborate","doc":"m","name":"zzz"}"#);
        assert_eq!(r.get("found"), Some(&Json::Bool(false)));
        let r = handle_line(&mut s, r#"{"cmd":"elaborate","doc":"nope","name":"f"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        // Round trip of the request itself.
        let req = Request::parse(r#"{"cmd":"elaborate","doc":"m","name":"f"}"#).unwrap();
        assert_eq!(Request::parse(&req.to_json().to_string()).unwrap(), req);
    }

    #[test]
    fn elaborate_refuses_ill_typed_and_blocked_bindings() {
        let mut s = svc();
        handle_line(
            &mut s,
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet bad = plus true 1;;\nlet child = plus bad 1;;\n"}"##,
        );
        for name in ["bad", "child"] {
            let r = handle_line(
                &mut s,
                &format!(r#"{{"cmd":"elaborate","doc":"m","name":"{name}"}}"#),
            );
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{name}");
            assert!(r
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap()
                .contains("cannot elaborate"));
        }
    }

    #[test]
    fn parse_errors_carry_positions() {
        let mut s = svc();
        let r = handle_line(&mut s, r#"{"cmd":"open","doc":"m","text":"let x = ;;"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let err = r.get("error").expect("error object");
        assert!(err.get("line").is_some());
        assert!(err
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("parse error"));
    }

    #[test]
    fn malformed_lines_do_not_kill_the_server() {
        let mut s = svc();
        for line in [
            "",
            "not json",
            r#"{"cmd":42}"#,
            r#"{"cmd":"check","doc":"nope"}"#,
        ] {
            let r = handle_line(&mut s, line);
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{line}");
        }
    }

    #[test]
    fn a_batch_line_answers_with_an_array_in_order() {
        let mut s = svc();
        let r = handle_line(
            &mut s,
            concat!(
                r#"[{"cmd":"open","doc":"m","text":"let x = 1;;"},"#,
                r#"{"cmd":"type-of","doc":"m","name":"x"},"#,
                r#"{"cmd":"close","doc":"m"}]"#,
            ),
        );
        let items = match r {
            Json::Arr(items) => items,
            other => panic!("expected array response, got {other}"),
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(items[1].get("result").and_then(Json::as_str), Some("Int"));
        assert_eq!(items[2].get("closed"), Some(&Json::Bool(true)));
    }

    #[test]
    fn a_bad_batch_element_fails_in_place_without_aborting_the_batch() {
        let mut s = svc();
        let r = handle_line(
            &mut s,
            concat!(
                r#"[{"cmd":"open","doc":"m","text":"let x = 1;;"},"#,
                r#"{"cmd":"launch-missiles"},"#,
                r#"{"cmd":"type-of","doc":"m","name":"x"}]"#,
            ),
        );
        let items = match r {
            Json::Arr(items) => items,
            other => panic!("expected array response, got {other}"),
        };
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(items[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(items[2].get("result").and_then(Json::as_str), Some("Int"));
    }

    #[test]
    fn an_empty_batch_answers_with_an_empty_array() {
        let mut s = svc();
        assert_eq!(handle_line(&mut s, "[]"), Json::Arr(vec![]));
    }

    #[test]
    fn errors_and_blocked_bindings_are_reported_with_status() {
        let mut s = svc();
        let r = handle_line(
            &mut s,
            r##"{"cmd":"open","doc":"m","text":"#use prelude\nlet bad = plus true 1;;\nlet child = plus bad 1;;\nlet ok = 1;;\n"}"##,
        );
        let bindings = match r.get("bindings") {
            Some(Json::Arr(b)) => b,
            other => panic!("bindings missing: {other:?}"),
        };
        let status = |i: usize| bindings[i].get("status").and_then(Json::as_str).unwrap();
        assert_eq!(status(0), "error");
        assert_eq!(status(1), "blocked");
        assert_eq!(status(2), "ok");
        assert_eq!(bindings[1].get("on").and_then(Json::as_str), Some("bad"));
    }

    #[test]
    fn shutdown_flips_the_hub_into_draining_and_parses_strictly() {
        let mut s = svc();
        assert!(!s.shared().draining());
        let r = handle_line(&mut s, r#"{"cmd":"shutdown"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("draining"), Some(&Json::Bool(true)));
        assert!(s.shared().draining());
        assert_eq!(s.shared().metrics().snapshot().draining, 1);
        // Like stats/metrics, shutdown takes no other fields.
        let bad = handle_line(&mut s, r#"{"cmd":"shutdown","doc":"m"}"#);
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        // Round trip.
        assert_eq!(
            Request::parse(&Request::Shutdown.to_json().to_string()).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn an_expired_deadline_answers_the_flat_deadline_shape() {
        let mut s = svc();
        s.set_deadline(Some(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        ));
        let r = handle_line(&mut s, r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        // Exactly two fields, flat — the shape a client's retry logic
        // keys on, distinct from the object-shaped data errors.
        assert_eq!(
            r,
            Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str("deadline".into()))
            ])
        );
        assert_eq!(s.shared().metrics().deadline_exceeded.get(), 1);
        // With the deadline lifted the same request succeeds — nothing
        // poisoned, and partial progress was never cached as final.
        s.set_deadline(None);
        let r = handle_line(&mut s, r#"{"cmd":"open","doc":"m","text":"let x = 1;;"}"#);
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
    }
}
